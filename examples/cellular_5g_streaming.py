#!/usr/bin/env python3
"""High-bandwidth 5G streaming: elevated bitrate ladder, simulation vs. emulation.

4G/5G networks support far higher bitrates than the broadband settings ABR
algorithms were tuned for, so the paper raises the bitrate ladder to YouTube's
recommended settings (up to 53 Mbps) for those environments and validates the
winning designs in emulation (dash.js over Mahimahi; here, the packet-level
emulator).

This example:

1. builds a 5G trace set and a high-ladder video,
2. trains the original Pensieve design and a Nada-generated alternative,
3. evaluates both in the chunk-level simulator *and* the packet-level emulator,
   reproducing the structure of Table 4 (emulation is harsher, but the
   generated design still wins).

Run with:  python examples/cellular_5g_streaming.py

A tiny smoke configuration (used by ``make campaign-smoke`` / CI) finishes in
seconds:  python examples/cellular_5g_streaming.py --dataset-scale 0.02 \
    --num-designs 3 --train-epochs 8 --num-chunks 6
"""

from __future__ import annotations

import argparse

from repro.abr import LinearQoE, synthetic_video
from repro.analysis import (
    ExperimentScale,
    render_table,
    run_emulation_comparison,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset-scale", type=float, default=0.04,
                        help="fraction of the published 5G dataset size")
    parser.add_argument("--num-designs", type=int, default=10,
                        help="candidate state designs to generate")
    parser.add_argument("--train-epochs", type=int, default=60,
                        help="training episodes per design per seed")
    parser.add_argument("--num-chunks", type=int, default=16,
                        help="chunks per video")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = ExperimentScale(
        dataset_scale=args.dataset_scale,
        num_chunks=args.num_chunks,
        train_epochs=args.train_epochs,
        checkpoint_interval=max(1, args.train_epochs // 4),
        last_k_checkpoints=3,
        num_seeds=1,
        num_designs=args.num_designs,
        max_trained_designs=max(2, args.num_designs // 2),
        seed=0,
    )
    video = synthetic_video("high", num_chunks=scale.num_chunks, seed=0)
    print("5G scenario: bitrate ladder "
          f"{[b // 1000 for b in video.bitrates_kbps]} Mbps, "
          f"rebuffer penalty {LinearQoE(video.bitrates_kbps).rebuffer_penalty:.0f}")

    result = run_emulation_comparison("5g", llm_profile="gpt-4", scale=scale)

    rows = [
        ["Original (Pensieve state)", f"{result.original_sim_score:.2f}",
         f"{result.original_emu_score:.2f}"],
        ["Nada best generated state", f"{result.best_sim_score:.2f}",
         f"{result.best_emu_score:.2f}"],
    ]
    print()
    print(render_table(["design", "simulation QoE", "emulation QoE"], rows,
                       title="5G — simulation vs. packet-level emulation"))
    if result.sim_improvement is not None:
        print(f"\nimprovement in simulation : {result.sim_improvement:+.1f}%")
    if result.emu_improvement is not None:
        print(f"improvement in emulation  : {result.emu_improvement:+.1f}%")
    print("\nNote: emulation scores are systematically lower because TCP slow "
          "start, idle-window decay and HTTP overheads reduce the usable "
          "throughput — the same qualitative gap the paper reports between "
          "Table 3 and Table 4.")


if __name__ == "__main__":
    main()
