#!/usr/bin/env python3
"""Customizing ABR for a LEO satellite (Starlink) network.

The paper's motivating scenario: an environment that off-the-shelf ABR was not
designed for.  Starlink links reconfigure every ~15 s and lose most of their
capacity during peak hours, which confuses throughput-prediction heuristics.

This example:

1. builds a peak-hour Starlink trace set (capacity reduced to 1/8, as in §3.1),
2. measures classic baselines (buffer-based, rate-based, BOLA, robust MPC),
3. trains the original Pensieve design,
4. runs Nada to generate a Starlink-specialized state representation,
5. prints the resulting QoE comparison.

Run with:  python examples/starlink_satellite_abr.py

A tiny smoke configuration (used by ``make campaign-smoke`` / CI) finishes in
seconds:  python examples/starlink_satellite_abr.py --dataset-scale 0.05 \
    --num-designs 3 --train-epochs 8 --num-chunks 6
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.abr import (
    BolaPolicy,
    BufferBasedPolicy,
    LinearQoE,
    RateBasedPolicy,
    RobustMPCPolicy,
    run_session,
    synthetic_video,
)
from repro.analysis import render_table
from repro.core import EvaluationConfig, NadaConfig, NadaPipeline
from repro.rl import A2CConfig
from repro.traces import build_dataset


def evaluate_baseline(policy_factory, video, traces, qoe) -> float:
    """Mean per-chunk QoE of a baseline across a trace set (fresh state per trace)."""
    scores = []
    for trace in traces:
        policy = policy_factory()
        scores.append(run_session(policy, video, trace, qoe=qoe).mean_reward)
    return float(np.mean(scores))


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset-scale", type=float, default=0.3,
                        help="fraction of the published Starlink dataset size")
    parser.add_argument("--num-designs", type=int, default=12,
                        help="candidate state designs to generate")
    parser.add_argument("--train-epochs", type=int, default=80,
                        help="training episodes per design per seed")
    parser.add_argument("--num-chunks", type=int, default=16,
                        help="chunks per video")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    train_traces, test_traces = build_dataset("starlink", seed=0,
                                              scale=args.dataset_scale)
    video = synthetic_video("standard", num_chunks=args.num_chunks, seed=0)
    qoe = LinearQoE(video.bitrates_kbps)
    print(f"Starlink peak-hour environment: mean bandwidth "
          f"{test_traces.mean_throughput_mbps:.2f} Mbps over {len(test_traces)} test traces")

    # --- classic baselines -------------------------------------------------
    baselines = {
        "Buffer-based (BBA)": lambda: BufferBasedPolicy(),
        "Rate-based": lambda: RateBasedPolicy(),
        "BOLA": lambda: BolaPolicy(),
        "Robust MPC": lambda: RobustMPCPolicy(horizon=4),
    }
    rows = []
    for name, factory in baselines.items():
        rows.append([name, f"{evaluate_baseline(factory, video, test_traces, qoe):.3f}"])

    # --- original Pensieve vs. Nada-generated state ------------------------
    epochs = args.train_epochs
    config = NadaConfig(
        target="state",
        num_designs=args.num_designs,
        llm="gpt-4",
        evaluation=EvaluationConfig(
            train_epochs=epochs,
            checkpoint_interval=max(1, epochs // 4),
            last_k_checkpoints=3, num_seeds=2,
            a2c=A2CConfig(entropy_anneal_epochs=max(1, epochs // 2))),
        use_early_stopping=True,
        bootstrap_fraction=0.4,
        seed=0,
    )
    pipeline = NadaPipeline(video, train_traces, test_traces, config=config, qoe=qoe)
    result = pipeline.run()

    rows.append(["Pensieve (original state)", f"{result.original_score:.3f}"])
    if result.best_score is not None:
        improvement = result.improvement
        rows.append([
            "Nada best generated state",
            f"{result.best_score:.3f}"
            + (f"  ({improvement:+.1%} vs original)" if improvement is not None else ""),
        ])

    print()
    print(render_table(["algorithm", "mean QoE per chunk"], rows,
                       title="Starlink (peak hour) — simulation"))

    if result.best_design is not None:
        print()
        print("Design ideas in the winning state "
              f"({result.best_design.design_id}): {', '.join(result.best_design.tags)}")


if __name__ == "__main__":
    main()
