#!/usr/bin/env python3
"""Quickstart: run a small Nada campaign end to end.

This example reproduces the paper's workflow (Figure 1) at laptop scale:

1. generate candidate RL-state designs with the (synthetic) LLM,
2. filter them with the compilation and normalization pre-checks,
3. train the survivors in the chunk-level ABR simulator,
4. report the best design against the original Pensieve state.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.abr import synthetic_video
from repro.analysis import render_table
from repro.core import EvaluationConfig, NadaConfig, NadaPipeline
from repro.rl import A2CConfig
from repro.traces import build_dataset


def main() -> None:
    # --- 1. Build the environment: FCC-like broadband traces + a short video.
    train_traces, test_traces = build_dataset("fcc", seed=0, scale=0.04)
    video = synthetic_video("standard", num_chunks=16, seed=0)
    print(f"environment: {len(train_traces)} training traces, "
          f"{len(test_traces)} test traces, video of {video.num_chunks} chunks")

    # --- 2. Configure the campaign (scaled down from the paper's 3,000 designs
    #        and 40,000 training epochs; the pipeline stages are identical).
    config = NadaConfig(
        target="state",
        num_designs=10,
        llm="gpt-4",                 # synthetic GPT-4 profile (offline)
        evaluation=EvaluationConfig(
            train_epochs=60,
            checkpoint_interval=15,
            last_k_checkpoints=3,
            num_seeds=2,
            a2c=A2CConfig(entropy_anneal_epochs=30),
        ),
        use_early_stopping=True,
        bootstrap_fraction=0.5,
        min_bootstrap_designs=3,
        seed=0,
    )

    # --- 3. Run the pipeline.
    pipeline = NadaPipeline(video, train_traces, test_traces, config=config)
    result = pipeline.run()

    # --- 4. Report.
    print()
    print(result.summary())
    print()
    rows = []
    for design in result.pool.top_k(3):
        rows.append([design.design_id, ", ".join(design.tags) or "-",
                     f"{design.test_score:.3f}"])
    if rows:
        print(render_table(["design", "idea tags", "test score"], rows,
                           title="Top generated state designs"))
    if result.best_design is not None:
        print()
        print("Best generated state function:")
        print(result.best_design.code)


if __name__ == "__main__":
    main()
