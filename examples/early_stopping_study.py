#!/usr/bin/env python3
"""Early-stopping study: which signal best predicts a design's final quality?

RL training dominates the cost of evaluating LLM-generated designs.  The paper
(§2.2, §3.4, Figure 5) trains a binary classifier on the rewards from the first
K training episodes and early-stops designs the classifier deems unpromising,
comparing five mechanisms: Reward Only, Text Only, Text + Reward, Heuristic
Max and Heuristic Last.

This example builds a real corpus of trained designs, cross-validates all five
predictors and prints the Figure-5-style comparison, plus the compute savings
the chosen mechanism would deliver.

Run with:  python examples/early_stopping_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ExperimentScale, build_design_corpus, render_table
from repro.core import EarlyStoppingConfig, cross_validate_predictors


def main() -> None:
    scale = ExperimentScale(
        dataset_scale=0.03,
        num_chunks=12,
        train_epochs=24,          # full training length per design
        checkpoint_interval=8,
        num_seeds=1,
        seed=0,
    )
    prefix_length = 8             # the "first K episodes" the classifier sees

    print("building the design corpus (each design is trained in the simulator)...")
    # Starlink separates good and bad designs most clearly at small scale.
    corpus = build_design_corpus("starlink", "gpt-4", num_designs=40, scale=scale)
    print(f"corpus: {len(corpus)} trained designs\n")

    predictor_kwargs = {
        "reward_only": {"config": EarlyStoppingConfig(
            reward_prefix_length=prefix_length, training_epochs=150,
            top_fraction=0.1, smoothed_fraction=0.3)},
        "text_only": {"epochs": 150, "top_fraction": 0.1, "smoothed_fraction": 0.3},
        "text_reward": {"epochs": 150, "top_fraction": 0.1, "smoothed_fraction": 0.3,
                        "reward_prefix_length": prefix_length},
        "heuristic_max": {"top_fraction": 0.1, "reward_prefix_length": prefix_length},
        "heuristic_last": {"top_fraction": 0.1, "reward_prefix_length": prefix_length},
    }
    results = cross_validate_predictors(
        corpus, num_folds=5, train_fraction_per_fold=0.3, top_fraction=0.1,
        seed=0, predictor_kwargs=predictor_kwargs)

    rows = [[r.name, f"{r.false_negative_rate:.2f}", f"{r.true_negative_rate:.2f}"]
            for r in sorted(results, key=lambda r: -r.true_negative_rate)]
    print(render_table(["mechanism", "false negative rate", "true negative rate"],
                       rows, title="Early-stopping mechanisms (5-fold CV)"))

    best = max(results, key=lambda r: r.true_negative_rate - r.false_negative_rate)
    stopped_fraction = best.true_negative_rate
    full_epochs = scale.train_epochs
    saved = stopped_fraction * (full_epochs - prefix_length) / full_epochs
    print(f"\nbest mechanism: {best.name}")
    print(f"it would early-stop ≈{stopped_fraction:.0%} of suboptimal designs, "
          f"saving ≈{saved:.0%} of total training epochs "
          f"(each stopped design runs {prefix_length} instead of {full_epochs} episodes).")


if __name__ == "__main__":
    main()
