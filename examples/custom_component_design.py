#!/usr/bin/env python3
"""Applying the Nada building blocks to your own algorithm components.

Nada is a generic loop — generate code blocks, filter them, evaluate the
survivors — and every stage is usable à la carte.  This example shows the
lower-level API:

* hand-written candidate code blocks pushed through the same pre-checks the
  LLM-generated ones face,
* pairing a custom state function with a custom architecture and training it,
* swapping the LLM backend (synthetic profile vs. a real OpenAI-compatible
  endpoint) without touching the rest of the pipeline.

Run with:  python examples/custom_component_design.py
"""

from __future__ import annotations

import numpy as np

from repro.abr import synthetic_video
from repro.analysis import render_table
from repro.core import (
    CompilationCheck,
    Design,
    DesignTrainer,
    EvaluationConfig,
    FilterPipeline,
    NormalizationCheck,
    TestScoreProtocol,
)
from repro.llm import ChatMessage, SyntheticLLM
from repro.rl import A2CConfig
from repro.traces import build_dataset

# A hand-written state design: throughput statistics + buffer dynamics only.
MY_STATE = '''
import numpy as np


def state_func(bitrate_kbps_history, throughput_mbps_history,
               download_time_s_history, buffer_size_s_history,
               next_chunk_sizes_bytes, remaining_chunk_count,
               total_chunk_count, bitrate_ladder_kbps):
    """A compact state: throughput stats, buffer level and trend, progress."""
    throughput = np.asarray(throughput_mbps_history, dtype=float)
    buffer_hist = np.asarray(buffer_size_s_history, dtype=float)
    history_len = len(throughput)
    rows = [
        throughput / 8.0,
        np.full(history_len, float(np.mean(throughput)) / 8.0),
        np.full(history_len, float(np.std(throughput)) / 8.0),
        buffer_hist / 10.0,
        np.diff(buffer_hist, prepend=buffer_hist[0]) / 10.0,
        np.full(history_len, float(remaining_chunk_count) / max(total_chunk_count, 1)),
    ]
    return np.stack(rows)
'''

# A deliberately broken variant (uses raw bytes) to show the pre-checks working.
BAD_STATE = MY_STATE.replace("throughput / 8.0", "throughput * 1e6")

# A custom architecture: wider dense trunk shared between actor and critic.
MY_NETWORK = '''
def build_network(state_shape, num_actions, rng=None):
    """Compact shared-trunk dense actor-critic with Leaky ReLU."""
    return nn_library.GenericActorCritic(
        state_shape, num_actions,
        hidden_sizes=(192, 96),
        activation="leaky_relu",
        encoder="flatten",
        share_trunk=True,
        rng=rng,
    )
'''


def main() -> None:
    # --- 1. Pre-check the hand-written designs exactly like generated ones.
    designs = [
        Design(kind="state", code=MY_STATE, origin_model="human"),
        Design(kind="state", code=BAD_STATE, origin_model="human"),
        Design(kind="network", code=MY_NETWORK, origin_model="human"),
    ]
    pipeline = FilterPipeline(CompilationCheck(), NormalizationCheck(threshold=100.0))
    report = pipeline.apply(designs)
    print(f"pre-checks: {report.compilable}/{report.total} compilable, "
          f"{report.well_normalized}/{report.total} well normalized")
    for design in designs:
        status = design.status.value
        reason = f"  ({design.rejection_reason})" if design.is_rejected else ""
        print(f"  - {design.origin_model} {design.kind.value}: {status}{reason}")

    # --- 2. Train the surviving custom (state, network) pair.
    train_traces, test_traces = build_dataset("fcc", seed=1, scale=0.03)
    video = synthetic_video("standard", num_chunks=14, seed=1)
    config = EvaluationConfig(train_epochs=40, checkpoint_interval=10,
                              last_k_checkpoints=2, num_seeds=1,
                              a2c=A2CConfig(entropy_anneal_epochs=20))
    trainer = DesignTrainer(video, train_traces, test_traces, config=config)
    protocol = TestScoreProtocol(trainer)

    original_score = protocol.score_original()
    custom_score, _ = protocol.run(designs[0], designs[2])
    print()
    print(render_table(
        ["design pair", "test score"],
        [["original state + original network", f"{original_score:.3f}"],
         ["custom state + custom shared-trunk network", f"{custom_score:.3f}"]],
        title="Custom component evaluation (FCC, scaled down)"))

    # --- 3. The LLM backend is pluggable.
    client = SyntheticLLM("gpt-3.5", seed=0)
    completion = client.complete([ChatMessage("user", "Improve the state design: "
                                              "def state_func(...) ...")])
    print(f"\nswap-in LLM backend: {client.model_name} produced "
          f"{len(completion.text.splitlines())} lines "
          f"(kind={completion.metadata['kind']}).")
    print("To use a real endpoint instead:")
    print("    from repro.llm import OpenAICompatClient")
    print("    client = OpenAICompatClient(model='gpt-4')  # needs OPENAI_API_KEY")


if __name__ == "__main__":
    main()
