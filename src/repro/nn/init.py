"""Weight initialization schemes for the NumPy neural-network substrate."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "he_normal", "orthogonal", "zeros_init"]


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def xavier_uniform(shape: tuple, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization (default for dense layers)."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _rng(rng).uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _rng(rng).normal(0.0, std, size=shape)


def he_normal(shape: tuple, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He initialization, appropriate for ReLU-family activations."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return _rng(rng).normal(0.0, std, size=shape)


def orthogonal(shape: tuple, gain: float = 1.0,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Orthogonal initialization, used for recurrent weight matrices."""
    if len(shape) < 2:
        raise ValueError("orthogonal initialization requires at least 2 dimensions")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = _rng(rng).normal(0.0, 1.0, size=(rows, cols))
    transpose = rows < cols
    if transpose:
        flat = flat.T
    q, r = np.linalg.qr(flat)
    # Make the decomposition unique (and uniformly distributed) by fixing signs.
    q = q * np.sign(np.diag(r))
    if transpose:
        q = q.T
    return gain * q[:rows, :cols].reshape(shape)


def zeros_init(shape: tuple, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)


def _fans(shape: tuple) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolutional kernels: (out_channels, in_channels, kernel_size)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
