"""Neural-network layers built on top of :mod:`repro.nn.tensor`.

The layer set covers everything used by the original Pensieve architecture
(dense layers and 1-D convolutions) plus the architectural variations the
paper reports LLMs proposing (recurrent layers, shared trunks, alternative
activations and widths).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from . import init as initializers
from .activations import get_activation
from .tensor import Tensor, concatenate, stack, unfold1d

__all__ = [
    "Module",
    "Parameter",
    "Dense",
    "Conv1D",
    "GRUCell",
    "LSTMCell",
    "RNNCell",
    "Recurrent",
    "Flatten",
    "Dropout",
    "Sequential",
    "LayerNorm",
]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)
        #: Bumped on every optimizer step / state load; lets inference caches
        #: (e.g. the folded Pensieve tower) detect weight changes cheaply.
        self.version = 0


class Module:
    """Base class for all layers and models.

    Subclasses register :class:`Parameter` instances and child modules as
    attributes; :meth:`parameters` walks the tree to collect every trainable
    tensor, which is what optimizers consume.
    """

    def __init__(self) -> None:
        self._training = True

    # -- forward ---------------------------------------------------------
    def forward(self, *inputs: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *inputs: Tensor) -> Tensor:
        return self.forward(*inputs)

    # -- parameter management -------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters in this module and its children."""
        params: List[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            self._collect(value, params, seen)
        return params

    def _collect(self, value, params: List[Parameter], seen: set) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                params.append(value)
        elif isinstance(value, Module):
            for p in value.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect(item, params, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect(item, params, seen)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- train / eval ----------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self._training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- state dict ------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter values keyed by path."""
        state: Dict[str, np.ndarray] = {}
        self._state_into(state, prefix="")
        return state

    def _state_into(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for key, value in self.__dict__.items():
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                state[path] = value.data.copy()
            elif isinstance(value, Module):
                value._state_into(state, prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        state[f"{path}.{index}"] = item.data.copy()
                    elif isinstance(item, Module):
                        item._state_into(state, prefix=f"{path}.{index}.")

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`."""
        current = self.state_dict()
        missing = set(current) - set(state)
        if missing:
            raise KeyError(f"state dict missing keys: {sorted(missing)}")
        self._load_from(state, prefix="")

    def _load_from(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for key, value in self.__dict__.items():
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                if path in state:
                    value.data = np.asarray(state[path], dtype=value.data.dtype).reshape(value.data.shape)
                    value.version = getattr(value, "version", 0) + 1
            elif isinstance(value, Module):
                value._load_from(state, prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        item_path = f"{path}.{index}"
                        if item_path in state:
                            item.data = np.asarray(state[item_path], dtype=item.data.dtype).reshape(item.data.shape)
                            item.version = getattr(item, "version", 0) + 1
                    elif isinstance(item, Module):
                        item._load_from(state, prefix=f"{path}.{index}.")


class Dense(Module):
    """Fully connected layer: ``y = activation(x @ W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Optional[str] = None,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(initializers.xavier_uniform((in_features, out_features), rng=rng),
                                name="dense.weight")
        self.bias = Parameter(np.zeros(out_features), name="dense.bias") if bias else None
        # "custom" marks a callable activation the fast inference path cannot
        # replicate; it forces inference back through the autograd forward.
        self.activation_name = (activation if isinstance(activation, str) or activation is None
                                else "custom")
        self.activation = get_activation(activation)

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return self.activation(out)


class Conv1D(Module):
    """1-D convolution over the last axis of a ``(batch, channels, length)`` input.

    Pensieve applies 1-D convolutions over the history of throughput samples,
    download times and next-chunk sizes; this layer reproduces that behaviour.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        activation: Optional[str] = None,
        stride: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.weight = Parameter(
            initializers.xavier_uniform((out_channels, in_channels, kernel_size), rng=rng),
            name="conv1d.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="conv1d.bias") if bias else None
        self.activation_name = (activation if isinstance(activation, str) or activation is None
                                else "custom")
        self.activation = get_activation(activation)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            # Interpret (batch, length) as a single input channel.
            x = x.reshape(x.shape[0], 1, x.shape[1])
        batch, channels, length = x.shape
        if channels != self.in_channels:
            raise ValueError(
                f"Conv1D expected {self.in_channels} channels, got {channels}"
            )
        kernel = self.kernel_size
        if length < kernel:
            raise ValueError(
                f"Conv1D input length {length} is shorter than kernel size {kernel}"
            )
        # im2col: build a (batch, positions, channels * kernel) view of the input
        # and express the convolution as a single matrix multiplication so the
        # autograd graph stays small.
        stacked = unfold1d(x, kernel, self.stride)  # (batch, positions, channels*kernel)
        flat_weight = Tensor(self.weight.data.reshape(self.out_channels, channels * kernel))
        flat_weight.requires_grad = self.weight.requires_grad

        # Re-route gradients of the reshaped weight back into the parameter.
        weight_param = self.weight

        def weight_backward(grad: np.ndarray) -> None:
            weight_param._accumulate(grad.reshape(weight_param.data.shape))

        flat_weight._parents = (weight_param,)
        flat_weight._backward = weight_backward

        out = stacked.matmul(flat_weight.transpose())  # (batch, positions, out_channels)
        out = out.transpose(0, 2, 1)  # (batch, out_channels, positions)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1)
        return self.activation(out)


class RNNCell(Module):
    """Vanilla (Elman) recurrent cell with a tanh nonlinearity."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(initializers.xavier_uniform((input_size, hidden_size), rng=rng))
        self.w_hh = Parameter(initializers.orthogonal((hidden_size, hidden_size), rng=rng))
        self.bias = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        return (x.matmul(self.w_ih) + hidden.matmul(self.w_hh) + self.bias).tanh()

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class GRUCell(Module):
    """Gated recurrent unit cell."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(initializers.xavier_uniform((input_size, 3 * hidden_size), rng=rng))
        self.w_hh = Parameter(initializers.orthogonal((hidden_size, 3 * hidden_size), rng=rng))
        self.bias = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        h = self.hidden_size
        gates_x = x.matmul(self.w_ih) + self.bias
        gates_h = hidden.matmul(self.w_hh)
        reset = (gates_x[:, 0:h] + gates_h[:, 0:h]).sigmoid()
        update = (gates_x[:, h:2 * h] + gates_h[:, h:2 * h]).sigmoid()
        candidate = (gates_x[:, 2 * h:3 * h] + reset * gates_h[:, 2 * h:3 * h]).tanh()
        one = Tensor(np.ones_like(update.data))
        return update * hidden + (one - update) * candidate

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class LSTMCell(Module):
    """Long short-term memory cell (returns the new hidden and cell states)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(initializers.xavier_uniform((input_size, 4 * hidden_size), rng=rng))
        self.w_hh = Parameter(initializers.orthogonal((hidden_size, 4 * hidden_size), rng=rng))
        self.bias = Parameter(np.zeros(4 * hidden_size))

    def forward(self, x: Tensor, hidden: Tensor, cell: Tensor) -> tuple[Tensor, Tensor]:
        h = self.hidden_size
        gates = x.matmul(self.w_ih) + hidden.matmul(self.w_hh) + self.bias
        input_gate = gates[:, 0:h].sigmoid()
        forget_gate = gates[:, h:2 * h].sigmoid()
        candidate = gates[:, 2 * h:3 * h].tanh()
        output_gate = gates[:, 3 * h:4 * h].sigmoid()
        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class Recurrent(Module):
    """Runs a recurrent cell over a ``(batch, channels, length)`` sequence.

    The sequence axis is the last axis to match the layout Conv1D uses, which
    lets generated architectures swap a Conv1D for an RNN/GRU/LSTM without
    reshaping the state.  Returns the final hidden state ``(batch, hidden)``.
    """

    def __init__(self, input_size: int, hidden_size: int, cell_type: str = "lstm",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        cell_type = cell_type.lower()
        if cell_type == "lstm":
            self.cell: Module = LSTMCell(input_size, hidden_size, rng=rng)
        elif cell_type == "gru":
            self.cell = GRUCell(input_size, hidden_size, rng=rng)
        elif cell_type in ("rnn", "simple"):
            self.cell = RNNCell(input_size, hidden_size, rng=rng)
        else:
            raise ValueError(f"unknown recurrent cell type: {cell_type!r}")
        self.cell_type = cell_type
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            x = x.reshape(x.shape[0], 1, x.shape[1])
        batch, channels, length = x.shape
        if self.cell_type == "lstm":
            hidden, cell = self.cell.initial_state(batch)
        else:
            hidden = self.cell.initial_state(batch)
        for step in range(length):
            step_input = x[:, :, step]
            if self.cell_type == "lstm":
                hidden, cell = self.cell(step_input, hidden, cell)
            else:
                hidden = self.cell(step_input, hidden)
        return hidden


class Flatten(Module):
    """Flattens all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        return x.reshape(batch, -1)


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self._training or self.rate == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.rate) / (1.0 - self.rate)
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_shape))
        self.beta = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Sequential(Module):
    """Container applying modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.modules.append(module)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)
