"""Activation functions used by the neural-network substrate.

Activations are exposed both as free functions operating on tensors and via a
string registry (:func:`get_activation`) so that generated architecture code
can select activations by name ("relu", "leaky_relu", "tanh", ...), mirroring
the architecture variations the paper reports (e.g. switching the FCC network
to Leaky ReLU).
"""

from __future__ import annotations

from typing import Callable, Optional

from .tensor import Tensor

__all__ = [
    "relu",
    "leaky_relu",
    "elu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "linear",
    "softplus",
    "get_activation",
    "ACTIVATIONS",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with a configurable negative slope."""
    return x.leaky_relu(negative_slope)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit."""
    return x.elu(alpha)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    return x.log_softmax(axis=axis)


def linear(x: Tensor) -> Tensor:
    """Identity activation."""
    return x


def softplus(x: Tensor) -> Tensor:
    """Smooth approximation of ReLU: ``log(1 + exp(x))``."""
    # Implemented via a numerically stable formulation: max(x,0) + log1p(exp(-|x|)).
    return x.relu() + ((-x.abs()).exp() + 1.0).log()


ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": relu,
    "leaky_relu": leaky_relu,
    "leakyrelu": leaky_relu,
    "elu": elu,
    "tanh": tanh,
    "sigmoid": sigmoid,
    "softmax": softmax,
    "linear": linear,
    "identity": linear,
    "none": linear,
    "softplus": softplus,
}


def get_activation(name: Optional[str]) -> Callable[[Tensor], Tensor]:
    """Resolve an activation by name; ``None`` maps to the identity.

    Raises:
        KeyError: if the name is not registered.
    """
    if name is None:
        return linear
    if callable(name):
        return name
    key = name.lower().strip()
    if key not in ACTIVATIONS:
        raise KeyError(f"unknown activation {name!r}; known: {sorted(ACTIVATIONS)}")
    return ACTIVATIONS[key]
