"""Saving and loading model parameters.

Checkpoints are stored as ``.npz`` archives so the test-score protocol
(periodic checkpoint evaluation, §3.1 of the paper) can persist and reload
policies without any non-NumPy dependency.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a parameter state dict to ``path`` (``.npz``)."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a parameter state dict previously written by :func:`save_state`."""
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def save_module(module: Module, path: str) -> None:
    """Persist a module's parameters to disk."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Load parameters from disk into ``module`` (shapes must match)."""
    module.load_state_dict(load_state(path))
    return module
