"""Loss functions for supervised and reinforcement-learning training."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor

__all__ = [
    "mse_loss",
    "huber_loss",
    "binary_cross_entropy",
    "cross_entropy",
    "policy_gradient_loss",
    "entropy",
]


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error; used for the critic's value regression."""
    target = target if isinstance(target, Tensor) else Tensor(np.asarray(target))
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss, quadratic near zero and linear for large errors."""
    target = target if isinstance(target, Tensor) else Tensor(np.asarray(target))
    diff = (prediction - target).abs()
    quadratic = diff.clip(0.0, delta)
    linear = diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()


def binary_cross_entropy(prediction: Tensor, target: Tensor, eps: float = 1e-7) -> Tensor:
    """Binary cross-entropy on probabilities; used by the early-stopping classifier."""
    target = target if isinstance(target, Tensor) else Tensor(np.asarray(target))
    clipped = prediction.clip(eps, 1.0 - eps)
    one = Tensor(np.ones_like(clipped.data))
    loss = -(target * clipped.log() + (one - target) * (one - clipped).log())
    return loss.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Cross-entropy from raw logits and integer class labels."""
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    batch = log_probs.shape[0]
    picked = log_probs[np.arange(batch), labels]
    return -picked.mean()


def policy_gradient_loss(log_probs: Tensor, advantages: np.ndarray) -> Tensor:
    """REINFORCE/actor loss: ``-E[log pi(a|s) * advantage]``.

    Advantages are treated as constants (no gradient flows through them),
    matching the standard actor-critic formulation.
    """
    adv = Tensor(np.asarray(advantages))
    return -(log_probs * adv).mean()


def entropy(probabilities: Tensor, eps: float = 1e-8) -> Tensor:
    """Mean entropy of a batch of categorical distributions.

    Pensieve adds an entropy bonus to the actor loss to encourage exploration;
    this helper computes it from action probabilities.
    """
    clipped = probabilities.clip(eps, 1.0)
    return -(clipped * clipped.log()).sum(axis=-1).mean()
