"""Fused-kernel compiler: lower design-space networks onto the fast engines.

The repository's fast training engines — the analytic fused forward/backward
used by :class:`~repro.rl.a2c.A2CTrainer` and the stacked multi-seed lockstep
engine behind :class:`~repro.rl.a2c.MultiSeedA2CTrainer` — were originally
hand-written for the fixed Pensieve architecture.  This module generalizes
them to *any* network assembled from the design-space vocabulary (``Dense``,
``Conv1D``, ``Flatten``, ``LayerNorm``, ``Dropout``, ``Recurrent``
rnn/gru/lstm cells, ``Sequential`` containers), which is what the LLM design
generator emits.

The compiler is a *kernel planner*: it walks a network's module tree and
emits a :class:`CompiledPlan` of primitive ops, each of which implements

* a pure-NumPy **forward** that caches the activations the backward needs,
* an analytic **backward** that writes parameter gradients into persistent,
  preallocated ``out=`` buffers, and
* a **stacked** variant of both operating on ``(seeds, batch, ...)`` arrays
  against ``(seeds, *shape)`` stacked weights (3-D GEMMs resolve each seed
  with the same BLAS calls the serial path makes).

Every kernel mirrors the autograd engine *operation for operation* — the same
matmuls on the same operands, the same elementwise formulas, the same
reduction and accumulation order — so compiled gradients match
``loss.backward()`` to float round-off (the equivalence suite asserts
<= 1e-9 in float32 and float64), and compiled rollout decisions are identical
to the graph path's.  Architectures the planner cannot lower (custom forward
implementations, callable activations, stochastic dropout under lockstep)
degrade to the autograd graph path with a logged reason — never an error.

Two module-level switches control the compiler:

* :func:`set_compilation` / ``--no-compile`` — disable lowering entirely;
  every generated architecture then trains through the reference graph path.
* :func:`set_numerics` — ``"exact"`` (default) keeps the autograd-mirroring
  arithmetic; ``"fast"`` rewrites the conv-gradient contractions as single
  re-blocked GEMMs (batch and position axes folded into one contraction),
  which changes summation order and is therefore gated by a statistical
  equivalence test instead of bit-exactness.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .layers import (Conv1D, Dense, Dropout, Flatten, GRUCell, LayerNorm,
                     LSTMCell, Module, Parameter, Recurrent, RNNCell,
                     Sequential)
from .tensor import get_default_dtype

__all__ = [
    "CompileError",
    "CompiledPlan",
    "CompiledSequence",
    "CompiledSeedStack",
    "SeedParameterStack",
    "compilation_enabled",
    "set_compilation",
    "get_numerics",
    "set_numerics",
    "plan_for",
    "lower_sequence",
    "lowerable_activation_names",
]

logger = logging.getLogger(__name__)

#: When False, :func:`plan_for` refuses to compile anything and every
#: architecture uses the autograd reference path (CLI: ``--no-compile``).
_COMPILE_ENABLED = True

#: Numerics mode: "exact" mirrors autograd bit for bit; "fast" re-blocks the
#: gradient contractions (see module docstring).
_NUMERICS = "exact"

#: Reasons already logged once (avoid per-epoch log spam for one design).
_LOGGED_REASONS: set = set()


def set_compilation(enabled: bool) -> bool:
    """Toggle the kernel compiler; returns the previous setting."""
    global _COMPILE_ENABLED
    previous = _COMPILE_ENABLED
    _COMPILE_ENABLED = bool(enabled)
    return previous


def compilation_enabled() -> bool:
    return _COMPILE_ENABLED


def set_numerics(mode: str) -> str:
    """Select gradient-contraction numerics: "exact" (default) or "fast".

    Returns the previous mode.  ``"fast"`` trades bit-exactness with the
    autograd reference for re-blocked GEMM contractions; it is gated by the
    statistical-equivalence tests, not the bitwise suite.
    """
    global _NUMERICS
    if mode not in ("exact", "fast"):
        raise ValueError(f"unknown numerics mode {mode!r}; use 'exact' or 'fast'")
    previous = _NUMERICS
    _NUMERICS = mode
    return previous


def get_numerics() -> str:
    return _NUMERICS


class CompileError(Exception):
    """Raised (and caught) when an architecture cannot be lowered."""


def _log_unlowered(network, reason: str) -> None:
    key = (type(network).__name__, reason)
    if key not in _LOGGED_REASONS:
        _LOGGED_REASONS.add(key)
        logger.info("not compiling %s: %s (graph fallback)",
                    type(network).__name__, reason)


# --------------------------------------------------------------------------- #
# Activation kernels.
#
# Each entry is (forward, backward).  ``forward(pre) -> (out, aux)`` computes
# the activation with exactly the NumPy expressions the autograd Tensor ops
# use; ``backward(dy, aux) -> d_pre`` mirrors the corresponding
# ``Tensor._backward`` formula, so values agree bitwise with the graph path.
# --------------------------------------------------------------------------- #
def _linear_fwd(pre):
    return pre, None


def _linear_bwd(dy, aux):
    return dy


def _relu_fwd(pre):
    mask = pre > 0
    return pre * mask, mask


def _relu_bwd(dy, mask):
    return dy * mask


def _leaky_fwd(pre):
    mask = pre > 0
    return np.where(mask, pre, 0.01 * pre), mask


def _leaky_bwd(dy, mask):
    # np.where(mask, 1.0, 0.01) has no array operand, so it is float64 and
    # the product promotes; the graph path casts back to the default dtype
    # at its next Tensor._accumulate, which this mirrors.
    return np.asarray(dy * np.where(mask, 1.0, 0.01),
                      dtype=get_default_dtype())


def _elu_fwd(pre):
    mask = pre > 0
    exp_part = 1.0 * (np.exp(np.minimum(pre, 0.0)) - 1.0)
    return np.where(mask, pre, exp_part), (mask, exp_part)


def _elu_bwd(dy, aux):
    mask, exp_part = aux
    return dy * np.where(mask, 1.0, exp_part + 1.0)


def _tanh_fwd(pre):
    out = np.tanh(pre)
    return out, out


def _tanh_bwd(dy, out):
    return dy * (1.0 - out ** 2)


def _sigmoid_fwd(pre):
    out = 1.0 / (1.0 + np.exp(-pre))
    return out, out


def _sigmoid_bwd(dy, out):
    return dy * out * (1.0 - out)


def _softplus_fwd(pre):
    # Mirrors the composite graph: relu(x) + log(exp(-|x|) + 1.0).
    mask = pre > 0
    e = np.exp(-np.abs(pre))
    s = e + 1.0
    return pre * mask + np.log(s), (mask, e, s, np.sign(pre))


def _softplus_bwd(dy, aux):
    mask, e, s, sign = aux
    t = dy / s
    t = t * e
    t = -t
    t = t * sign
    return dy * mask + t


_ACTIVATIONS: Dict[Optional[str], Tuple[Callable, Callable]] = {
    None: (_linear_fwd, _linear_bwd),
    "linear": (_linear_fwd, _linear_bwd),
    "identity": (_linear_fwd, _linear_bwd),
    "none": (_linear_fwd, _linear_bwd),
    "relu": (_relu_fwd, _relu_bwd),
    "leaky_relu": (_leaky_fwd, _leaky_bwd),
    "leakyrelu": (_leaky_fwd, _leaky_bwd),
    "elu": (_elu_fwd, _elu_bwd),
    "tanh": (_tanh_fwd, _tanh_bwd),
    "sigmoid": (_sigmoid_fwd, _sigmoid_bwd),
    "softplus": (_softplus_fwd, _softplus_bwd),
}


def lowerable_activation_names() -> frozenset:
    """Activation names that have fused kernels (lower-cased).

    The static lowerability predictor
    (:mod:`repro.analysis.staticcheck.lowerability`) checks generated
    ``build_network`` blocks against this vocabulary; tests cross-check its
    verdicts against :func:`plan_for`'s actual decisions.
    """
    return frozenset(name for name in _ACTIVATIONS if isinstance(name, str))


def _activation_kernel(name) -> Tuple[Callable, Callable]:
    if name is not None and not isinstance(name, str):
        raise CompileError("callable (custom) activation cannot be lowered")
    key = name.lower() if isinstance(name, str) else name
    if key not in _ACTIVATIONS:
        raise CompileError(f"activation {name!r} has no fused kernel")
    return _ACTIVATIONS[key]


# --------------------------------------------------------------------------- #
# Gradient sink: routes computed gradients into Parameter.grad through
# persistent, preallocated buffers (the ``out=`` discipline of the Pensieve
# hand kernels).  Falls back to allocate-and-cast — mirroring
# ``Parameter._accumulate`` — when gradients must live in a different dtype
# than the weights.
# --------------------------------------------------------------------------- #
class _GradSink:
    __slots__ = ("_params", "_dtype", "_buffers", "_seen", "_buffered")

    def __init__(self, params: Sequence[Parameter], dtype) -> None:
        self._params = list(params)
        self._dtype = np.dtype(dtype)
        self._buffers: Optional[Dict[int, np.ndarray]] = None
        self._seen: set = set()
        self._buffered = False

    def begin(self) -> None:
        """Start one backward pass (gradients overwrite, then accumulate)."""
        self._seen = set()
        self._buffered = np.dtype(get_default_dtype()) == self._dtype
        if self._buffered and self._buffers is None:
            self._buffers = {id(p): np.empty_like(p.data)
                             for p in self._params}

    def _view(self, param: Parameter, shape) -> np.ndarray:
        buffer = self._buffers[id(param)]
        param.grad = buffer
        return buffer if shape is None else buffer.reshape(shape)

    def _fallback(self, param: Parameter, value: np.ndarray) -> None:
        grad = np.asarray(value, dtype=get_default_dtype())
        grad = grad.reshape(param.data.shape)
        if id(param) in self._seen:
            param.grad = param.grad + grad
        else:
            param.grad = grad.copy() if grad.base is not None else grad

    def add(self, param: Parameter, value: np.ndarray,
            out_shape=None) -> None:
        """Assign (first write) or accumulate a fully computed gradient."""
        if not self._buffered:
            self._fallback(param, value)
            self._seen.add(id(param))
            return
        view = self._view(param, out_shape if out_shape is not None
                          else np.shape(value))
        if id(param) in self._seen:
            view += value
        else:
            np.copyto(view, value)
            self._seen.add(id(param))

    def matmul(self, param: Parameter, a: np.ndarray, b: np.ndarray,
               out_shape=None) -> None:
        """GEMM a gradient straight into the persistent buffer."""
        if not self._buffered:
            self._fallback(param, np.matmul(a, b))
            self._seen.add(id(param))
            return
        shape = out_shape if out_shape is not None else \
            (a.shape[:-1] + (b.shape[-1],))
        view = self._view(param, shape)
        if id(param) in self._seen:
            view += np.matmul(a, b)
        else:
            np.matmul(a, b, out=view)
            self._seen.add(id(param))

    def sum(self, param: Parameter, value: np.ndarray, axis) -> None:
        """Reduce a gradient straight into the persistent buffer."""
        if not self._buffered:
            self._fallback(param, value.sum(axis=axis))
            self._seen.add(id(param))
            return
        reduced_shape = tuple(s for i, s in enumerate(value.shape)
                              if i != (axis % value.ndim))
        view = self._view(param, reduced_shape)
        if id(param) in self._seen:
            view += value.sum(axis=axis)
        else:
            value.sum(axis=axis, out=view)
            self._seen.add(id(param))


# --------------------------------------------------------------------------- #
# Primitive ops.
#
# Ops hold the *serial* layer (of the network they were compiled from) and
# resolve weight arrays through a ``resolve(parameter) -> ndarray`` callable,
# so the same op list runs serially (resolve returns ``parameter.data``) and
# stacked (resolve returns the ``(seeds, *shape)`` stacked array).  The
# ``stacked`` flag tells shape-ambiguous ops (Flatten) how many leading axes
# the data carries.
# --------------------------------------------------------------------------- #
def _serial(resolve):
    return resolve is None


def _resolve(resolve, param):
    return param.data if resolve is None else resolve(param)


class _DenseOp:
    def __init__(self, layer: Dense) -> None:
        if layer.bias is None:
            raise CompileError("Dense without bias cannot be lowered")
        self.layer = layer
        self.act_fwd, self.act_bwd = _activation_kernel(layer.activation_name)

    def parameters(self) -> List[Parameter]:
        return [self.layer.weight, self.layer.bias]

    def infer(self, x, resolve, stacked):
        w = _resolve(resolve, self.layer.weight)
        b = _resolve(resolve, self.layer.bias)
        pre = np.matmul(x, w)
        pre = pre + (b[:, None, :] if stacked else b)
        out, _ = self.act_fwd(pre)
        return out

    def forward(self, x, resolve, stacked, caches):
        w = _resolve(resolve, self.layer.weight)
        b = _resolve(resolve, self.layer.bias)
        pre = np.matmul(x, w)
        pre = pre + (b[:, None, :] if stacked else b)
        out, aux = self.act_fwd(pre)
        caches.append((x, aux))
        return out

    def backward(self, dy, resolve, stacked, cache, sink, need_dx):
        x, aux = cache
        w = _resolve(resolve, self.layer.weight)
        d_pre = self.act_bwd(dy, aux)
        sink.sum(self.layer.bias, d_pre, axis=1 if stacked else 0)
        sink.matmul(self.layer.weight, x.swapaxes(-1, -2), d_pre)
        if not need_dx:
            return None
        return np.matmul(d_pre, w.swapaxes(-1, -2))


class _FlattenOp:
    def __init__(self) -> None:
        pass

    def parameters(self) -> List[Parameter]:
        return []

    def infer(self, x, resolve, stacked):
        lead = 2 if stacked else 1
        return x.reshape(x.shape[:lead] + (-1,))

    def forward(self, x, resolve, stacked, caches):
        caches.append(x.shape)
        return self.infer(x, resolve, stacked)

    def backward(self, dy, resolve, stacked, cache, sink, need_dx):
        if not need_dx:
            return None
        return dy.reshape(cache)


class _Conv1DOp:
    """1-D convolution, computed as the same im2col GEMM the graph builds.

    ``flatten_output=True`` fuses the ``(batch, out_channels, positions)``
    -> ``(batch, out_channels * positions)`` reshape that
    :class:`~repro.abr.networks.GenericActorCritic` applies to its conv
    encoder; otherwise the op emits the layout :class:`~repro.nn.layers.Conv1D`
    itself produces.
    """

    def __init__(self, layer: Conv1D, flatten_output: bool) -> None:
        if layer.bias is None:
            raise CompileError("Conv1D without bias cannot be lowered")
        self.layer = layer
        self.flatten_output = flatten_output
        self.act_fwd, self.act_bwd = _activation_kernel(layer.activation_name)

    def parameters(self) -> List[Parameter]:
        return [self.layer.weight, self.layer.bias]

    def _patches(self, x, stacked):
        kernel = self.layer.kernel_size
        axis = 3 if stacked else 2
        windows = np.lib.stride_tricks.sliding_window_view(
            x, kernel, axis=axis)[..., ::self.layer.stride, :]
        positions = windows.shape[axis]
        # (…, positions, channels, kernel) -> (…, positions, channels*kernel):
        # the same im2col matrix unfold1d builds.
        if stacked:
            patches = np.ascontiguousarray(windows.transpose(0, 1, 3, 2, 4))
            return patches.reshape(x.shape[0], x.shape[1], positions, -1), positions
        patches = np.ascontiguousarray(windows.transpose(0, 2, 1, 3))
        return patches.reshape(x.shape[0], positions, -1), positions

    def _pre(self, x, resolve, stacked):
        w = _resolve(resolve, self.layer.weight)
        b = _resolve(resolve, self.layer.bias)
        oc = self.layer.out_channels
        patches, positions = self._patches(x, stacked)
        if stacked:
            flat_w = w.reshape(w.shape[0], oc, -1)
            pre = np.matmul(patches, flat_w.swapaxes(-1, -2)[:, None])
            pre = pre + b[:, None, None, :]
        else:
            flat_w = w.reshape(oc, -1)
            pre = patches @ flat_w.T
            pre = pre + b
        return patches, pre, positions

    def _shape_output(self, out, stacked):
        # out is (…, positions, out_channels); emit the (…, oc, positions)
        # graph layout, optionally flattened.  Values are identical to
        # applying bias/activation after the transpose (elementwise).
        if stacked:
            shaped = np.ascontiguousarray(out.transpose(0, 1, 3, 2))
            if self.flatten_output:
                return shaped.reshape(shaped.shape[0], shaped.shape[1], -1)
            return shaped
        shaped = np.ascontiguousarray(out.transpose(0, 2, 1))
        if self.flatten_output:
            return shaped.reshape(shaped.shape[0], -1)
        return shaped

    def infer(self, x, resolve, stacked):
        _, pre, _ = self._pre(x, resolve, stacked)
        out, _ = self.act_fwd(pre)
        return self._shape_output(out, stacked)

    def forward(self, x, resolve, stacked, caches):
        patches, pre, positions = self._pre(x, resolve, stacked)
        out, aux = self.act_fwd(pre)
        caches.append((x.shape, patches, aux, positions))
        return self._shape_output(out, stacked)

    def backward(self, dy, resolve, stacked, cache, sink, need_dx):
        x_shape, patches, aux, positions = cache
        w = _resolve(resolve, self.layer.weight)
        oc = self.layer.out_channels
        kernel = self.layer.kernel_size
        stride = self.layer.stride
        if stacked:
            seeds, batch = x_shape[0], x_shape[1]
            if self.flatten_output:
                dy = dy.reshape(seeds, batch, oc, positions)
            d_pre = self.act_bwd(dy.transpose(0, 1, 3, 2), aux)
            # Bias: mirror the graph's unbroadcast (sum batch, then positions).
            sink.sum(self.layer.bias, d_pre.sum(axis=1), axis=1)
            if get_numerics() == "fast":
                # Re-blocked contraction: fold (batch, positions) into one
                # GEMM axis — one batched GEMM instead of a batched GEMM
                # followed by a reduction.
                p2 = patches.reshape(seeds, -1, patches.shape[-1])
                d2 = d_pre.reshape(seeds, -1, oc)
                d_ft = np.matmul(p2.swapaxes(-1, -2), d2)
            else:
                d_ft = np.matmul(patches.swapaxes(-1, -2), d_pre).sum(axis=1)
            sink.add(self.layer.weight, d_ft.swapaxes(-1, -2).reshape(
                (seeds,) + self.layer.weight.data.shape))
        else:
            batch = x_shape[0]
            if self.flatten_output:
                dy = dy.reshape(batch, oc, positions)
            d_pre = self.act_bwd(dy.transpose(0, 2, 1), aux)
            sink.sum(self.layer.bias, d_pre.sum(axis=0), axis=0)
            if get_numerics() == "fast":
                p2 = patches.reshape(-1, patches.shape[-1])
                d2 = d_pre.reshape(-1, oc)
                d_ft = p2.T @ d2
            else:
                d_ft = np.matmul(patches.swapaxes(-1, -2), d_pre).sum(axis=0)
            sink.add(self.layer.weight,
                     d_ft.T.reshape(self.layer.weight.data.shape))
        if not need_dx:
            return None
        flat_w = (w.reshape(w.shape[0], oc, -1) if stacked
                  else w.reshape(oc, -1))
        if stacked:
            d_patches = np.matmul(d_pre, flat_w[:, None])
            channels = x_shape[2]
            grids = d_patches.reshape(x_shape[0], x_shape[1], positions,
                                      channels, kernel)
            full = np.zeros(x_shape, dtype=d_patches.dtype)
            starts = np.arange(positions) * stride
            for tap in range(kernel):
                full[:, :, :, starts + tap] += \
                    grids[..., tap].transpose(0, 1, 3, 2)
            return full
        d_patches = np.matmul(d_pre, flat_w)
        channels = x_shape[1]
        grids = d_patches.reshape(batch, positions, channels, kernel)
        full = np.zeros(x_shape, dtype=d_patches.dtype)
        starts = np.arange(positions) * stride
        for tap in range(kernel):
            full[:, :, starts + tap] += grids[..., tap].transpose(0, 2, 1)
        return full


class _LayerNormOp:
    def __init__(self, layer: LayerNorm) -> None:
        self.layer = layer

    def parameters(self) -> List[Parameter]:
        return [self.layer.gamma, self.layer.beta]

    def _stats(self, x, resolve, stacked):
        gamma = _resolve(resolve, self.layer.gamma)
        beta = _resolve(resolve, self.layer.beta)
        n = x.shape[-1]
        # Mirror the graph: mean/variance are sum * (1/n), not np.mean.
        mean = x.sum(axis=-1, keepdims=True) * (1.0 / n)
        centered = x - mean
        var = (centered * centered).sum(axis=-1, keepdims=True) * (1.0 / n)
        p = var + self.layer.eps
        q = p ** 0.5
        normalized = centered / q
        if stacked:
            out = normalized * gamma[:, None, :] + beta[:, None, :]
        else:
            out = normalized * gamma + beta
        return out, (centered, p, q, normalized, n)

    def infer(self, x, resolve, stacked):
        out, _ = self._stats(x, resolve, stacked)
        return out

    def forward(self, x, resolve, stacked, caches):
        out, cache = self._stats(x, resolve, stacked)
        caches.append(cache)
        return out

    @staticmethod
    def _unbroadcast(value, stacked):
        keep = 2 if stacked else 1
        axis = 1 if stacked else 0
        while value.ndim > keep:
            value = value.sum(axis=axis)
        return value

    def backward(self, dy, resolve, stacked, cache, sink, need_dx):
        centered, p, q, normalized, n = cache
        gamma = _resolve(resolve, self.layer.gamma)
        sink.add(self.layer.beta, self._unbroadcast(dy, stacked))
        sink.add(self.layer.gamma,
                 self._unbroadcast(dy * normalized, stacked))
        d_norm = dy * (gamma[:, None, :] if stacked else gamma)
        d_centered = d_norm / q
        d_q = (-d_norm * centered / (q ** 2)).sum(axis=-1, keepdims=True)
        d_var = (d_q * 0.5) * p ** (-0.5)
        d_cc = np.broadcast_to(d_var * (1.0 / n), centered.shape)
        t = d_cc * centered
        d_centered = d_centered + t
        d_centered = d_centered + t
        if not need_dx:
            return None
        d_mean = (-d_centered).sum(axis=-1, keepdims=True)
        return d_centered + np.broadcast_to(d_mean * (1.0 / n),
                                            centered.shape)


class _DropoutOp:
    """Inverted dropout.  Eval mode is the identity; training mode draws the
    mask from the layer's own RNG with exactly the graph's expression, so the
    RNG stream is consumed identically.  The stacked engine refuses stochastic
    dropout (per-seed RNG streams cannot batch), which
    :meth:`CompiledSeedStack.compatible` enforces up front."""

    def __init__(self, layer: Dropout) -> None:
        self.layer = layer

    def parameters(self) -> List[Parameter]:
        return []

    def _active(self) -> bool:
        return self.layer._training and self.layer.rate > 0.0

    def infer(self, x, resolve, stacked):
        if not self._active():
            return x
        if stacked:
            raise CompileError("stochastic dropout cannot run stacked")
        mask = ((self.layer._rng.random(x.shape) >= self.layer.rate)
                / (1.0 - self.layer.rate))
        return x * mask

    def forward(self, x, resolve, stacked, caches):
        if not self._active():
            caches.append(None)
            return x
        if stacked:
            raise CompileError("stochastic dropout cannot run stacked")
        mask = ((self.layer._rng.random(x.shape) >= self.layer.rate)
                / (1.0 - self.layer.rate))
        caches.append(mask)
        return x * mask

    def backward(self, dy, resolve, stacked, cache, sink, need_dx):
        if not need_dx:
            return None
        if cache is None:
            return dy
        return dy * cache


class _RecurrentOp:
    """rnn/gru/lstm over the trailing (time) axis, final hidden state out.

    The per-step arithmetic mirrors the cell ``forward`` methods exactly, and
    the backward replays the chain in reverse time order with per-step
    gradient accumulation — the order autograd's reverse-topological walk
    uses — so gradients agree with the graph to round-off.
    """

    def __init__(self, layer: Recurrent) -> None:
        self.layer = layer
        self.kind = ("lstm" if isinstance(layer.cell, LSTMCell) else
                     "gru" if isinstance(layer.cell, GRUCell) else "rnn")

    def parameters(self) -> List[Parameter]:
        cell = self.layer.cell
        return [cell.w_ih, cell.w_hh, cell.bias]

    # -- forward -------------------------------------------------------- #
    def _weights(self, resolve):
        cell = self.layer.cell
        return (_resolve(resolve, cell.w_ih), _resolve(resolve, cell.w_hh),
                _resolve(resolve, cell.bias))

    def _run(self, x, resolve, stacked, record):
        w_ih, w_hh, bias = self._weights(resolve)
        h = self.layer.hidden_size
        length = x.shape[-1]
        if stacked:
            lead = (x.shape[0], x.shape[1])
            badd = bias[:, None, :]
        else:
            lead = (x.shape[0],)
            badd = bias
        hidden = np.zeros(lead + (h,), dtype=x.dtype)
        cell_state = np.zeros(lead + (h,), dtype=x.dtype) \
            if self.kind == "lstm" else None
        steps = [] if record is not None else None
        for t in range(length):
            xt = x[..., t]
            if self.kind == "rnn":
                z = np.matmul(xt, w_ih) + np.matmul(hidden, w_hh) + badd
                new_hidden = np.tanh(z)
                if steps is not None:
                    steps.append((xt, hidden, new_hidden))
                hidden = new_hidden
            elif self.kind == "gru":
                gx = np.matmul(xt, w_ih) + badd
                gh = np.matmul(hidden, w_hh)
                r = 1.0 / (1.0 + np.exp(-(gx[..., 0:h] + gh[..., 0:h])))
                u = 1.0 / (1.0 + np.exp(-(gx[..., h:2 * h] + gh[..., h:2 * h])))
                c = np.tanh(gx[..., 2 * h:3 * h] + r * gh[..., 2 * h:3 * h])
                new_hidden = u * hidden + (1.0 - u) * c
                if steps is not None:
                    steps.append((xt, hidden, gh[..., 2 * h:3 * h], r, u, c))
                hidden = new_hidden
            else:  # lstm
                gates = (np.matmul(xt, w_ih) + np.matmul(hidden, w_hh)) + badd
                i = 1.0 / (1.0 + np.exp(-gates[..., 0:h]))
                f = 1.0 / (1.0 + np.exp(-gates[..., h:2 * h]))
                cand = np.tanh(gates[..., 2 * h:3 * h])
                o = 1.0 / (1.0 + np.exp(-gates[..., 3 * h:4 * h]))
                new_cell = f * cell_state + i * cand
                tc = np.tanh(new_cell)
                new_hidden = o * tc
                if steps is not None:
                    steps.append((xt, hidden, cell_state, i, f, cand, o, tc))
                hidden = new_hidden
                cell_state = new_cell
        if record is not None:
            record.append((x.shape, steps))
        return hidden

    def infer(self, x, resolve, stacked):
        return self._run(x, resolve, stacked, record=None)

    def forward(self, x, resolve, stacked, caches):
        return self._run(x, resolve, stacked, record=caches)

    # -- backward ------------------------------------------------------- #
    def backward(self, dy, resolve, stacked, cache, sink, need_dx):
        x_shape, steps = cache
        w_ih, w_hh, bias = self._weights(resolve)
        cell = self.layer.cell
        h = self.layer.hidden_size
        sum_axis = 1 if stacked else 0
        dx = np.zeros(x_shape, dtype=dy.dtype) if need_dx else None
        dh = dy
        dc = None
        for t in range(len(steps) - 1, -1, -1):
            if self.kind == "rnn":
                xt, h_prev, h_new = steps[t]
                dz = dh * (1.0 - h_new ** 2)
                sink.sum(cell.bias, dz, axis=sum_axis)
                sink.matmul(cell.w_ih, xt.swapaxes(-1, -2), dz)
                sink.matmul(cell.w_hh, h_prev.swapaxes(-1, -2), dz)
                if need_dx:
                    dx[..., t] = np.matmul(dz, w_ih.swapaxes(-1, -2))
                dh = np.matmul(dz, w_hh.swapaxes(-1, -2))
            elif self.kind == "gru":
                xt, h_prev, gh2, r, u, c = steps[t]
                d_u = dh * h_prev
                d_u = d_u + (-(dh * c))
                d_h_prev = dh * u
                d_c = dh * (1.0 - u)
                d_cand_arg = d_c * (1.0 - c ** 2)
                d_r = d_cand_arg * gh2
                d_gh2 = d_cand_arg * r
                d_u_arg = d_u * u * (1.0 - u)
                d_r_arg = d_r * r * (1.0 - r)
                d_gx = np.concatenate([d_r_arg, d_u_arg, d_cand_arg], axis=-1)
                d_gh = np.concatenate([d_r_arg, d_u_arg, d_gh2], axis=-1)
                sink.sum(cell.bias, d_gx, axis=sum_axis)
                sink.matmul(cell.w_ih, xt.swapaxes(-1, -2), d_gx)
                sink.matmul(cell.w_hh, h_prev.swapaxes(-1, -2), d_gh)
                if need_dx:
                    dx[..., t] = np.matmul(d_gx, w_ih.swapaxes(-1, -2))
                dh = d_h_prev + np.matmul(d_gh, w_hh.swapaxes(-1, -2))
            else:  # lstm
                xt, h_prev, c_prev, i, f, cand, o, tc = steps[t]
                d_o = dh * tc
                d_tc = dh * o
                d_cell = d_tc * (1.0 - tc ** 2)
                if dc is not None:
                    d_cell = dc + d_cell
                d_f = d_cell * c_prev
                dc = d_cell * f
                d_i = d_cell * cand
                d_cand = d_cell * i
                d_gates = np.concatenate([
                    d_i * i * (1.0 - i),
                    d_f * f * (1.0 - f),
                    d_cand * (1.0 - cand ** 2),
                    d_o * o * (1.0 - o)], axis=-1)
                sink.sum(cell.bias, d_gates, axis=sum_axis)
                sink.matmul(cell.w_ih, xt.swapaxes(-1, -2), d_gates)
                sink.matmul(cell.w_hh, h_prev.swapaxes(-1, -2), d_gates)
                if need_dx:
                    dx[..., t] = np.matmul(d_gates, w_ih.swapaxes(-1, -2))
                dh = np.matmul(d_gates, w_hh.swapaxes(-1, -2))
        return dx


# --------------------------------------------------------------------------- #
# Lowering.
# --------------------------------------------------------------------------- #
def lower_sequence(module: Module, flatten_conv: bool = False) -> List:
    """Lower a module (or ``Sequential`` tree) into a primitive op list.

    Raises :class:`CompileError` for anything outside the design-space
    vocabulary.  ``flatten_conv`` fuses the trailing flatten a conv encoder
    needs when feeding a dense trunk.
    """
    if isinstance(module, Sequential):
        ops: List = []
        for child in module:
            ops.extend(lower_sequence(child))
        return ops
    if isinstance(module, Dense):
        return [_DenseOp(module)]
    if isinstance(module, Conv1D):
        return [_Conv1DOp(module, flatten_output=flatten_conv)]
    if isinstance(module, Flatten):
        return [_FlattenOp()]
    if isinstance(module, LayerNorm):
        return [_LayerNormOp(module)]
    if isinstance(module, Dropout):
        return [_DropoutOp(module)]
    if isinstance(module, Recurrent):
        return [_RecurrentOp(module)]
    raise CompileError(f"module {type(module).__name__} has no fused kernel")


def _run_ops(ops, x, resolve, stacked, caches):
    for op in ops:
        x = op.forward(x, resolve, stacked, caches)
    return x


def _infer_ops(ops, x, resolve, stacked):
    for op in ops:
        x = op.infer(x, resolve, stacked)
    return x


def _back_ops(ops, dy, resolve, stacked, caches, sink, need_input_grad):
    for index in range(len(ops) - 1, -1, -1):
        need = need_input_grad or index > 0
        dy = ops[index].backward(dy, resolve, stacked, caches[index], sink,
                                 need_dx=need)
    return dy


class CompiledSequence:
    """A lowered ``Sequential`` stack with fused forward/backward.

    This is the building block the property tests exercise directly; the
    actor-critic :class:`CompiledPlan` composes three of these walks
    (encoder, actor tower, critic tower).
    """

    def __init__(self, module: Module) -> None:
        self.ops = lower_sequence(module)
        self.params: List[Parameter] = []
        for op in self.ops:
            self.params.extend(op.parameters())
        dtype = self.params[0].data.dtype if self.params else \
            np.dtype(get_default_dtype())
        self._sink = _GradSink(self.params, dtype)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return _infer_ops(self.ops, np.asarray(x), None, False)

    def forward(self, x: np.ndarray):
        caches: List = []
        out = _run_ops(self.ops, np.asarray(x), None, False, caches)
        return caches, out

    def backward(self, caches, dy: np.ndarray,
                 need_input_grad: bool = False) -> Optional[np.ndarray]:
        self._sink.begin()
        return _back_ops(self.ops, np.asarray(dy), None, False, caches,
                         self._sink, need_input_grad)


# --------------------------------------------------------------------------- #
# The actor-critic plan.
# --------------------------------------------------------------------------- #
class _ActorInference:
    """Version-cached inference context: the precomputed actor-only plan.

    Captures the resolved op list once per weight version (optimizer steps
    mutate parameter arrays in place, so the context stays current between
    rebuilds; ``load_state_dict``-style rebinding bumps versions and forces a
    rebuild).  This is the generic analogue of the folded Pensieve tower —
    there is no single matrix to fold a branched/recurrent network into, so
    the fold here is the pre-resolved kernel chain.
    """

    __slots__ = ("ops", "dtype", "state_ndim", "version")

    def __init__(self, ops, dtype, state_ndim, version) -> None:
        self.ops = ops
        self.dtype = dtype
        self.state_ndim = state_ndim
        self.version = version

    def probs(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=self.dtype)
        if states.ndim == self.state_ndim:
            states = states[None, ...]
        logits = _infer_ops(self.ops, states, None, False)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)


class CompiledPlan:
    """Fused kernels for one actor-critic network.

    The plan provides the three engines the ISSUE names: the analytic
    serial ``fused_forward``/``fused_backward`` pair consumed by
    :class:`~repro.rl.a2c.A2CTrainer`, the inference ``policy_probs`` path
    (version-cached contexts via :meth:`inference`), and — through
    :class:`CompiledSeedStack` — the stacked per-seed variant for the
    multi-seed lockstep trainer.
    """

    def __init__(self, network) -> None:
        encoder_ops, actor_ops, critic_ops = _lower_actor_critic(network)
        self.network = network
        self.encoder_ops = encoder_ops
        self.actor_ops = actor_ops
        self.critic_ops = critic_ops
        self.params: List[Parameter] = []
        seen: set = set()
        for op in encoder_ops + actor_ops + critic_ops:
            for param in op.parameters():
                if id(param) not in seen:
                    seen.add(id(param))
                    self.params.append(param)
        if not self.params:
            raise CompileError("network has no trainable parameters")
        self.dtype = self.params[0].data.dtype
        self._sink = _GradSink(self.params, self.dtype)
        self._infer_cache: Optional[_ActorInference] = None

    # -- identity -------------------------------------------------------- #
    @property
    def signature(self) -> Tuple:
        """Structural fingerprint used to match plans across seed networks."""
        def op_sig(op):
            name = type(op).__name__
            if isinstance(op, _DenseOp):
                return (name, op.layer.in_features, op.layer.out_features,
                        op.layer.activation_name)
            if isinstance(op, _Conv1DOp):
                return (name, op.layer.in_channels, op.layer.out_channels,
                        op.layer.kernel_size, op.layer.stride,
                        op.layer.activation_name, op.flatten_output)
            if isinstance(op, _RecurrentOp):
                return (name, op.kind, op.layer.hidden_size)
            if isinstance(op, _LayerNormOp):
                return (name, op.layer.gamma.data.shape)
            return (name,)
        return tuple(tuple(op_sig(op) for op in ops)
                     for ops in (self.encoder_ops, self.actor_ops,
                                 self.critic_ops))

    def has_stochastic_dropout(self) -> bool:
        return any(isinstance(op, _DropoutOp) and op.layer.rate > 0.0
                   for op in self.encoder_ops + self.actor_ops
                   + self.critic_ops)

    def has_active_dropout(self) -> bool:
        """Whether any dropout op would draw from its RNG *right now*.

        The compiled inference chain runs only the actor tower, but the
        graph reference (``_policy_probs_graph``) runs the full forward —
        critic tower included — so with training-mode dropout the two
        would consume different RNG-stream lengths per decision.  Callers
        route such networks back to the graph path for inference; the
        fused *update* is unaffected (it runs both towers in the graph's
        forward order, drawing identically).
        """
        return any(isinstance(op, _DropoutOp) and op._active()
                   for op in self.encoder_ops + self.actor_ops
                   + self.critic_ops)

    def _version(self) -> int:
        return sum(getattr(p, "version", 0) for p in self.params)

    # -- training kernels ------------------------------------------------ #
    def _cast_states(self, states: np.ndarray, stacked: bool) -> np.ndarray:
        states = np.asarray(states, dtype=self.dtype)
        expected = len(self.network.state_shape) + (2 if stacked else 1)
        if states.ndim == expected - 1:
            states = states[None, ...]
        return states

    def fused_forward(self, states: np.ndarray, resolve=None,
                      stacked: bool = False):
        """Forward through both towers, caching what the backward needs."""
        states = self._cast_states(states, stacked)
        caches = {"encoder": [], "actor": [], "critic": []}
        encoded = _run_ops(self.encoder_ops, states, resolve, stacked,
                           caches["encoder"])
        logits = _run_ops(self.actor_ops, encoded, resolve, stacked,
                          caches["actor"])
        values = _run_ops(self.critic_ops, encoded, resolve, stacked,
                          caches["critic"])
        values = values.reshape(values.shape[:-2] + (values.shape[-2],))
        return caches, logits, values

    def fused_backward(self, cache, dlogits: np.ndarray, dvalues: np.ndarray,
                       resolve=None, stacked: bool = False,
                       sink: Optional[_GradSink] = None) -> None:
        """Accumulate parameter gradients for a cached fused forward."""
        sink = sink if sink is not None else self._sink
        sink.begin()
        dvalues = np.asarray(dvalues)[..., None]
        d_encoded = _back_ops(self.actor_ops, np.asarray(dlogits), resolve,
                              stacked, cache["actor"], sink,
                              need_input_grad=True)
        d_encoded = d_encoded + _back_ops(self.critic_ops, dvalues, resolve,
                                          stacked, cache["critic"], sink,
                                          need_input_grad=True)
        _back_ops(self.encoder_ops, d_encoded, resolve, stacked,
                  cache["encoder"], sink, need_input_grad=False)

    # -- inference ------------------------------------------------------- #
    def inference(self) -> _ActorInference:
        """The version-cached actor-tower inference context."""
        version = self._version()
        cached = self._infer_cache
        if cached is None or cached.version != version:
            cached = _ActorInference(self.encoder_ops + self.actor_ops,
                                     self.dtype,
                                     len(self.network.state_shape), version)
            self._infer_cache = cached
        return cached

    def policy_probs(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=self.dtype)
        if states.ndim == len(self.network.state_shape):
            states = states[None, ...]
        return self.policy_probs_batch(states)

    def policy_probs_batch(self, states: np.ndarray) -> np.ndarray:
        """Action probabilities for a strict ``(batch, *state_shape)`` block.

        The serving entry point: the fleet harness stacks one state per
        session needing a decision this tick and makes ONE call here, so the
        cost per decision is one GEMM row of the version-cached actor chain
        instead of one Python forward per player.  Every op in the chain is
        row-independent (GEMMs, elementwise activations, per-row softmax),
        so row ``i`` of the result is bit-identical to calling
        :meth:`policy_probs` on ``states[i]`` alone — which is what lets
        batched serving stay session-for-session identical to serial
        emulation.  Unlike :meth:`policy_probs` this entry refuses to guess
        about a missing batch axis: serving code that dropped the axis has a
        bug, not an implicit batch of one.
        """
        states = np.asarray(states, dtype=self.dtype)
        if states.ndim != len(self.network.state_shape) + 1:
            raise ValueError(
                f"expected (batch, *{self.network.state_shape}) states, got "
                f"shape {states.shape}")
        return self.inference().probs(states)


def _lower_actor_critic(network) -> Tuple[List, List, List]:
    """Lower a :class:`~repro.abr.networks.GenericActorCritic`-shaped net."""
    # Only networks whose forward we know bit-for-bit can be lowered: a
    # custom subclass overriding forward/_encode computes something the plan
    # would silently disagree with.
    from ..abr.networks import GenericActorCritic

    if not isinstance(network, GenericActorCritic):
        raise CompileError("only design-space GenericActorCritic networks "
                           "(and the hand-fused PensieveNetwork) are "
                           "lowerable")
    if (type(network).forward is not GenericActorCritic.forward
            or type(network)._encode is not GenericActorCritic._encode):
        raise CompileError("subclass overrides forward/_encode; the planner "
                           "cannot prove kernel equivalence")
    kind = network.encoder_kind
    if kind == "flatten":
        encoder_ops: List = [_FlattenOp()]
    elif kind == "conv":
        encoder_ops = [_Conv1DOp(network.encoder, flatten_output=True)]
    elif kind in ("rnn", "gru", "lstm"):
        encoder_ops = [_RecurrentOp(network.encoder)]
    else:
        raise CompileError(f"unknown encoder kind {kind!r}")
    actor_ops = lower_sequence(network.actor_trunk) + \
        lower_sequence(network.actor_out)
    critic_ops = lower_sequence(network.critic_trunk) + \
        lower_sequence(network.critic_out)
    return encoder_ops, actor_ops, critic_ops


def plan_for(network) -> Optional[CompiledPlan]:
    """Compile (and cache) the fused plan for ``network``.

    Returns ``None`` — after logging the reason once — when compilation is
    disabled or the architecture cannot be lowered; callers then keep the
    autograd graph path.  The cache lives on the network instance and is
    dropped on pickling (worker processes recompile on first use).
    """
    if not _COMPILE_ENABLED:
        return None
    cached = network.__dict__.get("_compile_cache")
    if cached is not None:
        return cached if isinstance(cached, CompiledPlan) else None
    try:
        plan = CompiledPlan(network)
    except CompileError as exc:
        network.__dict__["_compile_cache"] = exc
        _log_unlowered(network, str(exc))
        _count_compile("compile.fallback",
                       {"network": type(network).__name__,
                        "reason": str(exc)})
        return None
    network.__dict__["_compile_cache"] = plan
    _count_compile("compile.lowered",
                   {"network": type(network).__name__})
    return plan


def _count_compile(name: str, attrs) -> None:
    # Imported lazily: ``repro.core`` imports this module transitively, so a
    # top-level import would create a cycle.  plan_for results are cached on
    # the network instance, so this only runs once per (network, outcome).
    from ..core import telemetry
    telemetry.counter(name, attrs=attrs)


# --------------------------------------------------------------------------- #
# Stacked (multi-seed) engines.
# --------------------------------------------------------------------------- #
class SeedParameterStack:
    """Stacked-weight view of several identically-shaped networks.

    Generic machinery shared by the Pensieve seed stack and the compiled
    stack: each parameter of the per-seed networks is stacked into one
    ``(seeds, *shape)`` array, and the per-seed networks' parameters are
    rebound as views of their slice — so updating the stack updates every
    seed network in place and checkpoint evaluation/serialization see
    current weights with no unpack step.
    """

    def __init__(self, networks: Sequence) -> None:
        if len(networks) < 1:
            raise ValueError("a seed stack needs at least one network")
        self.networks = list(networks)
        self.num_seeds = len(self.networks)
        net0 = self.networks[0]
        self.state_shape = net0.state_shape
        self.num_actions = net0.num_actions

        per_net = [net.parameters() for net in self.networks]
        if any(len(params) != len(per_net[0]) for params in per_net):
            raise ValueError("stacked networks have mismatched parameter lists")
        self._per_net_params = per_net
        self._params: List[Parameter] = []
        by_id: Dict[int, Parameter] = {}
        for position, reference in enumerate(per_net[0]):
            shapes = {params[position].data.shape for params in per_net}
            dtypes = {params[position].data.dtype for params in per_net}
            if len(shapes) != 1 or len(dtypes) != 1:
                raise ValueError(
                    f"parameter {position} differs across seeds: "
                    f"shapes {shapes}, dtypes {dtypes}")
            stacked = Parameter(np.empty(0), name=f"stack.{reference.name}")
            # Assign directly: Parameter's constructor coerces to the current
            # default dtype, but the stack must keep the dtype the networks
            # were built with.
            stacked.data = np.stack([params[position].data
                                     for params in per_net])
            for seed, params in enumerate(per_net):
                params[position].data = stacked.data[seed]
            self._params.append(stacked)
            by_id[id(reference)] = stacked
        self._stacked_of = by_id
        self._version = 0
        #: Persistent per-parameter gradient buffers (see ``_grad_into``).
        self._grad_buffers: Optional[Dict[int, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    @staticmethod
    def _stackable(networks: Sequence) -> bool:
        """Whether parameter lists match in shape and dtype across seeds."""
        if not networks:
            return False
        net0 = networks[0]
        if any(net.state_shape != net0.state_shape
               or net.num_actions != net0.num_actions for net in networks):
            return False
        shapes0 = [p.data.shape for p in net0.parameters()]
        dtypes0 = [p.data.dtype for p in net0.parameters()]
        for net in networks[1:]:
            params = net.parameters()
            if ([p.data.shape for p in params] != shapes0
                    or [p.data.dtype for p in params] != dtypes0):
                return False
        return True

    def parameters(self) -> List[Parameter]:
        """Stacked parameters, ordered like ``networks[0].parameters()``.

        The order matters: per-seed gradient-norm clipping accumulates
        squared norms across parameters in this exact order, mirroring the
        serial ``clip_grad_norm`` call on ``network.parameters()``.
        """
        return list(self._params)

    def stacked_of(self, parameter) -> Parameter:
        """The stacked parameter holding all seeds of ``parameter``."""
        return self._stacked_of[id(parameter)]

    def mark_updated(self) -> None:
        """Invalidate caches after the stacked optimizer stepped.

        The optimizer bumps the *stacked* parameters' versions; the per-seed
        networks' parameters are views whose version counters the optimizer
        never sees, so the seed-level caches are bumped here.
        """
        self._version += 1
        for params in self._per_net_params:
            for p in params:
                p.version = getattr(p, "version", 0) + 1

    @property
    def dtype(self) -> np.dtype:
        return self._params[0].data.dtype

    # ------------------------------------------------------------------ #
    def _grad_into(self, stacked: Parameter) -> Optional[np.ndarray]:
        """Bind and return the persistent gradient buffer for ``stacked``.

        Returns None when gradients must live in a different dtype than the
        weights (mirroring ``Parameter._accumulate``'s cast to the global
        default dtype) — the backward then falls back to allocating casts.
        """
        if np.dtype(get_default_dtype()) != self.dtype:
            return None
        if self._grad_buffers is None:
            self._grad_buffers = {id(p): np.empty_like(p.data)
                                  for p in self._params}
        buffer = self._grad_buffers[id(stacked)]
        stacked.grad = buffer
        return buffer

    def _set_grad(self, stacked: Parameter, grad: np.ndarray) -> None:
        """Assign a computed gradient, casting like ``Parameter._accumulate``."""
        grad = np.asarray(grad, dtype=get_default_dtype())
        stacked.grad = grad.copy() if grad.base is not None else grad


class CompiledSeedStack(SeedParameterStack):
    """Stacked lockstep engine for compiled (generated) architectures.

    Provides the same contract :class:`~repro.abr.networks.PensieveSeedStack`
    gives the multi-seed trainer — ``parameters``/``stacked_of``/
    ``mark_updated``, batched ``fused_forward``/``fused_backward``, and
    per-seed ``seed_policy_forward`` inference contexts — for any network the
    kernel planner can lower.  Seed ``s``'s slice of every kernel equals the
    serial compiled kernel on ``networks[s]`` (batched GEMMs resolve each
    seed's slice with the same BLAS calls), which the equivalence suite pins.
    """

    def __init__(self, networks: Sequence) -> None:
        plans = [plan_for(net) for net in networks]
        if any(plan is None for plan in plans):
            raise ValueError("every stacked network must compile")
        if len({plan.signature for plan in plans}) > 1:
            raise ValueError("stacked networks have mismatched plans")
        if plans[0].has_stochastic_dropout():
            raise ValueError("stochastic dropout cannot train in lockstep")
        super().__init__(networks)
        self.plan = plans[0]
        self._seed_sink = _GradSink(self._params, self.dtype)

    # ------------------------------------------------------------------ #
    @staticmethod
    def compatible(networks: Sequence) -> bool:
        """Whether these networks can train through one compiled stack."""
        networks = list(networks)
        if not networks:
            return False
        if len({type(net) for net in networks}) != 1:
            return False
        plans = [plan_for(net) for net in networks]
        if any(plan is None for plan in plans):
            return False
        if len({plan.signature for plan in plans}) > 1:
            return False
        if plans[0].has_stochastic_dropout():
            return False
        return SeedParameterStack._stackable(networks)

    # ------------------------------------------------------------------ #
    def _resolve(self, param: Parameter) -> np.ndarray:
        return self._stacked_of[id(param)].data

    def fused_forward(self, states: np.ndarray):
        """Stacked fused forward: ``(seeds, batch, *state_shape)`` in."""
        return self.plan.fused_forward(states, resolve=self._resolve,
                                       stacked=True)

    def fused_backward(self, cache, dlogits: np.ndarray,
                       dvalues: np.ndarray) -> None:
        """Gradients land on the stacked ``(seeds, *shape)`` parameters."""
        sink = _StackedSink(self)
        self.plan.fused_backward(cache, dlogits, dvalues,
                                 resolve=self._resolve, stacked=True,
                                 sink=sink)

    def policy_probs(self, states: np.ndarray) -> np.ndarray:
        """Per-seed action probabilities for ``(seeds, batch, *state)``."""
        states = np.asarray(states, dtype=self.dtype)
        logits = _infer_ops(self.plan.encoder_ops + self.plan.actor_ops,
                            states, self._resolve, True)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def seed_policy_forward(self, seed: int, batch: int) -> _ActorInference:
        """A per-seed inference context reading this seed's weight views.

        The per-seed network's parameters are views into the stacked arrays,
        so the context always reads current weights; ``mark_updated`` bumps
        versions so the cached context is rebuilt after rebinding events.
        """
        plan = plan_for(self.networks[seed])
        return plan.inference()


class _StackedSink(_GradSink):
    """Gradient sink writing into the stack's persistent stacked buffers.

    Inherits the add/matmul/sum accumulation discipline from
    :class:`_GradSink` unchanged; only buffer residence differs — the
    persistent buffers live on the stack (keyed by the *stacked*
    parameters), and the serial parameters the ops report are translated
    through ``stacked_of``.
    """

    __slots__ = ("_stack",)

    def __init__(self, stack: CompiledSeedStack) -> None:
        super().__init__(stack.parameters(), stack.dtype)
        self._stack = stack

    def begin(self) -> None:  # buffers live on the stack, not the sink
        self._seen = set()
        self._buffered = np.dtype(get_default_dtype()) == self._dtype

    def _view(self, param: Parameter, shape) -> np.ndarray:
        stacked = self._stack.stacked_of(param)
        buffer = self._stack._grad_into(stacked)
        return buffer if shape is None else buffer.reshape(shape)

    def _fallback(self, param: Parameter, value: np.ndarray) -> None:
        stacked = self._stack.stacked_of(param)
        value = np.asarray(value).reshape(stacked.data.shape)
        if id(param) in self._seen:
            self._stack._set_grad(stacked, stacked.grad + np.asarray(
                value, dtype=get_default_dtype()))
        else:
            self._stack._set_grad(stacked, value)
