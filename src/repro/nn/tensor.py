"""Reverse-mode automatic differentiation over NumPy arrays.

This module provides the :class:`Tensor` class, a thin wrapper around a NumPy
array that records the operations applied to it and can back-propagate
gradients through the resulting computation graph.  It supports the operations
needed by the actor-critic networks used in this reproduction (dense layers,
1-D convolutions, recurrent cells, softmax policies) as well as arbitrary
architectures produced by the LLM design generator.

The design intentionally mirrors small educational autograd engines: each
``Tensor`` stores its value, an optional gradient, the parent tensors it was
derived from and a local backward function.  Calling :meth:`Tensor.backward`
performs a topological sort of the graph and accumulates gradients.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple, "Tensor"]

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "batched_matmul",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype",
]


_GRAD_ENABLED = True

#: Floating-point dtype used for all tensor data and gradients.  float64 is
#: the accuracy-first default; float32 is the fast path (half the memory
#: traffic on the matmul-heavy actor-critic workload).
_DEFAULT_DTYPE = np.dtype(np.float64)

_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype: Union[str, np.dtype, type]) -> np.dtype:
    """Set the global tensor dtype ("float32" or "float64").

    Returns the previous default so callers can restore it.  Tensors created
    before the switch keep their dtype; mixing is handled by NumPy promotion.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported tensor dtype {dtype!r}; choose float32 or float64")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved
    return previous


def get_default_dtype() -> np.dtype:
    """Return the dtype new tensors and gradients are created with."""
    return _DEFAULT_DTYPE


class default_dtype:
    """Context manager that temporarily switches the tensor dtype."""

    def __init__(self, dtype: Union[str, np.dtype, type]) -> None:
        self._dtype = dtype
        self._previous: Optional[np.dtype] = None

    def __enter__(self) -> "default_dtype":
        self._previous = set_default_dtype(self._dtype)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is not None:
            set_default_dtype(self._previous)


class no_grad:
    """Context manager that disables gradient tracking.

    Used during evaluation rollouts where only forward passes are needed,
    which keeps memory usage flat during long simulations.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is currently enabled."""
    return _GRAD_ENABLED


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` (inverse of broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A NumPy-backed tensor with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = tuple(parents) if self.requires_grad or parents else ()
        self._backward = backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, parents=parents, backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=_DEFAULT_DTYPE), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor._make(out_data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(-grad)

        return Tensor._make(out_data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data)
                                     if self.data.ndim == 2 else grad * other_t.data)
                else:
                    self._accumulate(grad @ other_t.data.swapaxes(-1, -2))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad)
                                        if other_t.data.ndim == 2 else grad * self.data)
                else:
                    other_t._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return Tensor._make(out_data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        mask = self.data > 0
        exp_part = alpha * (np.exp(np.minimum(self.data, 0.0)) - 1.0)
        out_data = np.where(mask, self.data, exp_part)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, exp_part + alpha))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)
            if axis is None:
                self._accumulate(np.full_like(self.data, float(grad)))
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                self._accumulate(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)
            if axis is None:
                mask = self.data == out_data
                self._accumulate(mask * float(grad) / mask.sum())
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                mask = self.data == expanded
                counts = mask.sum(axis=axis, keepdims=True)
                self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else None
        out_data = self.data.transpose(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes_tuple is None:
                self._accumulate(np.asarray(grad).transpose())
            else:
                inverse = np.argsort(axes_tuple)
                self._accumulate(np.asarray(grad).transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Softmax / log-softmax (stable implementations)
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return Tensor._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor through the graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without gradients")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


# ---------------------------------------------------------------------- #
# Constructors and free functions
# ---------------------------------------------------------------------- #
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` from array-like data."""
    return Tensor(_as_array(data), requires_grad=requires_grad)


def zeros(shape: Union[int, tuple], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape: Union[int, tuple], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(
    shape: Union[int, tuple],
    scale: float = 1.0,
    requires_grad: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    generator = rng if rng is not None else np.random.default_rng()
    return Tensor(generator.normal(0.0, scale, size=shape), requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``, propagating gradients to each input."""
    tensors = [t if isinstance(t, Tensor) else Tensor(_as_array(t)) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, end)
                t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def unfold1d(x: Tensor, kernel_size: int, stride: int = 1) -> Tensor:
    """Extract sliding windows from a ``(batch, channels, length)`` tensor.

    Returns a ``(batch, positions, channels * kernel_size)`` tensor whose rows
    are the flattened convolution patches, i.e. the im2col matrix.  The whole
    extraction is a single autograd node, which keeps Conv1D graphs small.
    """
    if x.ndim != 3:
        raise ValueError("unfold1d expects a (batch, channels, length) tensor")
    batch, channels, length = x.shape
    if length < kernel_size:
        raise ValueError(
            f"unfold1d input length {length} is shorter than kernel {kernel_size}")
    # (batch, channels, positions, kernel) view without copying.
    windows = np.lib.stride_tricks.sliding_window_view(
        x.data, kernel_size, axis=2)[:, :, ::stride]
    positions = windows.shape[2]
    out_data = np.ascontiguousarray(
        windows.transpose(0, 2, 1, 3)).reshape(batch, positions, channels * kernel_size)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)
        patches = grad.reshape(batch, positions, channels, kernel_size)
        full = np.zeros_like(x.data)
        starts = np.arange(positions) * stride
        # Kernel sizes are small (<= history length), so scatter per tap.
        for tap in range(kernel_size):
            full[:, :, starts + tap] += patches[:, :, :, tap].transpose(0, 2, 1)
        x._accumulate(full)

    return Tensor._make(out_data, (x,), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, propagating gradients to each input."""
    tensors = [t if isinstance(t, Tensor) else Tensor(_as_array(t)) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)
        for index, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(grad, index, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)

def batched_matmul(a: np.ndarray, b: np.ndarray,
                   out: Optional[np.ndarray] = None) -> np.ndarray:
    """Batched GEMM over raw NumPy arrays: ``(S, m, k) @ (S, k, n) -> (S, m, n)``.

    This is the 3-D kernel behind the multi-seed lockstep trainer: the leading
    axis indexes independent training sessions whose weight matrices are
    stacked, and one call resolves every session's GEMM.  NumPy dispatches the
    2-D core of ``matmul`` to BLAS per slice, so each slice of the result is
    bit-identical to computing ``a[s] @ b[s]`` on its own (asserted by the
    seed-for-seed equivalence suite) — stacking changes dispatch overhead, not
    arithmetic.

    Raw ndarrays in, raw ndarray out: this helper exists for the analytic
    fused kernels, which deliberately bypass the autograd graph.
    """
    if a.ndim != 3 or b.ndim != 3:
        raise ValueError(
            f"batched_matmul expects 3-D stacks, got {a.ndim}-D @ {b.ndim}-D")
    if a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]:
        raise ValueError(
            f"batched_matmul shape mismatch: {a.shape} @ {b.shape}")
    return np.matmul(a, b, out=out)
