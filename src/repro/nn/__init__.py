"""NumPy-based neural-network substrate (autograd, layers, optimizers).

This package replaces the TensorFlow dependency of the original Pensieve
implementation with a small, dependency-free reverse-mode autodiff engine and
the layers needed both by the original actor-critic architecture and by the
architecture variants the LLM design generator produces.
"""

from .activations import (
    ACTIVATIONS,
    elu,
    get_activation,
    leaky_relu,
    linear,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    softplus,
    tanh,
)
from .layers import (
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GRUCell,
    LayerNorm,
    LSTMCell,
    Module,
    Parameter,
    Recurrent,
    RNNCell,
    Sequential,
)
from .losses import (
    binary_cross_entropy,
    cross_entropy,
    entropy,
    huber_loss,
    mse_loss,
    policy_gradient_loss,
)
from .compile import (CompileError, CompiledPlan, CompiledSeedStack,
                      CompiledSequence, SeedParameterStack,
                      compilation_enabled, get_numerics, lower_sequence,
                      plan_for, set_compilation, set_numerics)
from .optim import (Adam, Optimizer, RMSProp, SGD, StackedAdam,
                    StackedRMSProp, StackedSGD, clip_grad_norm,
                    clip_grad_norm_stacked)
from .serialization import load_module, load_state, save_module, save_state
from .tensor import (
    Tensor,
    batched_matmul,
    concatenate,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    ones,
    randn,
    set_default_dtype,
    stack,
    tensor,
    unfold1d,
    zeros,
)

__all__ = [
    # tensor
    "Tensor", "tensor", "zeros", "ones", "randn", "batched_matmul",
    "concatenate", "stack",
    "unfold1d", "no_grad", "is_grad_enabled",
    "set_default_dtype", "get_default_dtype", "default_dtype",
    # layers
    "Module", "Parameter", "Dense", "Conv1D", "GRUCell", "LSTMCell", "RNNCell",
    "Recurrent", "Flatten", "Dropout", "Sequential", "LayerNorm",
    # activations
    "relu", "leaky_relu", "elu", "tanh", "sigmoid", "softmax", "log_softmax",
    "linear", "softplus", "get_activation", "ACTIVATIONS",
    # losses
    "mse_loss", "huber_loss", "binary_cross_entropy", "cross_entropy",
    "policy_gradient_loss", "entropy",
    # optim
    "Optimizer", "SGD", "RMSProp", "Adam",
    "StackedSGD", "StackedRMSProp", "StackedAdam",
    "clip_grad_norm", "clip_grad_norm_stacked",
    # compile
    "CompileError", "CompiledPlan", "CompiledSeedStack", "CompiledSequence",
    "SeedParameterStack", "compilation_enabled", "set_compilation",
    "get_numerics", "set_numerics", "plan_for", "lower_sequence",
    # serialization
    "save_state", "load_state", "save_module", "load_module",
]
