"""Gradient-based optimizers for the NumPy neural-network substrate.

Optimizers accept either a flat iterable of :class:`Parameter` objects (one
learning rate for everything) or a PyTorch-style list of *parameter groups*::

    RMSProp([{"params": actor_params, "lr": 1e-3},
             {"params": critic_params, "lr": 1e-2}])

Groups are what lets the A2C trainer honor ``A2CConfig.critic_lr`` for the
critic head while the rest of the network steps at ``actor_lr``.

All update rules are elementwise over each parameter array, so a "stacked"
parameter of shape ``(seeds, *shape)`` — as used by the multi-seed lockstep
trainer — steps exactly as ``seeds`` independent parameters would, bit for
bit.  The one non-elementwise piece, global gradient-norm clipping, has a
dedicated per-seed variant in :func:`clip_grad_norm_stacked`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "RMSProp", "Adam",
           "StackedSGD", "StackedRMSProp", "StackedAdam",
           "clip_grad_norm", "clip_grad_norm_stacked"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping, which training loops log to monitor
    stability.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float(np.vdot(g, g).real) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


def clip_grad_norm_stacked(parameters: Sequence[Parameter],
                           max_norm: float) -> np.ndarray:
    """Per-seed gradient clipping for stacked ``(seeds, *shape)`` parameters.

    Each parameter's leading axis indexes independent training sessions; seed
    ``s`` is clipped against the global norm of its own slices, reproducing
    :func:`clip_grad_norm` applied to each seed's unstacked parameter list.
    The per-slice ``np.vdot`` accumulation deliberately mirrors the serial
    implementation operation for operation (BLAS dot per parameter, Python
    float sum across parameters) so the clipped gradients are bit-identical
    to the serial trainer's, not merely close.

    Returns the ``(seeds,)`` array of pre-clip norms.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return np.zeros(0)
    num_seeds = grads[0].shape[0]
    norms = np.empty(num_seeds)
    for s in range(num_seeds):
        total = float(np.sqrt(sum(float(np.vdot(g[s], g[s]).real)
                                  for g in grads)))
        norms[s] = total
        if total > max_norm and total > 0.0:
            scale = max_norm / total
            for g in grads:
                g[s] *= scale
    return norms


#: One parameter group: ``{"params": [...], "lr": float}``.
ParamGroups = Union[Iterable[Parameter], Sequence[dict]]


class Optimizer:
    """Base optimizer holding parameter groups with per-group learning rates."""

    def __init__(self, parameters: ParamGroups, lr: float = 1e-3) -> None:
        groups = self._normalize_groups(parameters, lr)
        self.param_groups: List[dict] = groups
        self.parameters: List[Parameter] = [p for group in groups
                                            for p in group["params"]]
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        #: Scalar learning rate of the first group (back-compat alias; group
        #: construction can give later groups different rates).
        self.lr = groups[0]["lr"]
        self._lrs: List[float] = [group["lr"] for group in groups
                                  for _ in group["params"]]

    @staticmethod
    def _normalize_groups(parameters: ParamGroups, lr: float) -> List[dict]:
        items = list(parameters)
        if items and isinstance(items[0], dict):
            groups = [{"params": list(g["params"]), "lr": float(g.get("lr", lr))}
                      for g in items]
        else:
            groups = [{"params": items, "lr": float(lr)}]
        for group in groups:
            if group["lr"] <= 0:
                raise ValueError("learning rate must be positive")
        return [group for group in groups if group["params"]]

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: ParamGroups, lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, lr, velocity in zip(self.parameters, self._lrs, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            # In place, so external views of p.data stay aliased (the
            # multi-seed stack exposes per-seed networks as views).
            p.data -= lr * update
            p.version = getattr(p, "version", 0) + 1


class RMSProp(Optimizer):
    """RMSProp, the optimizer used by the original Pensieve implementation."""

    def __init__(self, parameters: ParamGroups, lr: float = 1e-3,
                 decay: float = 0.99, eps: float = 1e-8) -> None:
        super().__init__(parameters, lr)
        self.decay = decay
        self.eps = eps
        self._square_avg = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        # Fused in-place update: the step is memory-bandwidth bound on the
        # large dense weights, so every avoided temporary is wall-clock.
        for p, lr, square_avg, scratch in zip(self.parameters, self._lrs,
                                              self._square_avg, self._scratch):
            if p.grad is None:
                continue
            square_avg *= self.decay
            np.multiply(p.grad, p.grad, out=scratch)
            scratch *= (1.0 - self.decay)
            square_avg += scratch
            np.sqrt(square_avg, out=scratch)
            scratch += self.eps
            np.divide(p.grad, scratch, out=scratch)
            scratch *= lr
            p.data -= scratch
            p.version = getattr(p, "version", 0) + 1


class Adam(Optimizer):
    """Adam optimizer with bias correction."""

    def __init__(self, parameters: ParamGroups, lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for p, lr, m, v, scratch in zip(self.parameters, self._lrs, self._m,
                                        self._v, self._scratch):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=scratch)
            m += scratch
            v *= self.beta2
            np.multiply(grad, grad, out=scratch)
            scratch *= 1.0 - self.beta2
            v += scratch
            # denom = sqrt(v / bias2) + eps, then update = lr * (m / bias1) / denom
            np.divide(v, bias2, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += self.eps
            scratch *= bias1
            np.divide(m, scratch, out=scratch)
            scratch *= lr
            p.data -= scratch
            p.version = getattr(p, "version", 0) + 1

# --------------------------------------------------------------------------- #
# Stacked (multi-seed) optimizers
# --------------------------------------------------------------------------- #
#: Elements per cache block for the stacked update loops: 64 Ki floats is
#: 256 KB in float32, so the four arrays a block touches (data, grad, state,
#: scratch) stay resident in a ~2 MB L2 across the whole update sequence.
STACKED_BLOCK_ELEMS = 65536


def _flat_blocks(*arrays):
    """Yield aligned cache-block views over equally-sized contiguous arrays.

    The multi-pass update rules below are elementwise, so applying every pass
    to one block before moving to the next computes bit-identical values while
    each block's working set stays in L2 instead of streaming the full
    (seeds-times-larger) stacked arrays from memory once per pass.
    """
    flats = [array.reshape(-1) for array in arrays]
    size = flats[0].size
    for start in range(0, size, STACKED_BLOCK_ELEMS):
        yield tuple(flat[start:start + STACKED_BLOCK_ELEMS] for flat in flats)


def _blockable(p: Parameter) -> bool:
    return (p.grad is not None
            and p.data.flags["C_CONTIGUOUS"] and p.grad.flags["C_CONTIGUOUS"]
            and p.grad.dtype == p.data.dtype)


class StackedSGD(SGD):
    """SGD stepping stacked ``(seeds, *shape)`` parameters in cache blocks.

    Same arithmetic as :class:`SGD` (elementwise, so stacking and blocking
    change nothing bit for bit) with the memory traffic of a multi-seed
    parameter bank kept cache-resident per block.
    """

    def step(self) -> None:
        if not all(_blockable(p) for p in self.parameters
                   if p.grad is not None):
            return super().step()
        for p, lr, velocity in zip(self.parameters, self._lrs, self._velocity):
            if p.grad is None:
                continue
            for db, gb, vb in _flat_blocks(p.data, p.grad, velocity):
                grad = gb
                if self.weight_decay:
                    grad = grad + self.weight_decay * db
                if self.momentum:
                    vb *= self.momentum
                    vb += grad
                    update = vb
                else:
                    update = grad
                db -= lr * update
            p.version = getattr(p, "version", 0) + 1


class _SharedScratch:
    """One cache-block-sized scratch array shared by every blocked update.

    A full-size per-parameter scratch would stream ``2x`` the parameter bank
    through memory per update just for temporaries; a single L2-resident
    block is written and read entirely in cache.  Scratch contents are fully
    overwritten before every use, so sharing cannot change any value.
    """

    def __init__(self) -> None:
        self._blocks: dict = {}

    def get(self, dtype, size: int) -> np.ndarray:
        block = self._blocks.get(dtype)
        if block is None:
            block = np.empty(STACKED_BLOCK_ELEMS, dtype=dtype)
            self._blocks[dtype] = block
        return block[:size]


class StackedRMSProp(RMSProp):
    """RMSProp stepping stacked parameters in cache blocks (see :class:`StackedSGD`)."""

    def __init__(self, parameters: ParamGroups, lr: float = 1e-3,
                 decay: float = 0.99, eps: float = 1e-8) -> None:
        super().__init__(parameters, lr)
        # The blocked path replaces the parent's full-bank scratch arrays
        # with one shared cache block; materialize them only if the
        # non-contiguous fallback is ever taken.
        self._scratch = None
        self._shared = _SharedScratch()

    def step(self) -> None:
        if not all(_blockable(p) for p in self.parameters
                   if p.grad is not None):
            if self._scratch is None:
                self._scratch = [np.empty_like(p.data)
                                 for p in self.parameters]
            return super().step()
        for p, lr, square_avg in zip(self.parameters, self._lrs,
                                     self._square_avg):
            if p.grad is None:
                continue
            for db, gb, sb in _flat_blocks(p.data, p.grad, square_avg):
                cb = self._shared.get(db.dtype, gb.size)
                sb *= self.decay
                np.multiply(gb, gb, out=cb)
                cb *= (1.0 - self.decay)
                sb += cb
                np.sqrt(sb, out=cb)
                cb += self.eps
                np.divide(gb, cb, out=cb)
                cb *= lr
                db -= cb
            p.version = getattr(p, "version", 0) + 1


class StackedAdam(Adam):
    """Adam stepping stacked parameters in cache blocks (see :class:`StackedSGD`)."""

    def __init__(self, parameters: ParamGroups, lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr, betas=betas, eps=eps,
                         weight_decay=weight_decay)
        # See StackedRMSProp: the parent's full-bank scratch is only needed
        # by the non-contiguous fallback.
        self._scratch = None
        self._shared = _SharedScratch()

    def step(self) -> None:
        if not all(_blockable(p) for p in self.parameters if p.grad is not None):
            if self._scratch is None:
                self._scratch = [np.empty_like(p.data)
                                 for p in self.parameters]
            return super().step()
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for p, lr, m, v in zip(self.parameters, self._lrs, self._m, self._v):
            if p.grad is None:
                continue
            for db, gb, mb, vb in _flat_blocks(p.data, p.grad, m, v):
                cb = self._shared.get(db.dtype, gb.size)
                grad = gb
                if self.weight_decay:
                    grad = grad + self.weight_decay * db
                mb *= self.beta1
                np.multiply(grad, 1.0 - self.beta1, out=cb)
                mb += cb
                vb *= self.beta2
                np.multiply(grad, grad, out=cb)
                cb *= 1.0 - self.beta2
                vb += cb
                np.divide(vb, bias2, out=cb)
                np.sqrt(cb, out=cb)
                cb += self.eps
                cb *= bias1
                np.divide(mb, cb, out=cb)
                cb *= lr
                db -= cb
            p.version = getattr(p, "version", 0) + 1
