"""Gradient-based optimizers for the NumPy neural-network substrate."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "RMSProp", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping, which training loops log to monitor
    stability.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float(np.vdot(g, g).real) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, velocity in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            p.data = p.data - self.lr * update
            p.version = getattr(p, "version", 0) + 1


class RMSProp(Optimizer):
    """RMSProp, the optimizer used by the original Pensieve implementation."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 decay: float = 0.99, eps: float = 1e-8) -> None:
        super().__init__(parameters, lr)
        self.decay = decay
        self.eps = eps
        self._square_avg = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        # Fused in-place update: the step is memory-bandwidth bound on the
        # large dense weights, so every avoided temporary is wall-clock.
        for p, square_avg, scratch in zip(self.parameters, self._square_avg,
                                          self._scratch):
            if p.grad is None:
                continue
            square_avg *= self.decay
            np.multiply(p.grad, p.grad, out=scratch)
            scratch *= (1.0 - self.decay)
            square_avg += scratch
            np.sqrt(square_avg, out=scratch)
            scratch += self.eps
            np.divide(p.grad, scratch, out=scratch)
            scratch *= self.lr
            p.data -= scratch
            p.version = getattr(p, "version", 0) + 1


class Adam(Optimizer):
    """Adam optimizer with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for p, m, v, scratch in zip(self.parameters, self._m, self._v,
                                    self._scratch):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=scratch)
            m += scratch
            v *= self.beta2
            np.multiply(grad, grad, out=scratch)
            scratch *= 1.0 - self.beta2
            v += scratch
            # denom = sqrt(v / bias2) + eps, then update = lr * (m / bias1) / denom
            np.divide(v, bias2, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += self.eps
            scratch *= bias1
            np.divide(m, scratch, out=scratch)
            scratch *= self.lr
            p.data -= scratch
            p.version = getattr(p, "version", 0) + 1
