"""Packet-level emulation substrate (dash.js-over-Mahimahi substitute).

Layers: :mod:`link` (packet delivery schedule), :mod:`tcp` (slow start /
congestion avoidance), :mod:`http` (request/response), :mod:`player`
(dash.js-like client) and :mod:`emulator` (policy-in-the-loop runner).
"""

from .emulator import (
    EmulationConfig,
    Emulator,
    emulate_session,
    evaluate_policy_emulated,
)
from .http import HTTPClient, HTTPConfig, HTTPResponse
from .link import MTU_BYTES, LinkConfig, PacketDeliveryLink
from .player import DashPlayer, PlayerConfig, PlayerEvent
from .tcp import TCPConfig, TCPConnection, TransferResult

__all__ = [
    "LinkConfig", "PacketDeliveryLink", "MTU_BYTES",
    "TCPConfig", "TCPConnection", "TransferResult",
    "HTTPConfig", "HTTPClient", "HTTPResponse",
    "PlayerConfig", "DashPlayer", "PlayerEvent",
    "EmulationConfig", "Emulator", "emulate_session", "evaluate_policy_emulated",
]
