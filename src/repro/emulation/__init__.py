"""Packet-level emulation substrate (dash.js-over-Mahimahi substitute).

Layers: :mod:`link` (packet delivery schedule), :mod:`tcp` (slow start /
congestion avoidance), :mod:`http` (request/response), :mod:`player`
(dash.js-like client), :mod:`emulator` (policy-in-the-loop runner) and
:mod:`fleet` (event-driven fleet harness: N concurrent sessions, one batched
policy forward per decision tick — the ``repro serve`` engine).
"""

from .emulator import (
    EmulationConfig,
    Emulator,
    emulate_session,
    emulation_context_fingerprint,
    emulation_result_key,
    evaluate_policy_emulated,
    policy_fingerprint,
)
from .fleet import (
    ARRIVAL_PROCESSES,
    BatchedPolicy,
    Fleet,
    FleetConfig,
    FleetResult,
    ServingMetrics,
    session_rng,
)
from .http import HTTPClient, HTTPConfig, HTTPResponse
from .link import DELIVERY_ENGINES, MTU_BYTES, LinkConfig, PacketDeliveryLink
from .player import DashPlayer, PlayerConfig, PlayerEvent
from .tcp import TCPConfig, TCPConnection, TransferResult

__all__ = [
    "LinkConfig", "PacketDeliveryLink", "MTU_BYTES", "DELIVERY_ENGINES",
    "TCPConfig", "TCPConnection", "TransferResult",
    "HTTPConfig", "HTTPClient", "HTTPResponse",
    "PlayerConfig", "DashPlayer", "PlayerEvent",
    "EmulationConfig", "Emulator", "emulate_session", "evaluate_policy_emulated",
    "emulation_context_fingerprint", "policy_fingerprint", "emulation_result_key",
    "FleetConfig", "ServingMetrics", "FleetResult", "BatchedPolicy", "Fleet",
    "session_rng", "ARRIVAL_PROCESSES",
]
