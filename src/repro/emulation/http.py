"""Minimal HTTP/1.1 request-response model over the TCP connection.

dash.js fetches each video chunk with an HTTP GET on a persistent connection.
The cost of a fetch is one request RTT (request upstream + first response byte
downstream) plus the body transfer time from the TCP model, plus a small
server processing delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .link import PacketDeliveryLink
from .tcp import TCPConfig, TCPConnection, TransferResult

__all__ = ["HTTPConfig", "HTTPResponse", "HTTPClient"]


@dataclass(frozen=True)
class HTTPConfig:
    """Parameters of the HTTP request model."""

    #: Server-side processing latency per request (seconds).
    server_processing_s: float = 0.005
    #: Size of the HTTP request plus response headers (bytes); added to the
    #: body so header overhead is accounted for.
    header_overhead_bytes: float = 600.0


@dataclass
class HTTPResponse:
    """Timing of one completed HTTP GET."""

    request_sent_s: float
    response_complete_s: float
    body_bytes: float
    throughput_mbps: float

    @property
    def latency_s(self) -> float:
        return self.response_complete_s - self.request_sent_s


class HTTPClient:
    """Issues sequential HTTP GETs over a single persistent connection."""

    def __init__(self, link: PacketDeliveryLink,
                 http_config: Optional[HTTPConfig] = None,
                 tcp_config: Optional[TCPConfig] = None) -> None:
        self.link = link
        self.config = http_config or HTTPConfig()
        self.connection = TCPConnection(link, tcp_config)

    def get(self, request_time_s: float, body_bytes: float) -> HTTPResponse:
        """Fetch ``body_bytes`` starting at ``request_time_s``."""
        if body_bytes < 0:
            raise ValueError("body size cannot be negative")
        # Request travels upstream (one-way delay), the server processes it,
        # then the response body is streamed back over TCP.
        transfer_start = (request_time_s
                          + self.link.config.one_way_delay_s
                          + self.config.server_processing_s)
        result: TransferResult = self.connection.transfer(
            transfer_start, body_bytes + self.config.header_overhead_bytes)
        # The final byte still needs to propagate to the client.
        complete = result.end_s + self.link.config.one_way_delay_s
        duration = max(complete - request_time_s, 1e-9)
        throughput = body_bytes * 8.0 / duration / 1e6
        return HTTPResponse(
            request_sent_s=request_time_s,
            response_complete_s=complete,
            body_bytes=float(body_bytes),
            throughput_mbps=throughput,
        )
