"""Policy-in-the-loop emulation runner.

This is the substitute for the paper's dash.js-over-Mahimahi emulation setup:
a packet-granularity link replay, a TCP throughput model, an HTTP fetch model
and a dash.js-like player, wired together so any ABR policy (classic baseline
or trained RL agent) can be evaluated end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..abr.env import Observation, SessionResult
from ..abr.qoe import LinearQoE, QoEMetric
from ..abr.video import Video
from ..traces.base import Trace, TraceSet
from .http import HTTPConfig
from .link import LinkConfig, PacketDeliveryLink
from .player import DashPlayer, PlayerConfig
from .tcp import TCPConfig

__all__ = ["EmulationConfig", "Emulator", "emulate_session", "evaluate_policy_emulated"]

Policy = Callable[[Observation], int]


@dataclass(frozen=True)
class EmulationConfig:
    """Bundle of all emulation-layer configurations."""

    link: LinkConfig = LinkConfig()
    tcp: TCPConfig = TCPConfig()
    http: HTTPConfig = HTTPConfig()
    player: PlayerConfig = PlayerConfig()


class Emulator:
    """Runs streaming sessions for one video over traces, via the full stack."""

    def __init__(self, video: Video, qoe: Optional[QoEMetric] = None,
                 config: Optional[EmulationConfig] = None) -> None:
        self.video = video
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.config = config or EmulationConfig()

    def run(self, policy: Policy, trace: Trace) -> SessionResult:
        """Stream the whole video over ``trace`` using ``policy``."""
        link = PacketDeliveryLink(trace, self.config.link)
        player = DashPlayer(self.video, link, qoe=self.qoe,
                            player_config=self.config.player,
                            http_config=self.config.http,
                            tcp_config=self.config.tcp)
        while not player.done:
            observation = player.observe()
            action = int(policy(observation))
            player.step(action)
        return player.result()

    def evaluate(self, policy: Policy, traces: TraceSet) -> float:
        """Mean per-chunk QoE of ``policy`` across all traces in the set."""
        scores = [self.run(policy, trace).mean_reward for trace in traces]
        return float(np.mean(scores))


def emulate_session(policy: Policy, video: Video, trace: Trace,
                    qoe: Optional[QoEMetric] = None,
                    config: Optional[EmulationConfig] = None) -> SessionResult:
    """Convenience wrapper: emulate one session and return the result."""
    return Emulator(video, qoe=qoe, config=config).run(policy, trace)


def evaluate_policy_emulated(policy: Policy, video: Video, traces: TraceSet,
                             qoe: Optional[QoEMetric] = None,
                             config: Optional[EmulationConfig] = None) -> float:
    """Convenience wrapper: mean per-chunk QoE over a trace set."""
    return Emulator(video, qoe=qoe, config=config).evaluate(policy, traces)
