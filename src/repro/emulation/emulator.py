"""Policy-in-the-loop emulation runner.

This is the substitute for the paper's dash.js-over-Mahimahi emulation setup:
a packet-granularity link replay, a TCP throughput model, an HTTP fetch model
and a dash.js-like player, wired together so any ABR policy (classic baseline
or trained RL agent) can be evaluated end to end.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING

import numpy as np

from .. import nn
from ..abr.env import Observation, SessionResult
from ..abr.networks import fast_inference_enabled
from ..abr.qoe import LinearQoE, QoEMetric
from ..abr.state import original_state_function
from ..abr.video import Video
from ..core.results import _array_digest, _config_tokens, _sha256
from ..traces.base import Trace, TraceSet
from .http import HTTPConfig
from .link import LinkConfig, PacketDeliveryLink
from .player import DashPlayer, PlayerConfig
from .tcp import TCPConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.results import ResultStore

__all__ = [
    "EmulationConfig", "Emulator", "emulate_session", "evaluate_policy_emulated",
    "emulation_context_fingerprint", "policy_fingerprint", "emulation_result_key",
]

Policy = Callable[[Observation], int]

#: Schema tag for emulation payload records; bump when the payload layout or
#: any key-material convention below changes.
_EMULATION_SCHEMA = "emu-v1"


@dataclass(frozen=True)
class EmulationConfig:
    """Bundle of all emulation-layer configurations."""

    link: LinkConfig = LinkConfig()
    tcp: TCPConfig = TCPConfig()
    http: HTTPConfig = HTTPConfig()
    player: PlayerConfig = PlayerConfig()


class Emulator:
    """Runs streaming sessions for one video over traces, via the full stack."""

    def __init__(self, video: Video, qoe: Optional[QoEMetric] = None,
                 config: Optional[EmulationConfig] = None) -> None:
        self.video = video
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.config = config or EmulationConfig()

    def run(self, policy: Policy, trace: Trace) -> SessionResult:
        """Stream the whole video over ``trace`` using ``policy``."""
        link = PacketDeliveryLink(trace, self.config.link)
        player = DashPlayer(self.video, link, qoe=self.qoe,
                            player_config=self.config.player,
                            http_config=self.config.http,
                            tcp_config=self.config.tcp)
        while not player.done:
            observation = player.observe()
            action = int(policy(observation))
            player.step(action)
        return player.result()

    def evaluate(self, policy: Policy, traces: TraceSet) -> float:
        """Mean per-chunk QoE of ``policy`` across all traces in the set."""
        scores = [self.run(policy, trace).mean_reward for trace in traces]
        return float(np.mean(scores))


def emulate_session(policy: Policy, video: Video, trace: Trace,
                    qoe: Optional[QoEMetric] = None,
                    config: Optional[EmulationConfig] = None) -> SessionResult:
    """Convenience wrapper: emulate one session and return the result."""
    return Emulator(video, qoe=qoe, config=config).run(policy, trace)


def emulation_context_fingerprint(video: Video, qoe: Optional[QoEMetric] = None,
                                  config: Optional[EmulationConfig] = None,
                                  environment: str = "") -> str:
    """Fingerprint of everything in the *emulation* context that shapes results.

    The emulation analogue of :func:`repro.core.results.context_fingerprint`:
    covers the environment label, the engine toggles that are only
    round-off-equivalent (dtype, folded inference, kernel compilation and its
    numerics mode), the full :class:`EmulationConfig` — including
    ``link.delivery_engine``, whose prefix/bisect inversions agree to ~1e-14
    but **not** bitwise — the video and the QoE metric.

    Deliberately excluded: every :class:`~repro.emulation.fleet.FleetConfig`
    field (arrival process/rate/seed, batch window, max batch).  Those are
    engine-only — the fleet's bit-identity contract pins per-session results
    across all of them — so keying on them would only fragment the cache.
    """
    qoe = qoe or LinearQoE(video.bitrates_kbps)
    config = config or EmulationConfig()
    parts = [
        _EMULATION_SCHEMA.encode("utf-8"),
        environment.encode("utf-8"),
        str(nn.get_default_dtype()).encode("utf-8"),
        f"fast_inference={fast_inference_enabled()}".encode("utf-8"),
        f"compile={nn.compilation_enabled()}".encode("utf-8"),
        f"numerics={nn.get_numerics()}".encode("utf-8"),
        _config_tokens(config),
        _config_tokens({
            "bitrates_kbps": list(video.bitrates_kbps),
            "chunk_duration_s": video.chunk_duration_s,
        }),
        _array_digest(video.chunk_sizes_bytes),
        _config_tokens({
            "qoe_class": type(qoe).__name__,
            "bitrates_kbps": list(qoe.bitrates_kbps),
            "rebuffer_penalty": qoe.rebuffer_penalty,
            "smoothness_penalty": qoe.smoothness_penalty,
        }),
    ]
    return _sha256(parts)


def policy_fingerprint(policy) -> Optional[str]:
    """Content address of a policy, or None when it cannot be fingerprinted.

    Only an :class:`~repro.rl.agent.ABRAgent` whose state function is the
    trusted built-in original can be soundly content-addressed: its behaviour
    is fully determined by the network's parameter arrays (digested here) and
    the fixed original state arithmetic.  Generated state functions (exec'd
    source) and plain baseline callables may close over arbitrary mutable
    state, so they return None and the caller bypasses the store — a cache
    miss is always safe; a false hit never is.
    """
    from ..rl.agent import ABRAgent  # local: rl.agent is a leaf consumer

    if not isinstance(policy, ABRAgent):
        return None
    if not (policy.state_function.trusted
            and getattr(policy.state_function, "_func", None)
            is original_state_function):
        return None
    digest = hashlib.sha256()
    digest.update(policy.state_function.name.encode("utf-8"))
    digest.update(type(policy.network).__name__.encode("utf-8"))
    for name, array in sorted(policy.network.state_dict().items()):
        digest.update(name.encode("utf-8"))
        digest.update(_array_digest(array))
    return digest.hexdigest()


def emulation_result_key(context: str, policy_fp: str, trace: Trace,
                         greedy: bool = True, sample_seed: int = 0,
                         rng_index: int = 0) -> str:
    """Store key of one (context, policy, trace, action-discipline) session.

    The trace enters by content (timestamp/throughput array digests), not by
    name.  Greedy sessions share one record regardless of seeds; stochastic
    sessions key on the sample seed *and* the RNG spawn index, because
    :func:`~repro.emulation.fleet.session_rng` streams differ per index.
    """
    discipline = ("greedy" if greedy
                  else f"sample:{int(sample_seed)}:{int(rng_index)}")
    return _sha256([
        context.encode("utf-8"),
        policy_fp.encode("utf-8"),
        _array_digest(trace.timestamps_s),
        _array_digest(trace.throughputs_mbps),
        discipline.encode("utf-8"),
    ])


def evaluate_policy_emulated(policy: Policy, video: Video, traces: TraceSet,
                             qoe: Optional[QoEMetric] = None,
                             config: Optional[EmulationConfig] = None, *,
                             store: Optional["ResultStore"] = None,
                             environment: str = "",
                             greedy: bool = True,
                             sample_seed: int = 0) -> float:
    """Mean per-chunk QoE over a trace set, optionally via the result store.

    Without a ``store`` this is the classic serial path: one
    :meth:`Emulator.run` per trace.  With a ``store``, each (context, policy,
    trace) session is content-addressed — warm traces replay from disk, and
    only the missing ones are emulated, batched through one
    :class:`~repro.emulation.fleet.Fleet` run so repeated sweeps behave like
    warm campaigns.  Policies that cannot be fingerprinted (see
    :func:`policy_fingerprint`) silently bypass the store.

    ``greedy``/``sample_seed`` apply only when ``policy`` is an agent; the
    stochastic discipline draws each trace's actions from
    ``session_rng(sample_seed, position_in_trace_set)`` so a record's content
    never depends on which other traces happened to be cold.
    """
    trace_list = list(traces)
    policy_fp = policy_fingerprint(policy) if store is not None else None
    if policy_fp is None:
        from ..rl.agent import ABRAgent
        if isinstance(policy, ABRAgent):
            from .fleet import BatchedPolicy
            adapter = BatchedPolicy(policy, greedy=greedy,
                                    sample_seed=sample_seed)
            emulator = Emulator(video, qoe=qoe, config=config)
            scores = [emulator.run(adapter.serial_policy(i), trace).mean_reward
                      for i, trace in enumerate(trace_list)]
            return float(np.mean(scores))
        return Emulator(video, qoe=qoe, config=config).evaluate(policy, trace_list)

    context = emulation_context_fingerprint(video, qoe, config, environment)
    keys = [emulation_result_key(context, policy_fp, trace, greedy=greedy,
                                 sample_seed=sample_seed, rng_index=i)
            for i, trace in enumerate(trace_list)]
    scores: List[Optional[float]] = [None] * len(trace_list)
    missing: List[int] = []
    for i, key in enumerate(keys):
        payload = store.get_payload(key)
        if payload is not None:
            scores[i] = float(payload["mean_reward"])
        else:
            missing.append(i)

    if missing:
        from .fleet import Fleet, FleetConfig  # local: fleet imports this module

        fleet = Fleet(video, [trace_list[i] for i in missing], qoe=qoe,
                      config=FleetConfig(emulation=config or EmulationConfig(),
                                         arrival_process="instant"))
        result = fleet.run(policy, num_sessions=len(missing), greedy=greedy,
                           sample_seed=sample_seed, rng_indices=missing)
        for slot, session in zip(missing, result.sessions):
            scores[slot] = session.mean_reward
            store.put_payload(keys[slot], {
                "schema": _EMULATION_SCHEMA,
                "mean_reward": session.mean_reward,
                "num_chunks": len(session.records),
                "actions": [record.bitrate_index for record in session.records],
            }, meta={"trace": trace_list[slot].name, "environment": environment})
    return float(np.mean([s for s in scores]))
