"""Packet-granularity trace-driven link (Mahimahi's ``mm-link`` model).

Mahimahi replays a *packet-delivery trace*: a list of millisecond timestamps,
each of which is an opportunity to deliver one MTU-sized packet.  This module
converts a bandwidth :class:`~repro.traces.base.Trace` into the same
delivery-opportunity schedule and exposes the primitive the TCP model needs:
"how many bytes can the link deliver between time ``t0`` and ``t1``", and its
inverse, "at what time will ``n`` bytes have been delivered if transmission
starts at ``t0``".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..traces.base import Trace

__all__ = ["LinkConfig", "PacketDeliveryLink"]

MTU_BYTES = 1500
BITS_PER_BYTE = 8


@dataclass(frozen=True)
class LinkConfig:
    """Static properties of the emulated bottleneck link."""

    #: One-way propagation delay in seconds (each direction).
    one_way_delay_s: float = 0.040
    #: Millisecond granularity used when discretizing the bandwidth trace.
    granularity_ms: int = 100
    #: Random per-packet jitter applied to delivery times (std dev, seconds).
    jitter_std_s: float = 0.0

    @property
    def rtt_s(self) -> float:
        return 2.0 * self.one_way_delay_s


class PacketDeliveryLink:
    """Delivery-opportunity schedule derived from a bandwidth trace.

    The schedule repeats cyclically (like Mahimahi's trace replay), so
    arbitrarily long sessions can be emulated over a finite trace.
    """

    def __init__(self, trace: Trace, config: Optional[LinkConfig] = None) -> None:
        self.trace = trace
        self.config = config or LinkConfig()
        self._build_schedule()

    def _build_schedule(self) -> None:
        granularity_s = self.config.granularity_ms / 1000.0
        duration_s = self.trace.duration_s
        n_windows = max(1, int(np.ceil(duration_s / granularity_s)))
        # Packets deliverable in each window, carrying fractional remainders so
        # long-run throughput matches the trace exactly.
        packets_per_window = np.zeros(n_windows, dtype=np.int64)
        carry_bits = 0.0
        for w in range(n_windows):
            mbps = self.trace.throughput_at(w * granularity_s)
            bits = mbps * 1e6 * granularity_s + carry_bits
            packets = int(bits // (MTU_BYTES * BITS_PER_BYTE))
            carry_bits = bits - packets * MTU_BYTES * BITS_PER_BYTE
            packets_per_window[w] = packets
        self._packets_per_window = packets_per_window
        self._granularity_s = granularity_s
        self._cycle_s = n_windows * granularity_s
        self._cycle_packets = int(packets_per_window.sum())
        self._cumulative = np.concatenate([[0], np.cumsum(packets_per_window)])

    # ------------------------------------------------------------------ #
    @property
    def cycle_duration_s(self) -> float:
        return self._cycle_s

    @property
    def mean_throughput_mbps(self) -> float:
        if self._cycle_s <= 0:
            return 0.0
        bits = self._cycle_packets * MTU_BYTES * BITS_PER_BYTE
        return bits / self._cycle_s / 1e6

    # ------------------------------------------------------------------ #
    def packets_delivered_between(self, start_s: float, end_s: float) -> int:
        """Number of delivery opportunities in ``[start_s, end_s)``."""
        if end_s <= start_s:
            return 0
        return self._packets_before(end_s) - self._packets_before(start_s)

    def _packets_before(self, time_s: float) -> int:
        if time_s <= 0:
            return 0
        full_cycles = int(time_s // self._cycle_s)
        remainder_s = time_s - full_cycles * self._cycle_s
        window = min(int(remainder_s / self._granularity_s), len(self._packets_per_window))
        partial = int(self._cumulative[window])
        # Within the current window, deliveries are spread uniformly.
        if window < len(self._packets_per_window):
            window_fraction = (remainder_s - window * self._granularity_s) / self._granularity_s
            partial += int(self._packets_per_window[window] * window_fraction)
        return full_cycles * self._cycle_packets + partial

    def time_to_deliver(self, start_s: float, num_bytes: float,
                        rate_cap_bytes_per_s: Optional[float] = None) -> float:
        """Time at which ``num_bytes`` will have been delivered, starting at ``start_s``.

        ``rate_cap_bytes_per_s`` optionally limits the sending rate (used by
        the TCP model during slow start, when the sender — not the link — is
        the bottleneck).
        """
        if num_bytes <= 0:
            return start_s
        packets_needed = int(np.ceil(num_bytes / MTU_BYTES))
        if self._cycle_packets == 0:
            raise RuntimeError("link trace has zero capacity; nothing can be delivered")

        # Binary search over time for the link-limited completion.
        low = start_s
        high = start_s + self._cycle_s
        target = self._packets_before(start_s) + packets_needed
        while self._packets_before(high) < target:
            high += self._cycle_s
        for _ in range(64):
            mid = 0.5 * (low + high)
            if self._packets_before(mid) >= target:
                high = mid
            else:
                low = mid
        link_limited_end = high

        if rate_cap_bytes_per_s is not None and rate_cap_bytes_per_s > 0:
            sender_limited_end = start_s + num_bytes / rate_cap_bytes_per_s
            return max(link_limited_end, sender_limited_end)
        return link_limited_end

    def throughput_between(self, start_s: float, end_s: float) -> float:
        """Average delivered throughput (Mbit/s) over ``[start_s, end_s)``."""
        duration = end_s - start_s
        if duration <= 0:
            return 0.0
        packets = self.packets_delivered_between(start_s, end_s)
        return packets * MTU_BYTES * BITS_PER_BYTE / duration / 1e6
