"""Packet-granularity trace-driven link (Mahimahi's ``mm-link`` model).

Mahimahi replays a *packet-delivery trace*: a list of millisecond timestamps,
each of which is an opportunity to deliver one MTU-sized packet.  This module
converts a bandwidth :class:`~repro.traces.base.Trace` into the same
delivery-opportunity schedule and exposes the primitive the TCP model needs:
"how many bytes can the link deliver between time ``t0`` and ``t1``", and its
inverse, "at what time will ``n`` bytes have been delivered if transmission
starts at ``t0``".

The inverse comes in two engines, mirroring the simulator's
``download_engine`` pair (``prefix_sum`` fast path / ``segment_walk``
reference):

* ``"prefix"`` (default) — analytic inversion of the cumulative
  delivery-opportunity prefix (the same prefix-lookup idiom as
  :meth:`repro.traces.base.Trace.capacity_prefix`): one ``searchsorted``
  over the per-window cumulative packet counts finds the delivery window,
  a division finds the position inside it.  O(log windows) per call.
* ``"bisect"`` — the original cycle-doubling + 64-iteration binary search
  over :meth:`PacketDeliveryLink._packets_before`, kept as the tested
  reference.  O(64 · log windows) per call; this was ~80% of serial
  emulation runtime.

The two engines agree to floating-point inversion accuracy but are not
bit-identical, so ``delivery_engine`` is part of the emulation result-store
key (see :func:`repro.emulation.emulator.emulation_context_fingerprint`).

Delivery schedules are deterministic functions of ``(trace, granularity)``;
they are cached per trace in a weak-keyed module cache so a fleet of
sessions replaying a shared trace pays the construction cost once instead
of once per session.
"""

from __future__ import annotations

import weakref
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..traces.base import Trace

__all__ = ["LinkConfig", "PacketDeliveryLink", "DELIVERY_ENGINES"]

MTU_BYTES = 1500
BITS_PER_BYTE = 8

#: Supported values for :attr:`LinkConfig.delivery_engine`.
DELIVERY_ENGINES = ("prefix", "bisect")


@dataclass(frozen=True)
class LinkConfig:
    """Static properties of the emulated bottleneck link."""

    #: One-way propagation delay in seconds (each direction).
    one_way_delay_s: float = 0.040
    #: Millisecond granularity used when discretizing the bandwidth trace.
    granularity_ms: int = 100
    #: Random per-packet jitter applied to delivery times (std dev, seconds).
    jitter_std_s: float = 0.0
    #: How :meth:`PacketDeliveryLink.time_to_deliver` inverts the delivery
    #: schedule: ``"prefix"`` (analytic prefix lookup, fast default) or
    #: ``"bisect"`` (binary search, the tested reference).  The engines agree
    #: to inversion accuracy but not bitwise, so this field is keyed into the
    #: emulation result store.
    delivery_engine: str = "prefix"

    @property
    def rtt_s(self) -> float:
        return 2.0 * self.one_way_delay_s


# Delivery schedules keyed by (trace -> {granularity_ms: schedule tuple}).
# Weak keys: dropping the last reference to a trace drops its schedules.  The
# cache is read-shared between links (the arrays are never mutated), which is
# what makes constructing a fleet of N sessions over a handful of traces
# O(traces) instead of O(sessions) schedule builds.
_SCHEDULE_CACHE: "weakref.WeakKeyDictionary[Trace, Dict[int, tuple]]" = (
    weakref.WeakKeyDictionary())


def _delivery_schedule(trace: Trace, granularity_ms: int) -> Tuple[np.ndarray, np.ndarray, float, float, int]:
    """Build (or fetch cached) the delivery-opportunity schedule for a trace.

    Returns ``(packets_per_window, cumulative, granularity_s, cycle_s,
    cycle_packets)``.  The per-window packet counts carry fractional-bit
    remainders exactly like the original scalar loop (bit-identical), but
    the per-window bandwidth samples come from one vectorized
    :meth:`Trace.throughputs_at` call instead of thousands of scalar
    lookups.
    """
    per_trace = _SCHEDULE_CACHE.get(trace)
    if per_trace is None:
        per_trace = {}
        _SCHEDULE_CACHE[trace] = per_trace
    cached = per_trace.get(int(granularity_ms))
    if cached is not None:
        return cached

    granularity_s = granularity_ms / 1000.0
    duration_s = trace.duration_s
    n_windows = max(1, int(np.ceil(duration_s / granularity_s)))
    window_starts = np.arange(n_windows, dtype=np.float64) * granularity_s
    mbps_per_window = trace.throughputs_at(window_starts).tolist()
    # Packets deliverable in each window, carrying fractional remainders so
    # long-run throughput matches the trace exactly.  The carry recurrence is
    # inherently sequential; it runs over plain floats for speed but performs
    # the exact arithmetic of the original per-window loop.
    packet_bits = MTU_BYTES * BITS_PER_BYTE
    packets_per_window = np.zeros(n_windows, dtype=np.int64)
    carry_bits = 0.0
    for w, mbps in enumerate(mbps_per_window):
        bits = mbps * 1e6 * granularity_s + carry_bits
        packets = int(bits // packet_bits)
        carry_bits = bits - packets * packet_bits
        packets_per_window[w] = packets
    cumulative = np.concatenate([[0], np.cumsum(packets_per_window)])
    # Plain-Python mirrors of the arrays for the per-round hot path: list
    # indexing and ``bisect`` beat NumPy scalar indexing / the searchsorted
    # wrapper by several microseconds per call, which matters at ~50 TCP
    # rounds per chunk.
    schedule = (packets_per_window, cumulative, granularity_s,
                n_windows * granularity_s, int(packets_per_window.sum()),
                packets_per_window.tolist(), cumulative.tolist())
    per_trace[int(granularity_ms)] = schedule
    return schedule


class PacketDeliveryLink:
    """Delivery-opportunity schedule derived from a bandwidth trace.

    The schedule repeats cyclically (like Mahimahi's trace replay), so
    arbitrarily long sessions can be emulated over a finite trace.
    """

    def __init__(self, trace: Trace, config: Optional[LinkConfig] = None) -> None:
        self.trace = trace
        self.config = config or LinkConfig()
        if self.config.delivery_engine not in DELIVERY_ENGINES:
            raise ValueError(
                f"unknown delivery engine {self.config.delivery_engine!r}; "
                f"expected one of {DELIVERY_ENGINES}")
        (self._packets_per_window, self._cumulative, self._granularity_s,
         self._cycle_s, self._cycle_packets, self._pw_list,
         self._cum_list) = _delivery_schedule(trace, self.config.granularity_ms)
        self._n_windows = len(self._pw_list)

    # ------------------------------------------------------------------ #
    @property
    def cycle_duration_s(self) -> float:
        return self._cycle_s

    @property
    def mean_throughput_mbps(self) -> float:
        if self._cycle_s <= 0:
            return 0.0
        bits = self._cycle_packets * MTU_BYTES * BITS_PER_BYTE
        return bits / self._cycle_s / 1e6

    # ------------------------------------------------------------------ #
    def packets_delivered_between(self, start_s: float, end_s: float) -> int:
        """Number of delivery opportunities in ``[start_s, end_s)``."""
        if end_s <= start_s:
            return 0
        return self._packets_before(end_s) - self._packets_before(start_s)

    def _packets_before(self, time_s: float) -> int:
        if time_s <= 0:
            return 0
        full_cycles = int(time_s // self._cycle_s)
        remainder_s = time_s - full_cycles * self._cycle_s
        window = int(remainder_s / self._granularity_s)
        if window > self._n_windows:
            window = self._n_windows
        partial = self._cum_list[window]
        # Within the current window, deliveries are spread uniformly.
        if window < self._n_windows:
            window_fraction = (remainder_s - window * self._granularity_s) / self._granularity_s
            partial += int(self._pw_list[window] * window_fraction)
        return full_cycles * self._cycle_packets + partial

    def time_to_deliver(self, start_s: float, num_bytes: float,
                        rate_cap_bytes_per_s: Optional[float] = None) -> float:
        """Time at which ``num_bytes`` will have been delivered, starting at ``start_s``.

        ``rate_cap_bytes_per_s`` optionally limits the sending rate (used by
        the TCP model during slow start, when the sender — not the link — is
        the bottleneck).
        """
        if num_bytes <= 0:
            return start_s
        packets_needed = int(np.ceil(num_bytes / MTU_BYTES))
        if self._cycle_packets == 0:
            raise RuntimeError("link trace has zero capacity; nothing can be delivered")
        target = self._packets_before(start_s) + packets_needed

        if self.config.delivery_engine == "bisect":
            link_limited_end = self._invert_bisect(start_s, target)
        else:
            link_limited_end = self._invert_prefix(target)

        if rate_cap_bytes_per_s is not None and rate_cap_bytes_per_s > 0:
            sender_limited_end = start_s + num_bytes / rate_cap_bytes_per_s
            return max(link_limited_end, sender_limited_end)
        return link_limited_end

    def _invert_bisect(self, start_s: float, target: int) -> float:
        """Reference inversion: binary search over time for the target count."""
        low = start_s
        high = start_s + self._cycle_s
        while self._packets_before(high) < target:
            high += self._cycle_s
        for _ in range(64):
            mid = 0.5 * (low + high)
            if self._packets_before(mid) >= target:
                high = mid
            else:
                low = mid
        return high

    def _invert_prefix(self, target: int) -> float:
        """Analytic inversion of the cumulative delivery prefix.

        Locates the cycle by integer division, the window by one
        ``searchsorted`` over the cumulative packet counts, and the position
        inside the window by the uniform-spread model ``count = ⌊pw·frac⌋``.
        A bounded ``nextafter`` fix-up absorbs the few-ulp rounding of the
        analytic division so the invariant ``_packets_before(t) >= target``
        (the property the bisect reference converges to) always holds; if
        the fix-up budget is ever exhausted the bisect reference answers
        instead, so the engine can only disagree with the model by ulps,
        never by packets.
        """
        cycles, rem = divmod(target, self._cycle_packets)
        if rem == 0:
            cycles -= 1
            rem = self._cycle_packets
        # First window whose cumulative count reaches ``rem``:
        # cumulative[w] < rem <= cumulative[w + 1].
        w = bisect_left(self._cum_list, rem) - 1
        within = rem - self._cum_list[w]
        window_packets = self._pw_list[w]
        t = cycles * self._cycle_s + (w + within / window_packets) * self._granularity_s
        for _ in range(64):
            if self._packets_before(t) >= target:
                return t
            t = float(np.nextafter(t, np.inf))
        return self._invert_bisect(max(0.0, cycles * self._cycle_s), target)

    def throughput_between(self, start_s: float, end_s: float) -> float:
        """Average delivered throughput (Mbit/s) over ``[start_s, end_s)``."""
        duration = end_s - start_s
        if duration <= 0:
            return 0.0
        packets = self.packets_delivered_between(start_s, end_s)
        return packets * MTU_BYTES * BITS_PER_BYTE / duration / 1e6
