"""A simple TCP throughput model layered on the packet-delivery link.

The chunk-level simulator assumes each chunk instantly achieves the link rate.
Real HTTP streaming over TCP does not: every transfer starts from the current
congestion window, ramps up through slow start, and is capped by the link.
This model captures the first-order effects that make emulation numbers differ
from simulation numbers in the paper's Table 4:

* **slow start** — the congestion window starts at ``initial_cwnd`` segments
  and doubles every RTT until it reaches the slow-start threshold or the link
  bandwidth-delay product;
* **congestion avoidance** — beyond the threshold the window grows by one
  segment per RTT;
* **idle decay** — dash.js leaves the connection idle between chunk requests;
  after an idle period the window collapses back toward its initial value
  (RFC 2861 congestion-window validation), which repeatedly re-pays the
  slow-start cost and is a major reason emulated QoE is lower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .link import MTU_BYTES, LinkConfig, PacketDeliveryLink

__all__ = ["TCPConfig", "TCPConnection", "TransferResult"]


@dataclass(frozen=True)
class TCPConfig:
    """Parameters of the TCP throughput model."""

    initial_cwnd_segments: int = 10
    initial_ssthresh_segments: int = 64
    max_cwnd_segments: int = 1024
    #: Idle time after which the congestion window is reset (seconds).
    idle_reset_s: float = 1.0
    #: Multiplicative decrease applied when the link is saturated.
    loss_backoff: float = 0.5


@dataclass
class TransferResult:
    """Outcome of one HTTP response body transfer."""

    start_s: float
    end_s: float
    bytes_transferred: float
    mean_throughput_mbps: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class TCPConnection:
    """Stateful TCP connection over a :class:`PacketDeliveryLink`."""

    def __init__(self, link: PacketDeliveryLink, config: Optional[TCPConfig] = None) -> None:
        self.link = link
        self.config = config or TCPConfig()
        self.cwnd_segments = float(self.config.initial_cwnd_segments)
        self.ssthresh_segments = float(self.config.initial_ssthresh_segments)
        self._last_activity_s: Optional[float] = None

    # ------------------------------------------------------------------ #
    def _maybe_idle_reset(self, now_s: float) -> None:
        if self._last_activity_s is None:
            return
        idle = now_s - self._last_activity_s
        if idle >= self.config.idle_reset_s:
            # RFC 2861: collapse the window after an idle period.
            self.cwnd_segments = float(self.config.initial_cwnd_segments)

    def transfer(self, start_s: float, num_bytes: float) -> TransferResult:
        """Transfer ``num_bytes`` starting at ``start_s``; returns timing info.

        The transfer is simulated RTT by RTT: each round sends up to ``cwnd``
        segments, constrained by what the link can deliver in that round.
        """
        if num_bytes <= 0:
            return TransferResult(start_s, start_s, 0.0, 0.0)
        self._maybe_idle_reset(start_s)
        rtt = self.link.config.rtt_s
        remaining = float(num_bytes)
        now = start_s

        while remaining > 0:
            window_bytes = self.cwnd_segments * MTU_BYTES
            to_send = min(window_bytes, remaining)
            # The sender cannot exceed cwnd per RTT; the link cannot exceed its
            # delivery schedule.  The round ends when the last byte of this
            # window is delivered (at least one RTT passes per round).
            cap_rate = window_bytes / rtt
            delivered_by = self.link.time_to_deliver(now, to_send,
                                                     rate_cap_bytes_per_s=cap_rate)
            round_end = max(delivered_by, now + rtt)
            link_was_bottleneck = delivered_by > now + rtt + 1e-9
            remaining -= to_send
            now = round_end

            # Congestion control bookkeeping for the next round.
            if link_was_bottleneck:
                # Treat link saturation as a loss event: multiplicative decrease.
                self.ssthresh_segments = max(2.0, self.cwnd_segments * self.config.loss_backoff)
                self.cwnd_segments = self.ssthresh_segments
            elif self.cwnd_segments < self.ssthresh_segments:
                self.cwnd_segments = min(self.cwnd_segments * 2.0,
                                         float(self.config.max_cwnd_segments))
            else:
                self.cwnd_segments = min(self.cwnd_segments + 1.0,
                                         float(self.config.max_cwnd_segments))

        self._last_activity_s = now
        duration = max(now - start_s, 1e-9)
        mbps = num_bytes * 8.0 / duration / 1e6
        return TransferResult(start_s=start_s, end_s=now,
                              bytes_transferred=float(num_bytes),
                              mean_throughput_mbps=mbps)
