"""Event-driven fleet emulation: N concurrent sessions, one policy GEMM per tick.

This is the serving half of the ROADMAP's "millions of users" story.  A
single event loop advances N virtual players — each with its own
:class:`~repro.emulation.link.PacketDeliveryLink` / TCP connection / HTTP
client / :class:`~repro.emulation.player.DashPlayer` over its own trace —
ordered by virtual time.  Whenever the earliest pending session needs an ABR
decision, every other session whose decision falls inside the same *batch
window* of virtual time is serviced in the same tick, and the whole tick is
answered by ONE batched policy forward (a single GEMM over the PR 5
version-cached compiled/folded inference path) instead of one Python forward
per player.

Correctness contract (pinned by ``tests/test_fleet.py``): a fleet of N
sessions is **bit-identical, session for session, to N independent**
:meth:`~repro.emulation.emulator.Emulator.run` **calls** over the same
traces with the same policy and RNG discipline.  Sessions share no mutable
state and stochastic sessions draw from private per-session generators, so
concurrency, batch-window choice and tick grouping change wall-clock time
only, never results.  The batched forward's rows agree with batch-1 forwards
to the final ulp (BLAS may pick different kernels for different batch
shapes — see :meth:`repro.nn.compile.CompiledPlan.policy_probs_batch`),
which selects identical actions; the resulting end-to-end bit-identity is
pinned by the tests above and re-asserted on every serving benchmark run.

Throughput and latency are measured per tick: *decision latency* is the
wall-clock time from gathering a tick's observations to its actions being
available (state building + batched forward + action selection), attributed
to every decision in the tick; decisions/sec and sessions/sec are computed
over the whole run.  Everything is instrumented through
:mod:`repro.core.telemetry` (``serve.*`` spans, counters and series) so
``repro serve --telemetry`` runs surface in ``repro report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..abr.env import HISTORY_LENGTH, Observation, SessionResult
from ..abr.qoe import LinearQoE, QoEMetric
from ..abr.state import original_state_function, original_states_gathered
from ..abr.video import Video
from ..core import telemetry
from ..rl.agent import ABRAgent
from ..rl.policy import greedy_action, sample_action
from ..traces.base import Trace
from .emulator import EmulationConfig
from .link import PacketDeliveryLink
from .player import DashPlayer

__all__ = [
    "FleetConfig",
    "ServingMetrics",
    "FleetResult",
    "BatchedPolicy",
    "Fleet",
    "session_rng",
]

#: Supported session arrival processes.
ARRIVAL_PROCESSES = ("instant", "uniform", "poisson")


def session_rng(sample_seed: int, session_index: int) -> np.random.Generator:
    """The private action-sampling generator of one fleet session.

    Both the fleet and its serial reference construct per-session generators
    through this function, so stochastic policies draw identically whether
    sessions run interleaved or back to back (the RNG discipline half of the
    bit-identity contract).
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=int(sample_seed),
                               spawn_key=(int(session_index),)))


@dataclass(frozen=True)
class FleetConfig:
    """Configuration of the fleet event loop.

    Every field here is engine-only: it shapes how the event loop interleaves
    and batches work (and how arrival timestamps dress up the serving
    metrics), never what any individual session computes — per-session
    results are bit-identical across all settings.  None of these fields
    belongs in a result-store key for that reason (see
    ``emulation_context_fingerprint``).
    """

    emulation: EmulationConfig = field(default_factory=EmulationConfig)
    #: How sessions arrive: all at once ("instant"), evenly spaced at
    #: ``arrival_rate_per_s`` ("uniform"), or as a Poisson process with that
    #: rate ("poisson").  Arrival offsets shift each session's position on
    #: the shared virtual timeline — which sessions get batched together —
    #: but not the session content itself.
    arrival_process: str = "poisson"
    arrival_rate_per_s: float = 50.0
    arrival_seed: int = 0
    #: Sessions whose next decision falls within this much virtual time of
    #: the earliest pending decision are serviced in the same batched tick.
    batch_window_s: float = 0.25
    #: Upper bound on decisions per tick (one GEMM batch).
    max_batch: int = 4096

    def __post_init__(self) -> None:
        if self.arrival_process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival_process!r}; "
                f"expected one of {ARRIVAL_PROCESSES}")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.batch_window_s < 0:
            raise ValueError("batch window cannot be negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")


@dataclass(frozen=True)
class ServingMetrics:
    """Throughput and latency of one fleet run (wall-clock, not virtual)."""

    num_sessions: int
    num_decisions: int
    num_ticks: int
    wall_s: float
    decide_s: float
    mean_batch_size: float
    max_batch_size: int
    decisions_per_s: float
    sessions_per_s: float
    p50_decision_latency_s: float
    p95_decision_latency_s: float
    p99_decision_latency_s: float

    def to_dict(self) -> dict:
        return {
            "num_sessions": self.num_sessions,
            "num_decisions": self.num_decisions,
            "num_ticks": self.num_ticks,
            "wall_s": self.wall_s,
            "decide_s": self.decide_s,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "decisions_per_s": self.decisions_per_s,
            "sessions_per_s": self.sessions_per_s,
            "p50_decision_latency_s": self.p50_decision_latency_s,
            "p95_decision_latency_s": self.p95_decision_latency_s,
            "p99_decision_latency_s": self.p99_decision_latency_s,
        }


@dataclass
class FleetResult:
    """Per-session results (in session-index order) plus serving metrics."""

    sessions: List[SessionResult]
    metrics: ServingMetrics

    @property
    def mean_reward(self) -> float:
        return float(np.mean([s.mean_reward for s in self.sessions]))


class BatchedPolicy:
    """Adapter that answers a whole decision tick with one batched forward.

    Wraps either an :class:`~repro.rl.agent.ABRAgent` (the fast path: all of
    a tick's states go through ONE ``policy_probs`` GEMM) or a plain
    ``observation -> action`` callable (classic baselines: serviced
    per-observation, results unchanged).  Action selection follows the same
    discipline as serial :meth:`ABRAgent.act`: greedy argmax per row, or a
    sample drawn from the session's private generator.
    """

    def __init__(self, policy, greedy: bool = True,
                 sample_seed: int = 0) -> None:
        self.agent: Optional[ABRAgent] = policy if isinstance(policy, ABRAgent) else None
        self.callable_policy: Optional[Callable[[Observation], int]] = (
            None if self.agent is not None else policy)
        if self.callable_policy is not None and not callable(self.callable_policy):
            raise TypeError("policy must be an ABRAgent or a callable")
        self.greedy = bool(greedy)
        self.sample_seed = int(sample_seed)

    # ------------------------------------------------------------------ #
    @property
    def batched(self) -> bool:
        """Whether decisions go through one batched network forward."""
        return self.agent is not None

    def supports_gathered_states(self) -> bool:
        """Whether the fleet may build this policy's states vectorized.

        True only for the trusted built-in Pensieve state function — its
        gathered builder (:func:`original_states_gathered`) is proven
        bit-identical row for row.  Generated state functions run
        per-observation (but still share the tick's single batched forward).
        """
        return (self.agent is not None
                and self.agent.state_function.trusted
                and getattr(self.agent.state_function, "_func", None)
                is original_state_function)

    # ------------------------------------------------------------------ #
    def select_actions(self, probs: np.ndarray,
                       rngs: Optional[Sequence[np.random.Generator]]) -> List[int]:
        """Per-row action selection matching serial ``act`` exactly."""
        if self.greedy:
            return [int(a) for a in np.argmax(probs, axis=-1)]
        if rngs is None:
            raise ValueError("stochastic selection needs per-session rngs")
        return [sample_action(row, rng) for row, rng in zip(probs, rngs)]

    def decide(self, observations: Sequence[Observation],
               rngs: Optional[Sequence[np.random.Generator]]) -> List[int]:
        """Actions for a tick's observations (one forward when batched)."""
        if self.agent is None:
            return [int(self.callable_policy(obs)) for obs in observations]
        states = np.stack([self.agent.state_of(obs) for obs in observations])
        probs = self.agent.batch_action_probabilities(states)
        return self.select_actions(probs, rngs)

    def serial_policy(self, session_index: int) -> Callable[[Observation], int]:
        """The per-observation policy of one session's serial reference run.

        Performs the identical per-decision arithmetic (same state function,
        same ``policy_probs`` router, same greedy/sampling discipline with
        the same per-session generator), so a serial
        :meth:`Emulator.run` over this callable reproduces the fleet's
        session bit for bit.
        """
        if self.agent is None:
            return self.callable_policy
        agent = self.agent
        if self.greedy:
            def policy(observation: Observation) -> int:
                state = agent.state_of(observation)
                return greedy_action(agent.action_probabilities(state))
            return policy
        rng = session_rng(self.sample_seed, session_index)

        def policy(observation: Observation) -> int:
            state = agent.state_of(observation)
            return sample_action(agent.action_probabilities(state), rng)
        return policy


class _FleetSession:
    """One virtual player plus its event-loop bookkeeping."""

    __slots__ = ("index", "trace", "player", "arrival_s", "rng")

    def __init__(self, index: int, trace: Trace, player: DashPlayer,
                 arrival_s: float, rng: Optional[np.random.Generator]) -> None:
        self.index = index
        self.trace = trace
        self.player = player
        self.arrival_s = arrival_s
        self.rng = rng


class Fleet:
    """Shared event loop advancing N independent streaming sessions.

    Sessions are assigned traces round-robin from ``traces`` (the trace
    mix); each gets its own link/TCP/HTTP/player stack.  Delivery schedules
    are shared read-only through the link module's per-trace cache, so fleet
    construction is O(distinct traces), not O(sessions).
    """

    def __init__(self, video: Video, traces: Sequence[Trace],
                 qoe: Optional[QoEMetric] = None,
                 config: Optional[FleetConfig] = None) -> None:
        self.video = video
        self.traces = list(traces)
        if not self.traces:
            raise ValueError("a fleet needs at least one trace")
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.config = config or FleetConfig()

    # ------------------------------------------------------------------ #
    def _arrival_times(self, num_sessions: int) -> np.ndarray:
        cfg = self.config
        if cfg.arrival_process == "instant":
            return np.zeros(num_sessions)
        if cfg.arrival_process == "uniform":
            return np.arange(num_sessions) / cfg.arrival_rate_per_s
        rng = np.random.default_rng(cfg.arrival_seed)
        return np.cumsum(rng.exponential(1.0 / cfg.arrival_rate_per_s,
                                         size=num_sessions))

    def _build_sessions(self, num_sessions: int, policy: BatchedPolicy,
                        rng_indices: Optional[Sequence[int]] = None
                        ) -> List[_FleetSession]:
        cfg = self.config.emulation
        arrivals = self._arrival_times(num_sessions)
        if rng_indices is not None and len(rng_indices) != num_sessions:
            raise ValueError("rng_indices must provide one index per session")
        sessions = []
        for i in range(num_sessions):
            trace = self.traces[i % len(self.traces)]
            link = PacketDeliveryLink(trace, cfg.link)
            player = DashPlayer(self.video, link, qoe=self.qoe,
                                player_config=cfg.player,
                                http_config=cfg.http,
                                tcp_config=cfg.tcp)
            spawn = i if rng_indices is None else int(rng_indices[i])
            rng = (None if policy.greedy or not policy.batched
                   else session_rng(policy.sample_seed, spawn))
            sessions.append(_FleetSession(i, trace, player,
                                          float(arrivals[i]), rng))
        return sessions

    # ------------------------------------------------------------------ #
    def run(self, policy, num_sessions: int, greedy: bool = True,
            sample_seed: int = 0,
            rng_indices: Optional[Sequence[int]] = None) -> FleetResult:
        """Stream the video to ``num_sessions`` concurrent virtual players.

        ``policy`` may be an :class:`ABRAgent`, a :class:`BatchedPolicy`, or
        a plain ``observation -> action`` callable; ``greedy``/``sample_seed``
        apply when an agent is passed directly.  ``rng_indices`` optionally
        overrides the per-session RNG spawn index (default: the session's
        fleet index) — the store-routed evaluator passes each trace's position
        in the *full* trace set so cached stochastic records never depend on
        which other traces were cold.
        """
        if num_sessions < 1:
            raise ValueError("a fleet needs at least one session")
        if not isinstance(policy, BatchedPolicy):
            policy = BatchedPolicy(policy, greedy=greedy,
                                   sample_seed=sample_seed)
        sessions = self._build_sessions(num_sessions, policy, rng_indices)

        # Stacked history windows for the vectorized state builder: each
        # player's in-place history pushes write straight into its row.
        gathered = policy.supports_gathered_states()
        if gathered:
            n = num_sessions
            bitrate = np.zeros((n, HISTORY_LENGTH))
            throughput = np.zeros((n, HISTORY_LENGTH))
            download = np.zeros((n, HISTORY_LENGTH))
            buffered = np.zeros((n, HISTORY_LENGTH))
            for s in sessions:
                s.player.bind_history_buffers(bitrate[s.index],
                                              throughput[s.index],
                                              download[s.index],
                                              buffered[s.index])
            ladder = np.asarray(self.video.bitrates_kbps, dtype=np.float64)
            total_chunks = self.video.num_chunks
            agent = policy.agent

        results: List[Optional[SessionResult]] = [None] * num_sessions
        heap = [(s.arrival_s, s.index) for s in sessions]
        heapify(heap)
        window = self.config.batch_window_s
        max_batch = self.config.max_batch
        tick_latencies: List[float] = []
        tick_sizes: List[int] = []
        num_decisions = 0

        run_span = telemetry.span("serve.fleet_run", {
            "sessions": num_sessions, "traces": len(self.traces),
            "arrival": self.config.arrival_process,
            "batch_window_s": window,
        })
        run_start = time.perf_counter()
        with run_span:
            while heap:
                horizon, first = heappop(heap)
                batch = [first]
                horizon += window
                while (heap and heap[0][0] <= horizon
                       and len(batch) < max_batch):
                    batch.append(heappop(heap)[1])

                decide_start = time.perf_counter()
                if gathered:
                    k = len(batch)
                    idx = np.asarray(batch, dtype=np.intp)
                    next_chunks = np.asarray(
                        [sessions[i].player.next_chunk_index for i in batch],
                        dtype=np.intp)
                    states = np.empty((k, 6, HISTORY_LENGTH))
                    original_states_gathered(
                        bitrate[idx], throughput[idx], download[idx],
                        buffered[idx],
                        self.video.chunk_sizes_bytes[next_chunks],
                        total_chunks - next_chunks, total_chunks, ladder,
                        states)
                    probs = agent.batch_action_probabilities(states)
                    rngs = (None if policy.greedy
                            else [sessions[i].rng for i in batch])
                    actions = policy.select_actions(probs, rngs)
                else:
                    observations = [sessions[i].player.observe() for i in batch]
                    rngs = (None if policy.greedy
                            else [sessions[i].rng for i in batch])
                    actions = policy.decide(observations, rngs)
                decide_s = time.perf_counter() - decide_start

                tick_latencies.append(decide_s)
                tick_sizes.append(len(batch))
                num_decisions += len(batch)
                telemetry.counter("serve.decisions", len(batch))
                telemetry.counter("serve.ticks")
                telemetry.series("serve.batch_size", len(tick_sizes),
                                 len(batch))

                for index, action in zip(batch, actions):
                    session = sessions[index]
                    session.player.step(action)
                    if session.player.done:
                        results[index] = session.player.result()
                        telemetry.counter("serve.sessions_completed")
                    else:
                        heappush(heap, (session.arrival_s
                                        + session.player.clock_s, index))
        wall_s = time.perf_counter() - run_start

        metrics = self._metrics(num_sessions, num_decisions, tick_latencies,
                                tick_sizes, wall_s)
        telemetry.counter("serve.decide_s", metrics.decide_s)
        telemetry.counter("serve.wall_s", wall_s)
        return FleetResult(sessions=list(results), metrics=metrics)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _metrics(num_sessions: int, num_decisions: int,
                 tick_latencies: List[float], tick_sizes: List[int],
                 wall_s: float) -> ServingMetrics:
        latencies = np.asarray(tick_latencies)
        sizes = np.asarray(tick_sizes)
        # Per-decision latency: every decision in a tick waited for the
        # whole tick's state build + forward + selection.
        per_decision = np.repeat(latencies, sizes)
        p50, p95, p99 = (np.percentile(per_decision, (50, 95, 99))
                         if per_decision.size else (0.0, 0.0, 0.0))
        wall = max(wall_s, 1e-12)
        return ServingMetrics(
            num_sessions=num_sessions,
            num_decisions=num_decisions,
            num_ticks=len(tick_sizes),
            wall_s=wall_s,
            decide_s=float(latencies.sum()),
            mean_batch_size=float(sizes.mean()) if sizes.size else 0.0,
            max_batch_size=int(sizes.max()) if sizes.size else 0,
            decisions_per_s=num_decisions / wall,
            sessions_per_s=num_sessions / wall,
            p50_decision_latency_s=float(p50),
            p95_decision_latency_s=float(p95),
            p99_decision_latency_s=float(p99),
        )

    # ------------------------------------------------------------------ #
    def serial_reference(self, policy, num_sessions: int, greedy: bool = True,
                         sample_seed: int = 0,
                         rng_indices: Optional[Sequence[int]] = None
                         ) -> List[SessionResult]:
        """N independent per-session runs: the fleet's bit-identity reference.

        Runs every session back to back through the plain per-observation
        loop (one Python forward per decision — the pre-fleet serving path),
        with the same trace assignment and per-session RNG discipline as
        :meth:`run`.  ``run(...)`` must produce exactly these results,
        session for session.
        """
        if not isinstance(policy, BatchedPolicy):
            policy = BatchedPolicy(policy, greedy=greedy,
                                   sample_seed=sample_seed)
        cfg = self.config.emulation
        results = []
        for i in range(num_sessions):
            spawn = i if rng_indices is None else int(rng_indices[i])
            trace = self.traces[i % len(self.traces)]
            link = PacketDeliveryLink(trace, cfg.link)
            player = DashPlayer(self.video, link, qoe=self.qoe,
                                player_config=cfg.player,
                                http_config=cfg.http,
                                tcp_config=cfg.tcp)
            session_policy = policy.serial_policy(spawn)
            while not player.done:
                player.step(int(session_policy(player.observe())))
            results.append(player.result())
        return results
