"""A dash.js-like streaming player driven by an ABR policy.

The player reproduces the client-side behaviour that matters for QoE and that
the chunk-level simulator abstracts away:

* an initial **startup phase**: playback does not begin until a configurable
  amount of video is buffered, and the startup delay is tracked separately;
* **stalls**: when the buffer runs dry mid-playback, the player pauses until a
  configurable resume threshold is buffered again;
* a **maximum buffer**: the player stops requesting chunks while the buffer is
  above the target level and idles instead (during which TCP's congestion
  window decays — see :mod:`repro.emulation.tcp`).

The player exposes the same :class:`~repro.abr.env.Observation` interface as
the simulator, so any policy (baseline or RL agent) runs unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..abr.env import HISTORY_LENGTH, ChunkRecord, Observation, SessionResult
from ..abr.qoe import LinearQoE, QoEMetric
from ..abr.video import Video
from .http import HTTPClient, HTTPConfig
from .link import LinkConfig, PacketDeliveryLink
from .tcp import TCPConfig

__all__ = ["PlayerConfig", "PlayerEvent", "DashPlayer"]


@dataclass(frozen=True)
class PlayerConfig:
    """dash.js-style player parameters."""

    #: Seconds of video required before initial playback starts.
    startup_buffer_s: float = 4.0
    #: Seconds of video required to resume after a stall.
    rebuffer_resume_s: float = 4.0
    #: Buffer level above which the player pauses new requests.
    max_buffer_s: float = 60.0
    #: Interval at which the paused player re-checks the buffer.
    idle_poll_s: float = 0.5


@dataclass
class PlayerEvent:
    """Timeline entry recorded by the player (for debugging and analysis)."""

    time_s: float
    kind: str
    detail: str = ""


class DashPlayer:
    """Streams one video over an emulated link, one chunk at a time."""

    def __init__(self, video: Video, link: PacketDeliveryLink,
                 qoe: Optional[QoEMetric] = None,
                 player_config: Optional[PlayerConfig] = None,
                 http_config: Optional[HTTPConfig] = None,
                 tcp_config: Optional[TCPConfig] = None) -> None:
        self.video = video
        self.link = link
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.config = player_config or PlayerConfig()
        self.http = HTTPClient(link, http_config=http_config, tcp_config=tcp_config)

        self._clock_s = 0.0
        self._buffer_s = 0.0
        self._playing = False
        self._started = False
        self._next_chunk = 0
        self._last_bitrate_index = 0
        self._previous_bitrate_for_qoe: Optional[int] = None
        self._startup_delay_s: Optional[float] = None

        self._bitrate_history = np.zeros(HISTORY_LENGTH)
        self._throughput_history = np.zeros(HISTORY_LENGTH)
        self._download_time_history = np.zeros(HISTORY_LENGTH)
        self._buffer_history = np.zeros(HISTORY_LENGTH)

        self.records: List[ChunkRecord] = []
        self.events: List[PlayerEvent] = []

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self._next_chunk >= self.video.num_chunks

    @property
    def clock_s(self) -> float:
        """The player's virtual wall clock (seconds since session start)."""
        return self._clock_s

    @property
    def next_chunk_index(self) -> int:
        """Index of the next chunk the player will request."""
        return self._next_chunk

    @property
    def startup_delay_s(self) -> float:
        return self._startup_delay_s if self._startup_delay_s is not None else 0.0

    @property
    def total_stall_s(self) -> float:
        return float(sum(r.rebuffer_s for r in self.records))

    # ------------------------------------------------------------------ #
    def bind_history_buffers(self, bitrate: np.ndarray, throughput: np.ndarray,
                             download_time: np.ndarray, buffer: np.ndarray) -> None:
        """Re-home the four history windows into caller-owned buffers.

        The fleet harness passes row views of its stacked ``(sessions, H)``
        arrays so that the player's in-place history pushes keep the stacked
        arrays current — the batched state builder then reads every session's
        history without per-session gathering.  The buffers receive the
        current history contents; semantics of :meth:`observe` and
        :meth:`step` are unchanged (observations still hand out copies).
        """
        for target, source in ((bitrate, self._bitrate_history),
                               (throughput, self._throughput_history),
                               (download_time, self._download_time_history),
                               (buffer, self._buffer_history)):
            if target.shape != source.shape:
                raise ValueError("history buffer shape mismatch")
            target[:] = source
        self._bitrate_history = bitrate
        self._throughput_history = throughput
        self._download_time_history = download_time
        self._buffer_history = buffer

    # ------------------------------------------------------------------ #
    def observe(self) -> Observation:
        if self.done:
            raise RuntimeError("playback already finished")
        next_sizes = self.video.next_chunk_sizes(self._next_chunk)
        return Observation(
            bitrate_kbps_history=self._bitrate_history.copy(),
            throughput_mbps_history=self._throughput_history.copy(),
            download_time_s_history=self._download_time_history.copy(),
            buffer_s_history=self._buffer_history.copy(),
            next_chunk_sizes_bytes=next_sizes,
            buffer_s=self._buffer_s,
            remaining_chunks=self.video.num_chunks - self._next_chunk,
            total_chunks=self.video.num_chunks,
            last_bitrate_index=self._last_bitrate_index,
            bitrate_ladder_kbps=np.asarray(self.video.bitrates_kbps, dtype=np.float64),
            chunk_duration_s=self.video.chunk_duration_s,
        )

    def step(self, bitrate_index: int) -> ChunkRecord:
        """Request, download and buffer the next chunk at ``bitrate_index``."""
        if self.done:
            raise RuntimeError("playback already finished")
        if not 0 <= bitrate_index < self.video.num_bitrates:
            raise IndexError(f"bitrate index {bitrate_index} out of range")

        # If the buffer is at capacity, idle until there is room.  TCP's
        # congestion window decays while the connection sits idle.
        while self._buffer_s >= self.config.max_buffer_s:
            self._advance_time(self.config.idle_poll_s)

        chunk_index = self._next_chunk
        chunk_bytes = self.video.chunk_size(chunk_index, bitrate_index)
        request_time = self._clock_s
        response = self.http.get(request_time, chunk_bytes)
        download_time = response.latency_s

        # Playback (and possible stalling) happens while the chunk downloads.
        stall = self._advance_time(download_time)

        self._buffer_s += self.video.chunk_duration_s
        if not self._playing:
            threshold = (self.config.startup_buffer_s if not self._started
                         else self.config.rebuffer_resume_s)
            if self._buffer_s >= threshold:
                self._playing = True
                if not self._started:
                    self._started = True
                    self._startup_delay_s = self._clock_s
                    self.events.append(PlayerEvent(self._clock_s, "startup"))
                else:
                    self.events.append(PlayerEvent(self._clock_s, "resume"))

        reward = self.qoe.chunk_reward(bitrate_index, stall,
                                       self._previous_bitrate_for_qoe)
        record = ChunkRecord(
            chunk_index=chunk_index,
            bitrate_index=bitrate_index,
            bitrate_kbps=self.video.bitrates_kbps[bitrate_index],
            download_time_s=download_time,
            throughput_mbps=response.throughput_mbps,
            rebuffer_s=stall,
            buffer_s=self._buffer_s,
            reward=reward,
        )
        self.records.append(record)
        self._previous_bitrate_for_qoe = bitrate_index
        self._last_bitrate_index = bitrate_index
        self._push_history(self._bitrate_history, self.video.bitrates_kbps[bitrate_index])
        self._push_history(self._throughput_history, response.throughput_mbps)
        self._push_history(self._download_time_history, download_time)
        self._push_history(self._buffer_history, self._buffer_s)
        self._next_chunk += 1
        return record

    def result(self) -> SessionResult:
        return SessionResult(records=list(self.records),
                             trace_name=self.link.trace.name,
                             video_name=self.video.name)

    # ------------------------------------------------------------------ #
    def _advance_time(self, delta_s: float) -> float:
        """Advance the wall clock by ``delta_s``; returns stall time incurred."""
        self._clock_s += delta_s
        if not self._playing:
            # Before the initial startup the waiting time is startup delay
            # (not charged as rebuffering); after a stall it is rebuffering.
            return delta_s if self._started else 0.0
        if self._buffer_s >= delta_s:
            self._buffer_s -= delta_s
            return 0.0
        stall = delta_s - self._buffer_s
        self._buffer_s = 0.0
        self._playing = False
        self.events.append(PlayerEvent(self._clock_s, "stall", f"{stall:.3f}s"))
        return stall

    @staticmethod
    def _push_history(history: np.ndarray, value: float) -> None:
        history[:-1] = history[1:]
        history[-1] = value
