"""Named registry of the paper's trace datasets.

Benchmarks and examples look environments up by name ("fcc", "starlink", "4g",
"5g") instead of importing individual generator functions, which keeps the
experiment drivers environment-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .base import TraceSet
from .synthetic import fcc_dataset, lte_dataset, nr5g_dataset, starlink_dataset

__all__ = ["EnvironmentSpec", "ENVIRONMENTS", "build_dataset", "list_environments"]

DatasetBuilder = Callable[..., Tuple[TraceSet, TraceSet]]


@dataclass(frozen=True)
class EnvironmentSpec:
    """Description of one network environment the paper evaluates on."""

    name: str
    display_name: str
    builder: DatasetBuilder
    #: Bitrate ladder key used for this environment ("standard" or "high").
    bitrate_ladder: str
    #: Published training schedule (epochs, checkpoint test interval).
    train_epochs: int
    test_interval: int

    def evaluation_schedule(self, scale: float = 1.0) -> Tuple[int, int]:
        """The Table 1 training schedule, optionally scaled down.

        Returns ``(train_epochs, checkpoint_interval)`` with both values
        scaled by ``scale`` and floored at 1, preserving the published
        per-environment ratios (Starlink converges in a tenth of the FCC
        budget, for example).  This is the default schedule consumers such
        as :meth:`~repro.core.pipeline.NadaPipeline.for_environment` and the
        CLI apply when no explicit epochs/interval override is given.
        """
        if scale <= 0:
            raise ValueError("schedule scale must be positive")
        return (max(1, int(round(self.train_epochs * scale))),
                max(1, int(round(self.test_interval * scale))))


ENVIRONMENTS: Dict[str, EnvironmentSpec] = {
    "fcc": EnvironmentSpec("fcc", "FCC", fcc_dataset, "standard", 40_000, 500),
    "starlink": EnvironmentSpec("starlink", "Starlink", starlink_dataset, "standard",
                                4_000, 100),
    "4g": EnvironmentSpec("4g", "4G", lte_dataset, "high", 40_000, 500),
    "5g": EnvironmentSpec("5g", "5G", nr5g_dataset, "high", 40_000, 500),
}


def list_environments() -> list[str]:
    """Names of all registered environments, in Table 1 order."""
    return list(ENVIRONMENTS)


def build_dataset(environment: str, seed: int = 0, scale: float = 1.0,
                  ) -> Tuple[TraceSet, TraceSet]:
    """Build the (train, test) split for a named environment.

    Args:
        environment: one of ``fcc``, ``starlink``, ``4g``, ``5g``.
        seed: base seed for the trace generators.
        scale: fraction of the full Table 1 dataset size to generate; 1.0
            reproduces the published trace counts, smaller values give fast
            datasets for tests and examples.
    """
    key = environment.lower()
    if key not in ENVIRONMENTS:
        raise KeyError(f"unknown environment {environment!r}; "
                       f"known: {list_environments()}")
    return ENVIRONMENTS[key].builder(seed=seed, scale=scale)
