"""Network bandwidth traces: data structures, synthetic generators, loaders.

This package is the substitute for the paper's measured FCC / Starlink / 4G /
5G datasets (see DESIGN.md §2 for the substitution rationale).
"""

from .base import Trace, TraceSet
from .loaders import (
    load_mahimahi_format,
    load_pensieve_format,
    load_traceset,
    save_mahimahi_format,
    save_pensieve_format,
    save_traceset,
)
from .registry import ENVIRONMENTS, EnvironmentSpec, build_dataset, list_environments
from .stats import PAPER_TABLE1, DatasetStats, compute_dataset_stats
from .synthetic import (
    STARLINK_PEAK_HOUR_CAPACITY_FACTOR,
    fcc_dataset,
    generate_4g_trace,
    generate_5g_trace,
    generate_fcc_trace,
    generate_starlink_trace,
    lte_dataset,
    nr5g_dataset,
    starlink_dataset,
)

__all__ = [
    "Trace", "TraceSet",
    "generate_fcc_trace", "generate_starlink_trace", "generate_4g_trace",
    "generate_5g_trace", "fcc_dataset", "starlink_dataset", "lte_dataset",
    "nr5g_dataset", "STARLINK_PEAK_HOUR_CAPACITY_FACTOR",
    "save_pensieve_format", "load_pensieve_format", "save_mahimahi_format",
    "load_mahimahi_format", "save_traceset", "load_traceset",
    "DatasetStats", "compute_dataset_stats", "PAPER_TABLE1",
    "EnvironmentSpec", "ENVIRONMENTS", "build_dataset", "list_environments",
]
