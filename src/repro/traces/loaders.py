"""Loading and saving traces in on-disk formats.

Two external formats are supported:

* **Pensieve format** — whitespace-separated ``<timestamp_s> <throughput_mbps>``
  lines, one sample per line (the format of the cooked FCC/HSDPA traces the
  original Pensieve repository ships).
* **Mahimahi format** — one integer per line giving the millisecond at which a
  1500-byte MTU packet is delivered; this is the format consumed by the
  ``mm-link`` shell and by our packet-level emulator.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional

import numpy as np

from .base import Trace, TraceSet

__all__ = [
    "save_pensieve_format",
    "load_pensieve_format",
    "save_mahimahi_format",
    "load_mahimahi_format",
    "save_traceset",
    "load_traceset",
]

_MTU_BYTES = 1500
_BITS_PER_BYTE = 8


def save_pensieve_format(trace: Trace, path: str) -> None:
    """Write ``<timestamp> <mbps>`` lines."""
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        for t, mbps in zip(trace.timestamps_s, trace.throughputs_mbps):
            handle.write(f"{t:.6f}\t{mbps:.6f}\n")


def load_pensieve_format(path: str, name: Optional[str] = None) -> Trace:
    """Read a trace written by :func:`save_pensieve_format`."""
    timestamps: List[float] = []
    throughputs: List[float] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed trace line in {path!r}: {line!r}")
            timestamps.append(float(parts[0]))
            throughputs.append(float(parts[1]))
    return Trace(np.array(timestamps), np.array(throughputs),
                 name=name or os.path.basename(path))


def save_mahimahi_format(trace: Trace, path: str, granularity_ms: int = 100) -> None:
    """Convert a bandwidth trace to Mahimahi packet-delivery timestamps.

    For each ``granularity_ms`` window the number of MTU packets that fit in
    ``bandwidth * window`` is computed and that many delivery opportunities are
    written, evenly spaced inside the window.
    """
    if granularity_ms <= 0:
        raise ValueError("granularity must be positive")
    _ensure_parent(path)
    lines: List[int] = []
    duration_ms = int(trace.duration_s * 1000)
    window_s = granularity_ms / 1000.0
    carry_bits = 0.0
    for window_start in range(0, duration_ms, granularity_ms):
        mbps = trace.throughput_at(window_start / 1000.0)
        bits = mbps * 1e6 * window_s + carry_bits
        packets = int(bits // (_MTU_BYTES * _BITS_PER_BYTE))
        carry_bits = bits - packets * _MTU_BYTES * _BITS_PER_BYTE
        if packets <= 0:
            continue
        spacing = granularity_ms / packets
        for k in range(packets):
            lines.append(int(window_start + k * spacing) + 1)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(str(ms) for ms in lines))
        handle.write("\n")


def load_mahimahi_format(path: str, granularity_ms: int = 1000,
                         name: Optional[str] = None) -> Trace:
    """Reconstruct a bandwidth trace from Mahimahi packet-delivery timestamps."""
    with open(path, "r", encoding="utf-8") as handle:
        deliveries = [int(line) for line in handle if line.strip()]
    if not deliveries:
        raise ValueError(f"mahimahi trace {path!r} contains no packets")
    duration_ms = max(deliveries)
    n_windows = max(2, duration_ms // granularity_ms + 1)
    counts = np.zeros(n_windows)
    for ms in deliveries:
        counts[min(ms // granularity_ms, n_windows - 1)] += 1
    window_s = granularity_ms / 1000.0
    throughputs = counts * _MTU_BYTES * _BITS_PER_BYTE / window_s / 1e6
    timestamps = np.arange(n_windows) * window_s
    return Trace(timestamps, throughputs, name=name or os.path.basename(path))


def save_traceset(traceset: TraceSet, directory: str) -> List[str]:
    """Write every trace in Pensieve format into ``directory``; return paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for trace in traceset:
        path = os.path.join(directory, f"{trace.name}.log")
        save_pensieve_format(trace, path)
        paths.append(path)
    return paths


def load_traceset(directory: str, name: Optional[str] = None) -> TraceSet:
    """Load every ``*.log`` file in ``directory`` as a TraceSet."""
    files = sorted(f for f in os.listdir(directory) if f.endswith(".log"))
    if not files:
        raise FileNotFoundError(f"no .log traces found in {directory!r}")
    traces = [load_pensieve_format(os.path.join(directory, f)) for f in files]
    return TraceSet(traces, name=name or os.path.basename(os.path.abspath(directory)))


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
