"""Core trace data structures.

A *trace* is a time series of available downlink bandwidth.  Both the
chunk-level simulator and the packet-level emulator consume traces through the
same :class:`Trace` interface: a sequence of ``(timestamp_s, throughput_mbps)``
samples which is replayed cyclically when a session outlasts the trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Trace", "TraceSet"]


@dataclass(eq=False)
class Trace:
    """A bandwidth trace: parallel arrays of timestamps and throughputs.

    Attributes:
        timestamps_s: Monotonically increasing sample times in seconds,
            starting at or after zero.
        throughputs_mbps: Available bandwidth at each sample, in Mbit/s.
        name: Identifier used in logs, tables and dataset splits.
    """

    timestamps_s: np.ndarray
    throughputs_mbps: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        self.timestamps_s = np.asarray(self.timestamps_s, dtype=np.float64)
        self.throughputs_mbps = np.asarray(self.throughputs_mbps, dtype=np.float64)
        if self.timestamps_s.ndim != 1 or self.throughputs_mbps.ndim != 1:
            raise ValueError("trace arrays must be one-dimensional")
        if len(self.timestamps_s) != len(self.throughputs_mbps):
            raise ValueError("timestamps and throughputs must have equal length")
        if len(self.timestamps_s) < 2:
            raise ValueError("a trace needs at least two samples")
        if np.any(np.diff(self.timestamps_s) <= 0):
            raise ValueError("timestamps must be strictly increasing")
        if np.any(self.throughputs_mbps < 0):
            raise ValueError("throughputs must be non-negative")
        #: Lazily built capacity prefix sums, keyed by the throughput floor
        #: (Mbit/s) applied to each segment; see :meth:`capacity_prefix`.
        self._capacity_cache: dict = {}
        self._relative_times: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.timestamps_s)

    @property
    def duration_s(self) -> float:
        """Total duration covered by the trace in seconds."""
        return float(self.timestamps_s[-1] - self.timestamps_s[0])

    @property
    def mean_throughput_mbps(self) -> float:
        """Time-weighted mean throughput in Mbit/s."""
        gaps = np.diff(self.timestamps_s)
        # Each sample value is valid until the next timestamp.
        return float(np.average(self.throughputs_mbps[:-1], weights=gaps))

    @property
    def min_throughput_mbps(self) -> float:
        return float(self.throughputs_mbps.min())

    @property
    def max_throughput_mbps(self) -> float:
        return float(self.throughputs_mbps.max())

    @property
    def std_throughput_mbps(self) -> float:
        """Time-weighted standard deviation of throughput in Mbit/s.

        Weighted by segment duration around the time-weighted mean, so that
        irregularly-sampled traces report variability on the same basis as
        :attr:`mean_throughput_mbps` (a sample-weighted std next to a
        time-weighted mean misstates variability whenever sampling density
        correlates with throughput).  As with the mean, the last sample only
        marks the end of the final segment and carries no weight.
        """
        gaps = np.diff(self.timestamps_s)
        values = self.throughputs_mbps[:-1]
        mean = np.average(values, weights=gaps)
        variance = np.average((values - mean) ** 2, weights=gaps)
        return float(np.sqrt(variance))

    # ------------------------------------------------------------------ #
    def throughput_at(self, time_s: float) -> float:
        """Return the bandwidth at ``time_s``, wrapping around the trace end."""
        wrapped = (time_s - self.timestamps_s[0]) % self.duration_s + self.timestamps_s[0]
        index = int(np.searchsorted(self.timestamps_s, wrapped, side="right") - 1)
        index = max(0, min(index, len(self.throughputs_mbps) - 1))
        return float(self.throughputs_mbps[index])

    def throughputs_at(self, times_s: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`throughput_at` over an array of sample times.

        Applies the exact wrap/lookup arithmetic of the scalar method
        elementwise, so ``throughputs_at(t)[i]`` is bit-identical to
        ``throughput_at(t[i])``.  The emulation link uses this to sample one
        delivery window per trace granularity step in a single call instead
        of thousands of scalar lookups.
        """
        times = np.asarray(times_s, dtype=np.float64)
        wrapped = (times - self.timestamps_s[0]) % self.duration_s + self.timestamps_s[0]
        index = np.searchsorted(self.timestamps_s, wrapped, side="right") - 1
        np.clip(index, 0, len(self.throughputs_mbps) - 1, out=index)
        return self.throughputs_mbps[index]

    def iter_segments(self) -> Iterator[Tuple[float, float, float]]:
        """Yield ``(start_s, duration_s, throughput_mbps)`` segments."""
        for i in range(len(self.timestamps_s) - 1):
            start = float(self.timestamps_s[i])
            duration = float(self.timestamps_s[i + 1] - self.timestamps_s[i])
            yield start, duration, float(self.throughputs_mbps[i])

    @property
    def relative_times_s(self) -> np.ndarray:
        """Sample times re-based so the first sample sits at zero (cached)."""
        if self._relative_times is None:
            self._relative_times = self.timestamps_s - self.timestamps_s[0]
        return self._relative_times

    def capacity_prefix(self, floor_mbps: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative link capacity at each sample, with a per-segment rate floor.

        Returns ``(cumulative_mbit, floored_rates_mbps)`` where
        ``cumulative_mbit[i]`` is the Mbit deliverable from the start of the
        trace to ``timestamps_s[i]`` when every segment's throughput is floored
        at ``floor_mbps`` (a positive floor makes the prefix strictly
        increasing, which is what lets the simulator binary-search it).  The
        last sample's throughput never contributes: cyclic replay wraps from
        the final timestamp straight back to the first segment.

        Results are cached per floor; the common case (no bandwidth noise)
        reuses one cached pair for every chunk download.  The cache is
        bounded: bandwidth noise makes every download use a distinct floor,
        and caching those would grow without limit, so past the first few
        floors the arrays are computed fresh and not retained.
        """
        key = float(floor_mbps)
        cached = self._capacity_cache.get(key)
        if cached is None:
            durations = np.diff(self.timestamps_s)
            rates = np.maximum(self.throughputs_mbps[:-1], key)
            cumulative = np.empty(len(self.timestamps_s), dtype=np.float64)
            cumulative[0] = 0.0
            np.cumsum(rates * durations, out=cumulative[1:])
            cached = (cumulative, rates)
            if len(self._capacity_cache) < 8:
                self._capacity_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    def scaled(self, factor: float, name: Optional[str] = None) -> "Trace":
        """Return a copy with every throughput multiplied by ``factor``.

        The paper divides Starlink capacity by eight to mimic peak-hour
        contention; this is the operation that implements it.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Trace(
            self.timestamps_s.copy(),
            self.throughputs_mbps * factor,
            name=name or f"{self.name}-x{factor:g}",
        )

    def sliced(self, start_s: float, end_s: float, name: Optional[str] = None) -> "Trace":
        """Return the sub-trace between ``start_s`` and ``end_s`` (re-based to 0)."""
        if end_s <= start_s:
            raise ValueError("end_s must be greater than start_s")
        mask = (self.timestamps_s >= start_s) & (self.timestamps_s <= end_s)
        if mask.sum() < 2:
            raise ValueError("slice contains fewer than two samples")
        times = self.timestamps_s[mask] - start_s
        return Trace(times, self.throughputs_mbps[mask], name=name or f"{self.name}-slice")

    def resampled(self, interval_s: float, name: Optional[str] = None) -> "Trace":
        """Return a copy sampled on a uniform grid of ``interval_s`` seconds."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        n_samples = max(2, int(math.floor(self.duration_s / interval_s)) + 1)
        grid = self.timestamps_s[0] + np.arange(n_samples) * interval_s
        values = np.array([self.throughput_at(t) for t in grid])
        return Trace(grid, values, name=name or f"{self.name}-resampled")

    def with_name(self, name: str) -> "Trace":
        return Trace(self.timestamps_s.copy(), self.throughputs_mbps.copy(), name=name)


class TraceSet:
    """An ordered, named collection of traces (e.g. the FCC training split)."""

    def __init__(self, traces: Iterable[Trace], name: str = "traceset") -> None:
        self._traces: List[Trace] = list(traces)
        if not self._traces:
            raise ValueError("a TraceSet needs at least one trace")
        self.name = name

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces)

    def __getitem__(self, index: int) -> Trace:
        return self._traces[index]

    @property
    def traces(self) -> Sequence[Trace]:
        return tuple(self._traces)

    # ------------------------------------------------------------------ #
    @property
    def total_hours(self) -> float:
        """Sum of trace durations in hours (the 'Hours' columns of Table 1)."""
        return sum(t.duration_s for t in self._traces) / 3600.0

    @property
    def mean_throughput_mbps(self) -> float:
        """Duration-weighted mean throughput across all traces."""
        durations = np.array([t.duration_s for t in self._traces])
        means = np.array([t.mean_throughput_mbps for t in self._traces])
        return float(np.average(means, weights=durations))

    # ------------------------------------------------------------------ #
    def sample(self, rng: np.random.Generator) -> Trace:
        """Draw a trace uniformly at random (used by training rollouts)."""
        return self._traces[int(rng.integers(len(self._traces)))]

    def split(self, train_fraction: float, rng: Optional[np.random.Generator] = None,
              ) -> Tuple["TraceSet", "TraceSet"]:
        """Randomly split into train/test subsets."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        indices = np.arange(len(self._traces))
        if rng is not None:
            rng.shuffle(indices)
        cut = max(1, min(len(indices) - 1, int(round(train_fraction * len(indices)))))
        train = [self._traces[i] for i in indices[:cut]]
        test = [self._traces[i] for i in indices[cut:]]
        return (TraceSet(train, name=f"{self.name}-train"),
                TraceSet(test, name=f"{self.name}-test"))

    def scaled(self, factor: float) -> "TraceSet":
        """Scale every trace's bandwidth by ``factor``."""
        return TraceSet([t.scaled(factor) for t in self._traces],
                        name=f"{self.name}-x{factor:g}")
