"""Dataset statistics used to regenerate Table 1 of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .base import TraceSet

__all__ = ["DatasetStats", "compute_dataset_stats", "PAPER_TABLE1"]


@dataclass(frozen=True)
class DatasetStats:
    """One row of Table 1.

    Attributes mirror the published columns: the number of traces and total
    hours for the train and test splits, the average throughput in Mbps, and
    the training schedule (epochs, checkpoint test interval) used for the
    environment.
    """

    dataset: str
    train_traces: int
    train_hours: float
    test_traces: int
    test_hours: float
    throughput_mbps: float
    train_epochs: int
    test_interval: int

    def as_row(self) -> List[str]:
        """Format as strings in the order of the published table."""
        return [
            self.dataset,
            str(self.train_traces),
            f"{self.train_hours:.1f}",
            str(self.test_traces),
            f"{self.test_hours:.1f}",
            f"{self.throughput_mbps:.1f}",
            f"{self.train_epochs:,}",
            str(self.test_interval),
        ]


#: The values published in Table 1, used for comparison in EXPERIMENTS.md and
#: by the Table 1 benchmark.
PAPER_TABLE1: Dict[str, DatasetStats] = {
    "fcc": DatasetStats("FCC", 85, 10.0, 290, 25.7, 1.3, 40_000, 500),
    "starlink": DatasetStats("Starlink", 13, 0.9, 12, 0.8, 1.6, 4_000, 100),
    "4g": DatasetStats("4G", 119, 10.0, 121, 10.0, 19.8, 40_000, 500),
    "5g": DatasetStats("5G", 117, 10.0, 119, 10.0, 30.2, 40_000, 500),
}


def compute_dataset_stats(
    dataset: str,
    train: TraceSet,
    test: TraceSet,
    train_epochs: Optional[int] = None,
    test_interval: Optional[int] = None,
) -> DatasetStats:
    """Compute Table 1 statistics for a generated train/test split.

    The throughput column reports the duration-weighted mean across both
    splits, matching how the paper characterizes each environment.
    """
    total_hours = train.total_hours + test.total_hours
    if total_hours <= 0:
        raise ValueError("trace sets have zero total duration")
    weighted = (train.mean_throughput_mbps * train.total_hours
                + test.mean_throughput_mbps * test.total_hours) / total_hours
    reference = PAPER_TABLE1.get(dataset.lower())
    return DatasetStats(
        dataset=dataset,
        train_traces=len(train),
        train_hours=train.total_hours,
        test_traces=len(test),
        test_hours=test.total_hours,
        throughput_mbps=weighted,
        train_epochs=train_epochs if train_epochs is not None else (
            reference.train_epochs if reference else 0),
        test_interval=test_interval if test_interval is not None else (
            reference.test_interval if reference else 0),
    )
