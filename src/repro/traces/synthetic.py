"""Synthetic network-trace generators for the four environments in the paper.

The paper evaluates on measured traces (FCC broadband, a Starlink RV terminal,
and 4G/5G drive tests) that are not publicly released.  These generators are
the substitution documented in DESIGN.md: seedable stochastic processes whose
scale, variability and non-stationarity match the per-environment statistics
the paper reports in Table 1:

===========  =============  ==========================================
Environment  Mean (Mbps)    Character
===========  =============  ==========================================
FCC          1.3            slowly varying broadband, 5-second bins
Starlink     1.6            15-second handover dips, peak-hour 1/8 cap
4G           19.8           bursty cellular with mobility fades
5G           30.2           very high mean, deep mmWave outages
===========  =============  ==========================================

Each ``generate_*_trace`` function returns a single :class:`Trace`; the
``*_dataset`` builders assemble train/test :class:`TraceSet` splits whose trace
counts and total durations follow Table 1 (optionally scaled down for fast
tests and benchmarks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .base import Trace, TraceSet

__all__ = [
    "generate_fcc_trace",
    "generate_starlink_trace",
    "generate_4g_trace",
    "generate_5g_trace",
    "fcc_dataset",
    "starlink_dataset",
    "lte_dataset",
    "nr5g_dataset",
    "STARLINK_PEAK_HOUR_CAPACITY_FACTOR",
]


# The paper reduces Starlink link capacity to one eighth of the measured speed
# to model peak-hour contention on the shared satellite links (§3.1).
STARLINK_PEAK_HOUR_CAPACITY_FACTOR = 1.0 / 8.0


def _ou_process(n: int, mean: float, reversion: float, volatility: float,
                rng: np.random.Generator, initial: Optional[float] = None) -> np.ndarray:
    """Ornstein-Uhlenbeck process, the backbone of the slow bandwidth drift."""
    values = np.empty(n)
    values[0] = mean if initial is None else initial
    for i in range(1, n):
        drift = reversion * (mean - values[i - 1])
        values[i] = values[i - 1] + drift + volatility * rng.normal()
    return values


def generate_fcc_trace(duration_s: float = 420.0, interval_s: float = 5.0,
                       mean_mbps: float = 1.3, seed: Optional[int] = None,
                       name: str = "fcc") -> Trace:
    """Generate one broadband (FCC-like) trace.

    Broadband last-mile links are comparatively stable: bandwidth drifts slowly
    around the plan rate with occasional congestion episodes that shave off a
    fraction of capacity for tens of seconds.
    """
    rng = np.random.default_rng(seed)
    n = max(2, int(round(duration_s / interval_s)) + 1)
    base = _ou_process(n, mean=mean_mbps, reversion=0.08,
                       volatility=0.06 * mean_mbps, rng=rng)
    # Congestion episodes: multiplicative dips lasting 4-12 samples.
    congestion = np.ones(n)
    position = 0
    while position < n:
        gap = int(rng.integers(20, 60))
        position += gap
        if position >= n:
            break
        length = int(rng.integers(4, 12))
        depth = rng.uniform(0.45, 0.85)
        congestion[position:position + length] *= depth
        position += length
    throughput = np.clip(base * congestion, 0.1 * mean_mbps, 3.0 * mean_mbps)
    timestamps = np.arange(n) * interval_s
    return Trace(timestamps, throughput, name=name)


def generate_starlink_trace(duration_s: float = 250.0, interval_s: float = 1.0,
                            mean_mbps: float = 12.8, seed: Optional[int] = None,
                            apply_peak_hour_reduction: bool = True,
                            name: str = "starlink") -> Trace:
    """Generate one Starlink-like trace.

    LEO satellite links reconfigure on a ~15-second schedule as the terminal
    hands over between satellites; throughput dips sharply around each handover
    and otherwise fluctuates with weather/obstruction noise.  The paper further
    divides capacity by eight to model peak-hour contention, which is applied
    here when ``apply_peak_hour_reduction`` is True (resulting in the ~1.6 Mbps
    average reported in Table 1).
    """
    rng = np.random.default_rng(seed)
    n = max(2, int(round(duration_s / interval_s)) + 1)
    timestamps = np.arange(n) * interval_s
    base = _ou_process(n, mean=mean_mbps, reversion=0.15,
                       volatility=0.10 * mean_mbps, rng=rng)
    # 15-second satellite handover schedule with a random phase.
    phase = rng.uniform(0.0, 15.0)
    handover_drop = np.ones(n)
    for i, t in enumerate(timestamps):
        cycle_position = (t + phase) % 15.0
        if cycle_position < 1.5:
            # During the handover window throughput collapses.
            handover_drop[i] = rng.uniform(0.05, 0.35)
    # Obstruction events: occasional multi-second outages.
    obstruction = np.ones(n)
    position = 0
    while position < n:
        position += int(rng.integers(40, 120))
        if position >= n:
            break
        length = int(rng.integers(2, 6))
        obstruction[position:position + length] *= rng.uniform(0.02, 0.2)
        position += length
    throughput = np.clip(base * handover_drop * obstruction, 0.05, 4.0 * mean_mbps)
    if apply_peak_hour_reduction:
        throughput = throughput * STARLINK_PEAK_HOUR_CAPACITY_FACTOR
    return Trace(timestamps, throughput, name=name)


def generate_4g_trace(duration_s: float = 300.0, interval_s: float = 1.0,
                      mean_mbps: float = 19.8, seed: Optional[int] = None,
                      name: str = "4g") -> Trace:
    """Generate one 4G/LTE-like trace.

    LTE drive-test traces show large swings driven by cell load and mobility:
    sustained high-rate periods, abrupt fades when the UE moves to the cell
    edge, and bursty short-timescale variation from the scheduler.
    """
    rng = np.random.default_rng(seed)
    n = max(2, int(round(duration_s / interval_s)) + 1)
    base = _ou_process(n, mean=mean_mbps, reversion=0.05,
                       volatility=0.18 * mean_mbps, rng=rng)
    # Cell-edge fades: sustained periods at a fraction of nominal capacity.
    fade = np.ones(n)
    position = 0
    while position < n:
        position += int(rng.integers(30, 90))
        if position >= n:
            break
        length = int(rng.integers(10, 30))
        fade[position:position + length] *= rng.uniform(0.15, 0.5)
        position += length
    # Scheduler burstiness: per-sample multiplicative jitter.
    jitter = rng.lognormal(mean=0.0, sigma=0.25, size=n)
    throughput = np.clip(base * fade * jitter, 0.3, 4.0 * mean_mbps)
    timestamps = np.arange(n) * interval_s
    return Trace(timestamps, throughput, name=name)


def generate_5g_trace(duration_s: float = 300.0, interval_s: float = 1.0,
                      mean_mbps: float = 30.2, seed: Optional[int] = None,
                      name: str = "5g") -> Trace:
    """Generate one 5G-like trace.

    5G (especially mmWave-assisted) links alternate between very high
    throughput and deep outages when line of sight is lost, producing a
    bimodal distribution with higher variance than 4G.
    """
    rng = np.random.default_rng(seed)
    n = max(2, int(round(duration_s / interval_s)) + 1)
    # High band: fast and volatile.  Low band fallback: modest but stable.
    high_band = _ou_process(n, mean=1.6 * mean_mbps, reversion=0.07,
                            volatility=0.22 * mean_mbps, rng=rng)
    low_band = _ou_process(n, mean=0.35 * mean_mbps, reversion=0.1,
                           volatility=0.05 * mean_mbps, rng=rng)
    # Line-of-sight state machine: two-state Markov chain.
    on_high = np.empty(n, dtype=bool)
    state = True
    p_drop = 0.04    # probability of losing line of sight per sample
    p_recover = 0.12  # probability of regaining it
    for i in range(n):
        on_high[i] = state
        if state and rng.random() < p_drop:
            state = False
        elif not state and rng.random() < p_recover:
            state = True
    jitter = rng.lognormal(mean=0.0, sigma=0.2, size=n)
    throughput = np.where(on_high, high_band, low_band) * jitter
    throughput = np.clip(throughput, 0.5, 5.0 * mean_mbps)
    timestamps = np.arange(n) * interval_s
    return Trace(timestamps, throughput, name=name)


# --------------------------------------------------------------------------- #
# Dataset builders (Table 1 splits)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _DatasetSpec:
    """Target statistics for one environment's train/test split."""

    train_traces: int
    train_hours: float
    test_traces: int
    test_hours: float


_TABLE1_SPECS = {
    "fcc": _DatasetSpec(85, 10.0, 290, 25.7),
    "starlink": _DatasetSpec(13, 0.9, 12, 0.8),
    "4g": _DatasetSpec(119, 10.0, 121, 10.0),
    "5g": _DatasetSpec(117, 10.0, 119, 10.0),
}


def _build_split(generator, spec: _DatasetSpec, name: str, seed: int,
                 scale: float, interval_s: float, **kwargs) -> Tuple[TraceSet, TraceSet]:
    """Assemble train/test TraceSets whose counts/durations follow ``spec``.

    ``scale`` in (0, 1] shrinks both trace counts and per-trace durations so
    that unit tests and benchmarks can run quickly while exercising the same
    construction path.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    train_count = max(1, int(round(spec.train_traces * scale)))
    test_count = max(1, int(round(spec.test_traces * scale)))
    train_duration = spec.train_hours * 3600.0 * scale / train_count
    test_duration = spec.test_hours * 3600.0 * scale / test_count
    # Keep traces long enough for at least a handful of chunks.
    train_duration = max(train_duration, 60.0)
    test_duration = max(test_duration, 60.0)

    train = [
        generator(duration_s=train_duration, interval_s=interval_s,
                  seed=seed + i, name=f"{name}-train-{i:04d}", **kwargs)
        for i in range(train_count)
    ]
    test = [
        generator(duration_s=test_duration, interval_s=interval_s,
                  seed=seed + 100_000 + i, name=f"{name}-test-{i:04d}", **kwargs)
        for i in range(test_count)
    ]
    return (TraceSet(train, name=f"{name}-train"),
            TraceSet(test, name=f"{name}-test"))


def fcc_dataset(seed: int = 0, scale: float = 1.0) -> Tuple[TraceSet, TraceSet]:
    """Build the FCC broadband train/test split (Table 1 row 1)."""
    return _build_split(generate_fcc_trace, _TABLE1_SPECS["fcc"], "fcc",
                        seed=seed, scale=scale, interval_s=5.0)


def starlink_dataset(seed: int = 0, scale: float = 1.0) -> Tuple[TraceSet, TraceSet]:
    """Build the Starlink train/test split (Table 1 row 2), peak-hour reduced."""
    return _build_split(generate_starlink_trace, _TABLE1_SPECS["starlink"], "starlink",
                        seed=seed, scale=scale, interval_s=1.0)


def lte_dataset(seed: int = 0, scale: float = 1.0) -> Tuple[TraceSet, TraceSet]:
    """Build the 4G/LTE train/test split (Table 1 row 3)."""
    return _build_split(generate_4g_trace, _TABLE1_SPECS["4g"], "4g",
                        seed=seed, scale=scale, interval_s=1.0)


def nr5g_dataset(seed: int = 0, scale: float = 1.0) -> Tuple[TraceSet, TraceSet]:
    """Build the 5G train/test split (Table 1 row 4)."""
    return _build_split(generate_5g_trace, _TABLE1_SPECS["5g"], "5g",
                        seed=seed, scale=scale, interval_s=1.0)
