"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned ASCII / GitHub-markdown tables so the console
output of ``pytest benchmarks/`` is directly comparable to the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table", "format_improvement", "format_score"]


def format_score(value: Optional[float], digits: int = 3) -> str:
    """Format a score value, tolerating None/NaN."""
    if value is None:
        return "-"
    try:
        numeric = float(value)
    except (TypeError, ValueError):
        return str(value)
    if numeric != numeric:  # NaN
        return "-"
    return f"{numeric:.{digits}f}"


def format_improvement(percent: Optional[float]) -> str:
    """Format a percentage improvement as in the paper ("13.0%", "–")."""
    if percent is None:
        return "–"
    return f"{percent:.1f}%"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None, markdown: bool = False) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    headers = [str(h) for h in headers]
    text_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
        if markdown:
            return "| " + " | ".join(padded) + " |"
        return "  ".join(padded)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    if markdown:
        lines.append("| " + " | ".join("-" * w for w in widths) + " |")
    else:
        lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in text_rows)
    return "\n".join(lines)
