"""Analysis utilities: metrics, tables, curves and shared experiment drivers."""

from .curves import CurveComparison, TrainingCurve, render_ascii_curves
from .experiments import (
    CombinationExperimentResult,
    ComponentExperimentResult,
    EmulationComparisonResult,
    EnvironmentSetup,
    ExperimentScale,
    build_design_corpus,
    build_environment,
    run_combination_experiment,
    run_component_experiment,
    run_emulation_comparison,
)
from .metrics import (
    cumulative_best,
    improvement_percent,
    median_of_seeds,
    moving_average,
    smoothed_score,
)
from .tables import format_improvement, format_score, render_table

__all__ = [
    "TrainingCurve", "CurveComparison", "render_ascii_curves",
    "ExperimentScale", "EnvironmentSetup", "build_environment",
    "ComponentExperimentResult", "run_component_experiment",
    "CombinationExperimentResult", "run_combination_experiment",
    "EmulationComparisonResult", "run_emulation_comparison",
    "build_design_corpus",
    "smoothed_score", "median_of_seeds", "improvement_percent",
    "moving_average", "cumulative_best",
    "render_table", "format_improvement", "format_score",
]
