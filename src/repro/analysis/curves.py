"""Training-curve data structures for the figure benchmarks.

Figures 3 and 4 of the paper plot the test score of the best generated design
against the original design over the course of training.  The benchmarks here
produce the same series; this module holds them, aligns them on a common
epoch grid and renders a compact ASCII representation for console output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["TrainingCurve", "CurveComparison", "render_ascii_curves"]


@dataclass
class TrainingCurve:
    """A named series of (epoch, test score) checkpoints."""

    label: str
    epochs: List[int] = field(default_factory=list)
    scores: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.epochs) != len(self.scores):
            raise ValueError("epochs and scores must have equal length")

    def add(self, epoch: int, score: float) -> None:
        if self.epochs and epoch <= self.epochs[-1]:
            raise ValueError("epochs must be strictly increasing")
        self.epochs.append(int(epoch))
        self.scores.append(float(score))

    @property
    def final_score(self) -> float:
        return self.scores[-1] if self.scores else float("-inf")

    def smoothed(self, window: int = 3) -> "TrainingCurve":
        """Return a copy with a trailing moving average applied to the scores."""
        from .metrics import moving_average
        return TrainingCurve(self.label, list(self.epochs),
                             list(moving_average(self.scores, window)))


@dataclass
class CurveComparison:
    """A set of curves plotted on the same axes (one panel of Figure 3/4)."""

    title: str
    curves: List[TrainingCurve] = field(default_factory=list)

    def add_curve(self, curve: TrainingCurve) -> None:
        self.curves.append(curve)

    def curve(self, label: str) -> TrainingCurve:
        for curve in self.curves:
            if curve.label == label:
                return curve
        raise KeyError(f"no curve labelled {label!r}")

    def final_scores(self) -> Dict[str, float]:
        return {curve.label: curve.final_score for curve in self.curves}

    def winner(self) -> str:
        """Label of the curve with the highest final score."""
        if not self.curves:
            raise ValueError("comparison contains no curves")
        return max(self.curves, key=lambda c: c.final_score).label


def render_ascii_curves(comparison: CurveComparison, width: int = 60,
                        height: int = 12) -> str:
    """Render curves as a small ASCII chart (one character per curve point)."""
    if not comparison.curves or not any(c.scores for c in comparison.curves):
        return f"{comparison.title}: (no data)"
    all_scores = [s for c in comparison.curves for s in c.scores if np.isfinite(s)]
    all_epochs = [e for c in comparison.curves for e in c.epochs]
    if not all_scores:
        return f"{comparison.title}: (no finite data)"
    lo, hi = min(all_scores), max(all_scores)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    min_epoch, max_epoch = min(all_epochs), max(all_epochs)
    span = max(max_epoch - min_epoch, 1)

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for index, curve in enumerate(comparison.curves):
        marker = markers[index % len(markers)]
        for epoch, score in zip(curve.epochs, curve.scores):
            if not np.isfinite(score):
                continue
            col = int((epoch - min_epoch) / span * (width - 1))
            row = int((score - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [comparison.title]
    lines.append(f"  score range [{lo:.3f}, {hi:.3f}], epochs [{min_epoch}, {max_epoch}]")
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append("  +" + "-" * width)
    legend = "   ".join(f"{markers[i % len(markers)]}={c.label}"
                        for i, c in enumerate(comparison.curves))
    lines.append("  " + legend)
    return "\n".join(lines)
