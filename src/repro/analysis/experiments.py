"""Shared experiment drivers used by the examples and the benchmark harness.

Each driver reproduces the workload behind one of the paper's tables/figures
at a configurable scale.  The full published scale (3,000 designs, 40,000
training epochs, 5 seeds) is reachable by passing a large
:class:`ExperimentScale`; the benchmark defaults are much smaller so the whole
suite completes on a laptop, while exercising exactly the same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..abr.env import StreamingSession
from ..abr.qoe import LinearQoE
from ..abr.video import Video, synthetic_video
from ..core.design import CandidatePool, Design, DesignKind, DesignStatus
from ..core.evaluation import DesignTrainer, EvaluationConfig, TestScoreProtocol, instantiate_agent
from ..core.filters import FilterPipeline, FilterReport
from ..core.parallel import ParallelConfig
from ..core.generation import DesignGenerator, GenerationConfig
from ..core.predictors import DesignSampleFeatures
from ..core import telemetry
from ..core.results import ResultStore
from ..core.scheduler import CampaignScheduler
from ..core.prompts import PromptConfig
from ..emulation.emulator import EmulationConfig, Emulator
from ..llm.synthetic import SyntheticLLM
from ..rl.a2c import A2CConfig, A2CTrainer, evaluate_agent
from ..traces.base import TraceSet
from ..traces.registry import ENVIRONMENTS, build_dataset
from .curves import CurveComparison, TrainingCurve
from .metrics import improvement_percent

__all__ = [
    "ExperimentScale",
    "EnvironmentSetup",
    "build_environment",
    "ComponentExperimentResult",
    "run_component_experiment",
    "CombinationExperimentResult",
    "run_combination_experiment",
    "EmulationComparisonResult",
    "run_emulation_comparison",
    "build_design_corpus",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that shrink/enlarge every experiment uniformly."""

    #: Fraction of the published trace-set sizes to generate.
    dataset_scale: float = 0.03
    #: Chunks per video (the paper's reference video has 48).
    num_chunks: int = 16
    #: Training episodes per design per seed.
    train_epochs: int = 40
    #: Episodes between test-set checkpoint evaluations.
    checkpoint_interval: int = 10
    #: Checkpoints averaged into a seed's score.
    last_k_checkpoints: int = 3
    #: Independent training seeds per design (paper: 5).
    num_seeds: int = 2
    #: Candidate designs generated per component (paper: 3,000).
    num_designs: int = 10
    #: At most this many surviving designs are trained (None = all).
    max_trained_designs: Optional[int] = None
    #: Entropy-bonus schedule.  At small training budgets a lower starting
    #: weight lets policies converge within the available episodes; the
    #: published schedule anneals from 1.0 like Pensieve.
    entropy_weight_start: float = 0.5
    entropy_weight_end: float = 0.05
    #: Base random seed.
    seed: int = 0
    #: Worker processes for the scheduler's across-job fan-out; None reads
    #: the REPRO_WORKERS environment variable, <= 1 runs serially.
    workers: Optional[int] = 1
    #: Tensor dtype for the nn substrate: "float64" (accuracy-first default)
    #: or "float32" (fast path).  Applied by the experiment drivers.
    dtype: str = "float64"
    #: Train all seeds of a design in lockstep with stacked per-seed weights
    #: when the architecture supports it.  The scheduler runs one design's
    #: seed batch inside one worker, so lockstep composes with the process
    #: fan-out; results are identical to per-seed training, just faster.
    lockstep: bool = True
    #: Directory of the persistent result store shared by the drivers; None
    #: (default) recomputes everything.
    store_dir: Optional[str] = None
    #: Directory for structured telemetry (spans, counters, training-metric
    #: series), plumbed like ``store_dir``; None leaves telemetry untouched.
    telemetry_dir: Optional[str] = None

    def evaluation_config(self) -> EvaluationConfig:
        return EvaluationConfig(
            train_epochs=self.train_epochs,
            checkpoint_interval=self.checkpoint_interval,
            last_k_checkpoints=self.last_k_checkpoints,
            num_seeds=self.num_seeds,
            a2c=A2CConfig(entropy_weight_start=self.entropy_weight_start,
                          entropy_weight_end=self.entropy_weight_end,
                          entropy_anneal_epochs=max(self.train_epochs // 2, 1)),
            lockstep_training=self.lockstep,
        )

    def parallel_config(self) -> ParallelConfig:
        return ParallelConfig(max_workers=self.workers)

    def scheduler(self) -> CampaignScheduler:
        """The work-graph execution layer every driver submits jobs to."""
        if self.telemetry_dir:
            telemetry.enable(self.telemetry_dir)
        store = ResultStore(self.store_dir) if self.store_dir else None
        return CampaignScheduler(parallel=self.parallel_config(), store=store)


@dataclass
class EnvironmentSetup:
    """Everything needed to run experiments in one network environment."""

    environment: str
    video: Video
    train_traces: TraceSet
    test_traces: TraceSet
    qoe: LinearQoE


def build_environment(environment: str, scale: ExperimentScale) -> EnvironmentSetup:
    """Build the video and trace splits for a named environment."""
    spec = ENVIRONMENTS[environment.lower()]
    train, test = build_dataset(environment, seed=scale.seed,
                                scale=scale.dataset_scale)
    video = synthetic_video(spec.bitrate_ladder, num_chunks=scale.num_chunks,
                            seed=scale.seed)
    return EnvironmentSetup(environment=environment.lower(), video=video,
                            train_traces=train, test_traces=test,
                            qoe=LinearQoE(video.bitrates_kbps))


def _generate_filtered_pool(setup: EnvironmentSetup, kind: DesignKind,
                            llm_profile: str, scale: ExperimentScale,
                            prompt: Optional[PromptConfig] = None,
                            ) -> Tuple[CandidatePool, FilterReport]:
    client = SyntheticLLM(llm_profile, seed=scale.seed)
    generator = DesignGenerator(client, GenerationConfig(
        prompt=prompt or PromptConfig(), base_seed=scale.seed))
    pool = CandidatePool(generator.generate(kind, scale.num_designs))
    report = FilterPipeline().apply(pool)
    return pool, report


def _curve_from_runs(label: str, runs) -> TrainingCurve:
    """Average per-checkpoint test scores across seeds into one curve."""
    curve = TrainingCurve(label)
    completed = [run for run in runs if run.checkpoint_scores]
    if not completed:
        return curve
    min_len = min(len(run.checkpoint_scores) for run in completed)
    for index in range(min_len):
        epoch = completed[0].checkpoint_epochs[index]
        score = float(np.mean([run.checkpoint_scores[index] for run in completed]))
        curve.add(epoch, score)
    return curve


# --------------------------------------------------------------------------- #
# Tables 3 / Figures 3-4: best generated state / network vs. the original
# --------------------------------------------------------------------------- #
@dataclass
class ComponentExperimentResult:
    """Outcome of redesigning one component in one environment."""

    environment: str
    kind: str
    llm_profile: str
    original_score: float
    best_score: Optional[float]
    improvement_percent: Optional[float]
    best_design: Optional[Design]
    pool: CandidatePool
    filter_report: FilterReport
    comparison: CurveComparison
    #: Per-design test scores, in evaluation order.
    evaluated_scores: Dict[str, float] = field(default_factory=dict)


def run_component_experiment(environment: str, kind: str = "state",
                             llm_profile: str = "gpt-4",
                             scale: Optional[ExperimentScale] = None,
                             prompt: Optional[PromptConfig] = None,
                             ) -> ComponentExperimentResult:
    """Generate, filter and evaluate designs for one component (Table 3 / Fig 3-4)."""
    scale = scale or ExperimentScale()
    with nn.default_dtype(scale.dtype):
        return _run_component_experiment(environment, kind, llm_profile,
                                         scale, prompt)


def _run_component_experiment(environment: str, kind: str, llm_profile: str,
                              scale: ExperimentScale,
                              prompt: Optional[PromptConfig],
                              ) -> ComponentExperimentResult:
    design_kind = DesignKind(kind)
    setup = build_environment(environment, scale)
    pool, report = _generate_filtered_pool(setup, design_kind, llm_profile, scale,
                                           prompt=prompt)

    trainer = DesignTrainer(setup.video, setup.train_traces, setup.test_traces,
                            config=scale.evaluation_config(), qoe=setup.qoe)
    protocol = TestScoreProtocol(trainer, scheduler=scale.scheduler(),
                                 environment=setup.environment)

    original_score, original_runs = protocol.run(None, None)
    comparison = CurveComparison(
        title=f"{environment.upper()} / {design_kind.value} / {llm_profile}")
    comparison.add_curve(_curve_from_runs("Original", original_runs))

    survivors = pool.surviving_prechecks()
    if scale.max_trained_designs is not None:
        survivors = survivors[:scale.max_trained_designs]
    evaluated_scores: Dict[str, float] = {}
    best_design: Optional[Design] = None
    best_runs = None
    # One scheduled job batch; results come back in design order, and the
    # protocol applies the same per-design bookkeeping the pipeline uses.
    scores, results = protocol.score_designs_detailed(survivors)
    for design, score, result in zip(survivors, scores, results):
        evaluated_scores[design.design_id] = score
        if best_design is None or (design.test_score or -np.inf) > (best_design.test_score or -np.inf):
            best_design = design
            best_runs = result.runs

    best_score = best_design.test_score if best_design is not None else None
    if best_runs is not None:
        comparison.add_curve(_curve_from_runs("Best Generated", best_runs))

    return ComponentExperimentResult(
        environment=setup.environment,
        kind=design_kind.value,
        llm_profile=llm_profile,
        original_score=original_score,
        best_score=best_score,
        improvement_percent=improvement_percent(original_score, best_score)
        if best_score is not None else None,
        best_design=best_design,
        pool=pool,
        filter_report=report,
        comparison=comparison,
        evaluated_scores=evaluated_scores,
    )


# --------------------------------------------------------------------------- #
# Table 5: combining top states with top networks
# --------------------------------------------------------------------------- #
@dataclass
class CombinationExperimentResult:
    """Improvements from states, networks and their combination (Table 5)."""

    environment: str
    llm_profile: str
    original_score: float
    state_score: Optional[float]
    network_score: Optional[float]
    combined_score: Optional[float]

    @property
    def state_improvement(self) -> Optional[float]:
        return improvement_percent(self.original_score, self.state_score) \
            if self.state_score is not None else None

    @property
    def network_improvement(self) -> Optional[float]:
        return improvement_percent(self.original_score, self.network_score) \
            if self.network_score is not None else None

    @property
    def combined_improvement(self) -> Optional[float]:
        return improvement_percent(self.original_score, self.combined_score) \
            if self.combined_score is not None else None


def run_combination_experiment(environment: str, llm_profile: str = "gpt-3.5",
                               scale: Optional[ExperimentScale] = None,
                               top_k: int = 2) -> CombinationExperimentResult:
    """Evaluate top-state x top-network combinations (Table 5 workload)."""
    scale = scale or ExperimentScale()
    with nn.default_dtype(scale.dtype):
        return _run_combination_experiment(environment, llm_profile, scale,
                                           top_k)


def _run_combination_experiment(environment: str, llm_profile: str,
                                scale: ExperimentScale, top_k: int,
                                ) -> CombinationExperimentResult:
    setup = build_environment(environment, scale)
    state_pool, _ = _generate_filtered_pool(setup, DesignKind.STATE, llm_profile, scale)
    network_pool, _ = _generate_filtered_pool(
        setup, DesignKind.NETWORK, llm_profile,
        replace(scale, seed=scale.seed + 1))

    trainer = DesignTrainer(setup.video, setup.train_traces, setup.test_traces,
                            config=scale.evaluation_config(), qoe=setup.qoe)
    protocol = TestScoreProtocol(trainer, scheduler=scale.scheduler(),
                                 environment=setup.environment)
    original_score, _ = protocol.run(None, None)

    def evaluate_pool(pool: CandidatePool, kind: DesignKind) -> List[Design]:
        survivors = pool.surviving_prechecks()
        if scale.max_trained_designs is not None:
            survivors = survivors[:scale.max_trained_designs]
        protocol.score_designs(survivors)
        return pool.top_k(top_k, kind=kind)

    top_states = evaluate_pool(state_pool, DesignKind.STATE)
    top_networks = evaluate_pool(network_pool, DesignKind.NETWORK)

    state_score = top_states[0].test_score if top_states else None
    network_score = top_networks[0].test_score if top_networks else None

    # The top_k x top_k grid is one more flat (state, network, seed) sweep.
    grid = [(state, network) for state in top_states for network in top_networks]
    combined_score: Optional[float] = None
    for score, _ in protocol.run_many(grid):
        if combined_score is None or score > combined_score:
            combined_score = score

    return CombinationExperimentResult(
        environment=setup.environment,
        llm_profile=llm_profile,
        original_score=original_score,
        state_score=state_score,
        network_score=network_score,
        combined_score=combined_score,
    )


# --------------------------------------------------------------------------- #
# Table 4: emulation of the best generated states
# --------------------------------------------------------------------------- #
@dataclass
class EmulationComparisonResult:
    """Simulation vs. emulation scores of the original and best generated state."""

    environment: str
    llm_profile: str
    original_sim_score: float
    best_sim_score: float
    original_emu_score: float
    best_emu_score: float

    @property
    def sim_improvement(self) -> Optional[float]:
        return improvement_percent(self.original_sim_score, self.best_sim_score)

    @property
    def emu_improvement(self) -> Optional[float]:
        return improvement_percent(self.original_emu_score, self.best_emu_score)


def run_emulation_comparison(environment: str, llm_profile: str = "gpt-4",
                             scale: Optional[ExperimentScale] = None,
                             emulation_config: Optional[EmulationConfig] = None,
                             ) -> EmulationComparisonResult:
    """Train the original and best generated state, then score both in emulation."""
    scale = scale or ExperimentScale()
    with nn.default_dtype(scale.dtype):
        return _run_emulation_comparison(environment, llm_profile, scale,
                                         emulation_config)


def _run_emulation_comparison(environment: str, llm_profile: str,
                              scale: ExperimentScale,
                              emulation_config: Optional[EmulationConfig],
                              ) -> EmulationComparisonResult:
    setup = build_environment(environment, scale)
    pool, _ = _generate_filtered_pool(setup, DesignKind.STATE, llm_profile, scale)
    survivors = pool.surviving_prechecks()
    if scale.max_trained_designs is not None:
        survivors = survivors[:scale.max_trained_designs]

    config = scale.evaluation_config()

    def train_agent(state_design: Optional[Design], seed: int):
        agent = instantiate_agent(state_design, None, setup.video,
                                  setup.train_traces, seed=seed)
        a2c = A2CTrainer(agent, setup.video, setup.train_traces, qoe=setup.qoe,
                         config=config.a2c, seed=seed)
        a2c.train(config.train_epochs)
        sim_score = evaluate_agent(agent, setup.video, setup.test_traces,
                                   qoe=setup.qoe, greedy=True, seed=seed)
        return agent, sim_score

    original_agent, original_sim = train_agent(None, seed=scale.seed)

    best_design: Optional[Design] = None
    best_agent = None
    best_sim = -np.inf
    for index, design in enumerate(survivors):
        agent, sim_score = train_agent(design, seed=scale.seed + index + 1)
        design.finalize(sim_score)
        if sim_score > best_sim:
            best_sim = sim_score
            best_design = design
            best_agent = agent
    if best_agent is None:
        # No generated design survived: compare the original against itself so
        # the benchmark still reports a complete row.
        best_agent, best_sim = original_agent, original_sim

    emulator = Emulator(setup.video, qoe=setup.qoe, config=emulation_config)
    original_emu = emulator.evaluate(original_agent.greedy_policy(), setup.test_traces)
    best_emu = emulator.evaluate(best_agent.greedy_policy(), setup.test_traces)

    return EmulationComparisonResult(
        environment=setup.environment,
        llm_profile=llm_profile,
        original_sim_score=original_sim,
        best_sim_score=float(best_sim),
        original_emu_score=original_emu,
        best_emu_score=best_emu,
    )


# --------------------------------------------------------------------------- #
# Figure 5: labelled corpus for the early-stopping comparison
# --------------------------------------------------------------------------- #
def _corpus_sample(args) -> DesignSampleFeatures:
    """Worker: train one corpus design and extract its features.

    The scheduler's ``map_items`` propagates the tensor dtype and
    fast-inference toggle into worker processes, so the sample only carries
    workload inputs.
    """
    setup, config, design, seed, eval_seed = args
    agent = instantiate_agent(design, None, setup.video, setup.train_traces,
                              seed=seed)
    trainer = A2CTrainer(agent, setup.video, setup.train_traces, qoe=setup.qoe,
                         config=config.a2c, seed=seed)
    trainer.train(config.train_epochs)
    final_score = evaluate_agent(agent, setup.video, setup.test_traces,
                                 qoe=setup.qoe, greedy=True, seed=eval_seed)
    return DesignSampleFeatures(
        reward_prefix=list(trainer.reward_history),
        code=design.code,
        final_score=float(final_score),
    )


def build_design_corpus(environment: str = "fcc", llm_profile: str = "gpt-4",
                        num_designs: int = 24,
                        scale: Optional[ExperimentScale] = None,
                        ) -> List[DesignSampleFeatures]:
    """Train many designs briefly to build (reward prefix, code, score) samples.

    This is the corpus the early-stopping study consumes: each design
    contributes its early training-reward trajectory, its source code and its
    final test score.  Designs are independent, so the campaign scheduler
    fans the sweep out across ``scale.workers`` processes.
    """
    scale = scale or ExperimentScale()
    scale = replace(scale, num_designs=num_designs)
    with nn.default_dtype(scale.dtype):
        return _build_design_corpus(environment, llm_profile, num_designs,
                                    scale)


def _build_design_corpus(environment: str, llm_profile: str, num_designs: int,
                         scale: ExperimentScale) -> List[DesignSampleFeatures]:
    setup = build_environment(environment, scale)
    client = SyntheticLLM(llm_profile, seed=scale.seed)
    generator = DesignGenerator(client, GenerationConfig(base_seed=scale.seed))
    pool = CandidatePool(generator.generate_states(num_designs))
    FilterPipeline().apply(pool)

    config = scale.evaluation_config()
    work = [(setup, config, design, scale.seed + index, scale.seed)
            for index, design in enumerate(pool.surviving_prechecks())]
    return scale.scheduler().map_items(_corpus_sample, work)
