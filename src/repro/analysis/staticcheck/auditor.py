"""The design auditor: static analysis of generated code blocks.

:func:`audit_design` parses one ``state_func``/``build_network`` code block
and runs every rule family of :mod:`~repro.analysis.staticcheck.rules` over
it, attaching a lowerability prediction for network designs.  Nothing is
ever executed — the auditor's whole point is to reject sandbox escapes,
nondeterminism and contract violations *before* ``exec``.

:class:`DesignAuditor` packages that as a pre-check stage compatible with
:class:`~repro.core.filters.FilterPipeline` (``check(design)`` returning a
pass/fail plus reason) and emits telemetry:

* ``audit.pass`` / ``audit.reject`` / ``audit.warn`` counters, and
* one ``audit.rule.<family.rule>`` counter per distinct violated rule,

all no-ops when telemetry is disabled.

:func:`run_selfcheck_corpus` is the auditor's own regression harness (run
by ``repro lint --self`` and ``make lint``): it renders healthy and
defective design samples straight from the design-space grammar and
verifies the auditor accepts every healthy one and rejects every defect
with the expected rule family.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ...core import telemetry
from .findings import AuditFinding, AuditReport, Severity
from .lowerability import predict_lowerability
from .rules import CodeContext, run_all_rules

__all__ = ["audit_design", "DesignAuditor", "run_selfcheck_corpus",
           "EXPECTED_DEFECT_RULES"]

#: Rule families expected to fire for each design-space defect; the
#: self-check corpus (and the property tests) assert these mappings.
EXPECTED_DEFECT_RULES: Dict[Tuple[str, str], str] = {
    ("state", "syntax"): "syntax.error",
    ("state", "runtime"): "sandbox.undefined-name",
    ("state", "shape"): "contract.state-rank",
    ("state", "nan"): "numeric.non-finite",
    ("state", "raw_bitrate"): "normalization.raw-bitrate",
    ("state", "raw_sizes"): "normalization.raw-sizes",
    ("network", "syntax"): "syntax.error",
    ("network", "runtime"): "sandbox.unknown-nn-attribute",
    ("network", "shape"): "contract.returns-none",
    ("network", "nan"): "numeric.non-finite",
}


def audit_design(code: str, kind: str) -> AuditReport:
    """Statically audit one code block of ``kind`` ("state" or "network")."""
    report = AuditReport(kind=kind)
    if not code or not code.strip():
        report.findings.append(AuditFinding(
            rule="syntax.error", severity=Severity.ERROR,
            message="empty code block", line=1))
        return report
    try:
        tree = ast.parse(code)
    except SyntaxError as exc:
        report.findings.append(AuditFinding(
            rule="syntax.error", severity=Severity.ERROR,
            message=f"syntax error: {exc.msg}", line=exc.lineno or 1))
        return report
    except (ValueError, RecursionError) as exc:
        report.findings.append(AuditFinding(
            rule="syntax.error", severity=Severity.ERROR,
            message=f"unparseable code block: {exc}", line=1))
        return report

    context = CodeContext(tree, kind)
    report.findings.extend(run_all_rules(context))
    if kind == "network":
        report.lowerability = predict_lowerability(tree)
    return report


class DesignAuditor:
    """Audit stage for the filter pipeline, with telemetry counters."""

    def __init__(self, reject_on_warnings: bool = False) -> None:
        #: When True, WARNING findings also reject (off by default: the
        #: calibrated Table 2 accounting expects warnings to pass through).
        self.reject_on_warnings = reject_on_warnings

    # ------------------------------------------------------------------ #
    def audit(self, code: str, kind: str) -> AuditReport:
        """Audit and emit ``audit.*`` telemetry for one code block."""
        report = audit_design(code, kind)
        rejected = self._rejects(report)
        sink = telemetry.get_telemetry()
        if sink is not None:
            sink.counter("audit.reject" if rejected else "audit.pass",
                         attrs={"kind": kind})
            if report.warnings:
                sink.counter("audit.warn", len(report.warnings),
                             attrs={"kind": kind})
            for rule in sorted({f.rule for f in report.findings}):
                sink.counter(f"audit.rule.{rule}", attrs={"kind": kind})
        return report

    def _rejects(self, report: AuditReport) -> bool:
        if not report.passed:
            return True
        return bool(self.reject_on_warnings and report.warnings)

    # ------------------------------------------------------------------ #
    def check(self, design) -> Tuple[bool, AuditReport]:
        """Audit a :class:`~repro.core.design.Design`-shaped object."""
        kind = getattr(design.kind, "value", design.kind)
        report = self.audit(design.code, str(kind))
        return (not self._rejects(report)), report


# --------------------------------------------------------------------------- #
# Self-check corpus
# --------------------------------------------------------------------------- #
def run_selfcheck_corpus(samples_per_kind: int = 25,
                         seed: int = 7) -> Tuple[bool, List[str]]:
    """Exercise the auditor against the design-space grammar itself.

    Renders ``samples_per_kind`` healthy state and network designs (which
    must all pass with zero findings) plus every defect variant (which must
    each be rejected with the expected rule, per
    :data:`EXPECTED_DEFECT_RULES`).  Returns ``(ok, messages)`` where
    ``messages`` describes every deviation; used by ``repro lint --self``.
    """
    # Imported here: llm.design_space is a leaf module, but keeping the
    # auditor importable without it costs nothing.
    from ...llm.design_space import (NetworkDesignSpace, StateDesignSpace)

    messages: List[str] = []
    rng = np.random.default_rng(seed)
    spaces = {"state": StateDesignSpace(), "network": NetworkDesignSpace()}

    for kind, space in spaces.items():
        for index in range(samples_per_kind):
            sample = space.sample(rng)
            report = audit_design(sample.code, kind)
            if report.findings:
                messages.append(
                    f"healthy {kind} sample #{index} "
                    f"[{', '.join(sample.tags)}] was flagged: "
                    f"{', '.join(report.rule_ids())}")

    for (kind, defect), expected_rule in sorted(EXPECTED_DEFECT_RULES.items()):
        sample = spaces[kind].sample(rng, defect=defect)
        report = audit_design(sample.code, kind)
        if report.passed:
            messages.append(
                f"{kind} defect {defect!r} was not rejected "
                f"(expected rule {expected_rule})")
        elif not report.has_rule(expected_rule):
            messages.append(
                f"{kind} defect {defect!r} rejected, but without rule "
                f"{expected_rule} (got: {', '.join(report.rule_ids())})")
    return (not messages), messages
