"""Repo contract linter: enforce the invariants CI kept re-fixing by hand.

:func:`lint_repo` runs five checks over ``src/repro`` itself and returns
:class:`~repro.analysis.staticcheck.findings.AuditFinding`s (family
``repo``).  It is wired into ``repro lint --self`` and ``make lint`` as a
fail-the-build job.

``repo.rng-discipline``
    Library code must never draw from NumPy's hidden global stream
    (``np.random.rand(...)``, ``np.random.seed(...)``, ...).  Explicit
    generator construction (``np.random.default_rng``, ``Generator``
    annotations) is the sanctioned idiom.
``repo.store-key``
    The PR 4 bug class, made impossible to reintroduce silently: every
    module-level engine toggle (any ``global _X`` write anywhere in the
    tree) must either have its getter referenced by
    ``core/results.py``'s ``context_fingerprint`` or carry a documented
    exemption here; every ``NadaConfig`` field must be classified as key
    material or engine-only; the store's ``_NON_RESULT_FIELDS`` allowlist
    must name real ``EvaluationConfig`` fields.  Adding a field or toggle
    without updating the classification fails the build.
``repo.picklability``
    Everything submitted to :func:`~repro.core.parallel.parallel_map` /
    :func:`~repro.core.parallel.run_resilient` must survive pickling:
    no lambdas, no functions defined inside another function (PR 7's
    silent serial-downgrade came from exactly this).
``repo.telemetry-noop``
    The module-level telemetry helpers (``span``/``counter``/``series``)
    must not allocate on the disabled path: read ``_ACTIVE`` into a local,
    guard on ``None``, and keep every allocation inside the enabled branch.
``repo.fault-coverage``
    Every site in :data:`~repro.core.faults.FAULT_SITES` must be named by
    at least one test under ``tests/`` — an injection site no test fires is
    a recovery path that can rot silently, which defeats the point of
    deterministic chaos coverage.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .findings import AuditFinding, Severity

__all__ = ["lint_repo"]

#: ``np.random`` members that construct explicit generator/seed objects —
#: the sanctioned alternative to the hidden global stream.
_NP_RANDOM_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "PCG64", "MT19937", "Philox", "SFC64",
})

#: Engine toggles (module globals written via ``global``) that MUST be
#: referenced — via the named getter — in ``context_fingerprint``'s source,
#: because flipping them changes stored numeric results.
_TOGGLE_GETTERS: Dict[str, str] = {
    "_DEFAULT_DTYPE": "get_default_dtype",
    "_COMPILE_ENABLED": "compilation_enabled",
    "_NUMERICS": "get_numerics",
    "_FAST_INFERENCE": "fast_inference_enabled",
}

#: Engine toggles exempt from the fingerprint, each with the reason the
#: exemption is sound.  A new ``global _X`` write anywhere in the tree that
#: appears in neither map fails the lint.
_TOGGLE_EXEMPT: Dict[str, str] = {
    "_GRAD_ENABLED": "transient no_grad context, restored on exit; never "
                     "active across a stored training run boundary",
    "_ACTIVE": "telemetry sink; observability only, no numeric effect",
    "_PLAN": "fault-injection harness; causes retries/reschedules but "
             "never alters a successfully stored result payload",
}

#: NadaConfig fields that are store-key material (hashed, directly or via
#: derived inputs, into the context/design fingerprint or the record key).
_NADA_KEY_FIELDS: Dict[str, str] = {
    "target": "selects the trace environment whose traces are hashed into "
              "the context fingerprint",
    "evaluation": "EvaluationConfig, serialized wholesale into the context "
                  "fingerprint (minus _NON_RESULT_FIELDS)",
    "seed": "campaign seed; the per-record training seed derives from it",
}

#: NadaConfig fields that are engine-/campaign-level only: they decide what
#: gets generated, scheduled or observed, never the numeric payload of a
#: stored per-seed training run.
_NADA_ENGINE_FIELDS: Dict[str, str] = {
    "num_designs": "how many designs are drawn; each design is keyed by its "
                   "own code fingerprint",
    "llm": "which model profile generates code; the code itself is the key",
    "prompt": "prompting strategy; only shapes which code gets generated",
    "use_early_stopping": "early-stopped jobs bypass the store entirely",
    "early_stopping": "early-stopped jobs bypass the store entirely",
    "bootstrap_fraction": "scheduling split for the early-stopping "
                          "bootstrap phase",
    "min_bootstrap_designs": "scheduling split for the bootstrap phase",
    "workers": "parallelism; outputs are pinned engine-independent",
    "max_retries": "fault-tolerance policy; successful payloads identical",
    "job_timeout": "fault-tolerance policy; successful payloads identical",
    "store_dir": "where records live, not what they contain",
    "telemetry_dir": "observability only",
}

#: Telemetry helpers whose disabled path must be allocation-free.
_NOOP_HELPERS = ("span", "counter", "series")


def _repo_source_root() -> Path:
    return Path(__file__).resolve().parents[2]


def _python_files(root: Path) -> List[Path]:
    return sorted(p for p in root.rglob("*.py"))


def _parse(path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:
        return None


def _finding(rule: str, message: str, path: Path, root: Path,
             node: Optional[ast.AST] = None,
             severity: Severity = Severity.ERROR) -> AuditFinding:
    return AuditFinding(
        rule=rule, severity=severity, message=message,
        line=getattr(node, "lineno", 0) if node is not None else 0,
        file=str(path.relative_to(root.parent)))


# --------------------------------------------------------------------------- #
# repo.rng-discipline
# --------------------------------------------------------------------------- #
def _numpy_aliases(tree: ast.Module) -> Set[str]:
    names = {"np", "numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    names.add(alias.asname or "numpy")
    return names


def _check_rng_discipline(path: Path, tree: ast.Module,
                          root: Path) -> List[AuditFinding]:
    findings = []
    numpy_names = _numpy_aliases(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in numpy_names):
            continue
        member = func.attr
        if member == "seed":
            findings.append(_finding(
                "repo.rng-discipline",
                "np.random.seed mutates the hidden global stream shared by "
                "every caller; thread an explicit np.random.Generator",
                path, root, node))
        elif member not in _NP_RANDOM_CONSTRUCTORS:
            findings.append(_finding(
                "repo.rng-discipline",
                f"bare np.random.{member}(...) draws from the hidden global "
                "stream; use an explicitly constructed Generator",
                path, root, node))
    return findings


# --------------------------------------------------------------------------- #
# repo.store-key
# --------------------------------------------------------------------------- #
def _written_globals(tree: ast.Module) -> Iterable[Tuple[str, ast.Global]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            for name in node.names:
                yield name, node


def _check_store_keys(root: Path,
                      trees: Dict[Path, ast.Module]) -> List[AuditFinding]:
    findings: List[AuditFinding] = []

    # 1. Engine toggles: every `global _X` write must be classified, and
    #    fingerprint-relevant toggles must actually appear in the
    #    context_fingerprint source.
    results_path = root / "core" / "results.py"
    fingerprint_source = ""
    results_tree = trees.get(results_path)
    if results_tree is not None:
        for node in results_tree.body:
            if (isinstance(node, ast.FunctionDef)
                    and node.name == "context_fingerprint"):
                fingerprint_source = ast.unparse(node)
    if not fingerprint_source:
        findings.append(_finding(
            "repo.store-key",
            "core/results.py no longer defines context_fingerprint; the "
            "store-key completeness check cannot run", results_path, root))

    seen_toggles: Set[str] = set()
    for path, tree in trees.items():
        for name, node in _written_globals(tree):
            if not name.startswith("_"):
                continue
            seen_toggles.add(name)
            if name in _TOGGLE_EXEMPT:
                continue
            getter = _TOGGLE_GETTERS.get(name)
            if getter is None:
                findings.append(_finding(
                    "repo.store-key",
                    f"module global {name!r} is written via `global` but is "
                    "neither fingerprinted (_TOGGLE_GETTERS) nor exempted "
                    "(_TOGGLE_EXEMPT) in staticcheck/contracts.py — "
                    "classify it", path, root, node))
            elif fingerprint_source and getter not in fingerprint_source:
                findings.append(_finding(
                    "repo.store-key",
                    f"engine toggle {name!r} must be keyed: "
                    f"context_fingerprint does not reference {getter}()",
                    path, root, node))
    for name in (set(_TOGGLE_GETTERS) | set(_TOGGLE_EXEMPT)) - seen_toggles:
        findings.append(_finding(
            "repo.store-key",
            f"stale toggle classification: {name!r} is no longer written "
            "anywhere; remove it from staticcheck/contracts.py",
            root / "analysis" / "staticcheck" / "contracts.py", root,
            severity=Severity.WARNING))

    # 2. Config field classification (imports are safe here: core never
    #    imports analysis at module level).
    from ...core.evaluation import EvaluationConfig
    from ...core.pipeline import NadaConfig
    from ...core.results import _NON_RESULT_FIELDS

    evaluation_fields = {f.name for f in dataclasses.fields(EvaluationConfig)}
    for name in sorted(set(_NON_RESULT_FIELDS) - evaluation_fields):
        findings.append(_finding(
            "repo.store-key",
            f"_NON_RESULT_FIELDS names {name!r}, which is not an "
            "EvaluationConfig field; the allowlist is stale",
            results_path, root))

    nada_fields = {f.name for f in dataclasses.fields(NadaConfig)}
    classified = set(_NADA_KEY_FIELDS) | set(_NADA_ENGINE_FIELDS)
    pipeline_path = root / "core" / "pipeline.py"
    for name in sorted(nada_fields - classified):
        findings.append(_finding(
            "repo.store-key",
            f"NadaConfig.{name} is not classified as key material or "
            "engine-only in staticcheck/contracts.py — decide and document "
            "before shipping (this is how the fast-inference key field went "
            "missing)", pipeline_path, root))
    for name in sorted(classified - nada_fields):
        findings.append(_finding(
            "repo.store-key",
            f"stale NadaConfig classification for {name!r}; the field no "
            "longer exists",
            root / "analysis" / "staticcheck" / "contracts.py", root,
            severity=Severity.WARNING))
    overlap = set(_NADA_KEY_FIELDS) & set(_NADA_ENGINE_FIELDS)
    for name in sorted(overlap):
        findings.append(_finding(
            "repo.store-key",
            f"NadaConfig.{name} is classified as both key material and "
            "engine-only", pipeline_path, root))
    return findings


# --------------------------------------------------------------------------- #
# repo.picklability
# --------------------------------------------------------------------------- #
_POOL_ENTRY_POINTS = ("parallel_map", "run_resilient")


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: Set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                visit(child, True)
            elif isinstance(child, ast.ClassDef):
                # Methods are attribute lookups at call sites, not bare
                # names; class bodies do not create closures over locals.
                visit(child, inside_function)
            else:
                visit(child, inside_function)

    visit(tree, False)
    return nested


def _check_picklability(path: Path, tree: ast.Module,
                        root: Path) -> List[AuditFinding]:
    if path.name == "parallel.py":
        # The pool implementation itself wraps callables locally before
        # hand-off; its own internals are exercised by the tier-1 tests.
        return []
    findings = []
    nested = _nested_function_names(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else ""
        if name not in _POOL_ENTRY_POINTS or not node.args:
            continue
        payload = node.args[0]
        if isinstance(payload, ast.Lambda):
            findings.append(_finding(
                "repo.picklability",
                f"lambda submitted to {name}(); lambdas cannot cross the "
                "process-pool boundary — use a module-level function",
                path, root, node))
        elif isinstance(payload, ast.Name) and payload.id in nested:
            findings.append(_finding(
                "repo.picklability",
                f"locally defined function {payload.id!r} submitted to "
                f"{name}(); closures cannot cross the process-pool boundary",
                path, root, node))
    return findings


# --------------------------------------------------------------------------- #
# repo.telemetry-noop
# --------------------------------------------------------------------------- #
_ALLOCATING_NODES = (ast.Call, ast.Dict, ast.List, ast.Set, ast.Tuple,
                     ast.ListComp, ast.SetComp, ast.DictComp,
                     ast.GeneratorExp, ast.JoinedStr, ast.BinOp)


def _allocates(stmt: ast.stmt) -> bool:
    return any(isinstance(node, _ALLOCATING_NODES) for node in ast.walk(stmt))


def _is_none_guard(test: ast.expr, sink_names: Set[str]) -> Optional[bool]:
    """True for ``sink is None``, False for ``sink is not None``, else None."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.left, ast.Name)
            and test.left.id in sink_names
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        return None
    if isinstance(test.ops[0], ast.Is):
        return True
    if isinstance(test.ops[0], ast.IsNot):
        return False
    return None


def _noop_helper_problem(fn: ast.FunctionDef) -> Optional[str]:
    """Why ``fn``'s disabled path is not allocation-free, or None if clean."""
    sink_names: Set[str] = set()
    body = list(fn.body)
    if (body and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)):
        body = body[1:]  # docstring
    for stmt in body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Name)
                and stmt.value.id == "_ACTIVE"):
            sink_names.add(stmt.targets[0].id)
            continue
        if isinstance(stmt, ast.If):
            guard = _is_none_guard(stmt.test, sink_names)
            if guard is True:
                # `if sink is None:` — this branch IS the disabled path.
                if any(_allocates(s) for s in stmt.body):
                    return ("allocates inside the disabled (`sink is None`) "
                            "branch")
                if stmt.body and isinstance(stmt.body[-1], ast.Return) \
                        and not stmt.orelse:
                    return None  # rest of the body is the enabled path
                continue
            if guard is False:
                # `if sink is not None:` — body is the enabled path.
                if any(_allocates(s) for s in stmt.orelse):
                    return "allocates in the else of `sink is not None`"
                continue
            return "guard is not a `sink is (not) None` comparison"
        if _allocates(stmt):
            return (f"line {stmt.lineno}: allocation outside the "
                    "None-guarded enabled path")
    return None


def _check_telemetry_noop(root: Path,
                          trees: Dict[Path, ast.Module]) -> List[AuditFinding]:
    path = root / "core" / "telemetry.py"
    tree = trees.get(path)
    if tree is None:
        return [AuditFinding(
            rule="repo.telemetry-noop", severity=Severity.ERROR,
            message="core/telemetry.py is missing or unparseable",
            file="repro/core/telemetry.py")]
    findings = []
    helpers = {node.name: node for node in tree.body
               if isinstance(node, ast.FunctionDef)}
    for name in _NOOP_HELPERS:
        fn = helpers.get(name)
        if fn is None:
            findings.append(_finding(
                "repo.telemetry-noop",
                f"module-level telemetry helper {name}() disappeared; "
                "instrumentation sites depend on it", path, root))
            continue
        problem = _noop_helper_problem(fn)
        if problem:
            findings.append(_finding(
                "repo.telemetry-noop",
                f"{name}() violates the no-op discipline: {problem}",
                path, root, fn))
    return findings


# --------------------------------------------------------------------------- #
# repo.fault-coverage
# --------------------------------------------------------------------------- #
def _check_fault_coverage(root: Path,
                          sites: Optional[frozenset] = None
                          ) -> List[AuditFinding]:
    """Every fault site must be named by at least one test file.

    A literal-substring scan over ``tests/*.py`` is deliberately simple:
    fault sites are dotted string constants, so a test that fires one
    necessarily spells it out (in a ``FaultRule``, a ``--faults`` spec or a
    ``from_spec`` string).  ``sites`` overrides :data:`FAULT_SITES` for the
    linter's own tests.
    """
    if sites is None:
        from ...core.faults import FAULT_SITES
        sites = FAULT_SITES
    try:
        tests_dir = root.parents[1] / "tests"
    except IndexError:
        return []
    if not tests_dir.is_dir():
        # Linting a synthetic source tree (the linter's own tests do this):
        # there is no test corpus to check against.
        return []
    corpus = "\n".join(p.read_text(encoding="utf-8", errors="replace")
                       for p in sorted(tests_dir.glob("*.py")))
    findings = []
    faults_path = root / "core" / "faults.py"
    for site in sorted(sites):
        if site not in corpus:
            findings.append(_finding(
                "repo.fault-coverage",
                f"fault site {site!r} is declared in FAULT_SITES but no "
                "test under tests/ names it — add a firing test so the "
                "recovery path cannot rot silently", faults_path, root))
    return findings


# --------------------------------------------------------------------------- #
def lint_repo(src_root: Optional[str] = None) -> List[AuditFinding]:
    """Lint the repository's own library code; returns all findings."""
    root = Path(src_root) if src_root else _repo_source_root()
    trees: Dict[Path, ast.Module] = {}
    findings: List[AuditFinding] = []
    for path in _python_files(root):
        tree = _parse(path)
        if tree is None:
            findings.append(_finding(
                "repo.syntax", f"{path.name} does not parse", path, root))
            continue
        trees[path] = tree

    for path, tree in sorted(trees.items()):
        findings.extend(_check_rng_discipline(path, tree, root))
        findings.extend(_check_picklability(path, tree, root))
    findings.extend(_check_store_keys(root, trees))
    findings.extend(_check_telemetry_noop(root, trees))
    findings.extend(_check_fault_coverage(root))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings
