"""Finding and report types shared by the design auditor and contract linter.

A finding names the violated rule (``family.rule`` id), where it was found
(line, optionally file for repo lint findings), how bad it is and what to do
about it.  Severity policy: ``ERROR`` findings reject a design (or fail
``repro lint``); ``WARNING`` findings are recorded on the design and counted
in telemetry but never reject; ``INFO`` is purely advisory.

Rule families group related rules: ``sandbox`` (escape/containment),
``determinism`` (reproducibility), ``resource`` (boundedness), ``purity``
(input mutation), ``normalization`` (feature scaling), ``numeric``
(non-finite constants), ``contract`` (the state/network code-block
contracts), ``syntax`` (unparseable code) and ``repo`` (contract-linter
rules over the repository itself).

For Table 2 accounting the families collapse onto the paper's two pre-check
buckets via :func:`rejection_bucket`: ``normalization``-family rejections
count as *compilable but badly normalized* (the paper's normalization
check), every other rejecting family as *not compilable* — so a campaign
whose audit stage rejects a design statically reports the same
``compilable``/``well normalized`` fractions the dynamic checks would have.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Severity", "AuditFinding", "AuditReport", "rejection_bucket"]


class Severity(str, enum.Enum):
    """How serious a finding is (ERROR rejects, WARNING/INFO only record)."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


#: Families whose rejections land in the paper's normalization bucket; all
#: other rejecting families count against the compilation bucket.
_NORMALIZATION_FAMILIES = frozenset({"normalization"})


def rejection_bucket(rule: str) -> str:
    """Map a rule id onto the Table 2 pre-check bucket it rejects under."""
    family = rule.split(".", 1)[0]
    return "normalization" if family in _NORMALIZATION_FAMILIES \
        else "compilation"


@dataclass(frozen=True)
class AuditFinding:
    """One rule violation at one location."""

    rule: str
    severity: Severity
    message: str
    line: int = 0
    #: Source file (repo contract findings only; empty for design audits).
    file: str = ""

    @property
    def family(self) -> str:
        return self.rule.split(".", 1)[0]

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "line": self.line,
        }
        if self.file:
            record["file"] = self.file
        return record

    def render(self) -> str:
        location = f"{self.file}:{self.line}" if self.file else f"line {self.line}"
        return f"[{self.severity.value}] {self.rule} ({location}): {self.message}"


@dataclass
class AuditReport:
    """Everything the auditor decided about one code block."""

    #: "state" or "network".
    kind: str
    findings: List[AuditFinding] = field(default_factory=list)
    #: Lowerability prediction (network designs only; None otherwise).
    lowerability: Optional[object] = None

    # ------------------------------------------------------------------ #
    @property
    def errors(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def passed(self) -> bool:
        """True when nothing rejects (warnings/infos may still be present)."""
        return not self.errors

    @property
    def rejection_bucket(self) -> Optional[str]:
        """The Table 2 bucket this report rejects under, or None if clean.

        A report violating both buckets counts against ``compilation`` —
        mirroring the dynamic pipeline, where the compilation check runs
        first and a design never reaches the normalization check.
        """
        buckets = {rejection_bucket(f.rule) for f in self.errors}
        if not buckets:
            return None
        return "compilation" if "compilation" in buckets else "normalization"

    def rule_ids(self) -> Tuple[str, ...]:
        return tuple(f.rule for f in self.findings)

    def has_rule(self, rule: str) -> bool:
        return any(f.rule == rule for f in self.findings)

    def summary(self) -> str:
        if self.passed and not self.warnings:
            return f"{self.kind} design: clean"
        parts = [f"{self.kind} design: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        parts.extend("  " + f.render() for f in self.findings)
        return "\n".join(parts)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "kind": self.kind,
            "passed": self.passed,
            "findings": [f.to_dict() for f in self.findings],
        }
        if self.lowerability is not None:
            record["lowerability"] = self.lowerability.to_dict()
        return record
