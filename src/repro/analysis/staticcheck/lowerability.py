"""Static lowerability prediction for generated ``build_network`` blocks.

:func:`repro.nn.compile.plan_for` decides at *training time* whether a
network lowers onto the fused kernels; until then nobody knows whether a
generated design will train on the fast engines or silently fall back to
the (much slower) autograd graph path.  This module makes that call
statically, from the code block's AST, so the precheck stage can annotate
every accepted network design with a verdict and a reason before any
training happens.

Verdicts (:class:`LoweringPrediction`):

``compiled``
    A design-space :class:`~repro.abr.networks.GenericActorCritic` whose
    encoder and activation are both inside the fused-kernel vocabulary —
    :func:`~repro.nn.compile.plan_for` will return a plan.
``hand_fused``
    A :class:`~repro.abr.networks.PensieveNetwork`; ``plan_for`` returns
    ``None`` for it, but it is served by the dedicated hand-fused Pensieve
    engine, not by the slow graph path.
``graph_fallback``
    Provably not lowerable (e.g. an activation like ``"softmax"`` that the
    layer registry accepts but the fused kernels do not implement, or a
    local subclass that may override ``forward``/``_encode``).
``unknown``
    The block is too dynamic to classify (non-literal arguments, returns of
    locally computed values).

The prediction deliberately mirrors ``plan_for``'s published contract
rather than re-implementing its internals: encoders come from
:data:`LOWERABLE_ENCODERS` (the ``GenericActorCritic`` constructor's
vocabulary, all of which lower) and activations from
:func:`repro.nn.compile.lowerable_activation_names`.  Flat state shapes
coerce any encoder to ``flatten`` at construction time; since ``flatten``
is itself lowerable, that coercion never changes a verdict.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional

from ...abr.networks import NETWORK_BUILDER_NAME
from ...nn.compile import lowerable_activation_names

__all__ = ["LOWERABLE_ENCODERS", "LoweringPrediction", "predict_lowerability"]

#: Encoder kinds the GenericActorCritic constructor accepts; every one of
#: them has a fused lowering in :mod:`repro.nn.compile`.
LOWERABLE_ENCODERS = ("flatten", "conv", "rnn", "gru", "lstm")

#: Default constructor arguments (mirrors ``GenericActorCritic.__init__``).
_DEFAULT_ACTIVATION = "relu"
_DEFAULT_ENCODER = "flatten"


@dataclass(frozen=True)
class LoweringPrediction:
    """Static verdict on how a network design will execute."""

    verdict: str  # "compiled" | "hand_fused" | "graph_fallback" | "unknown"
    reason: str
    activation: Optional[str] = None
    encoder: Optional[str] = None

    @property
    def fast(self) -> bool:
        """Whether the design avoids the slow graph path."""
        return self.verdict in ("compiled", "hand_fused")

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {"verdict": self.verdict,
                                     "reason": self.reason}
        if self.activation is not None:
            record["activation"] = self.activation
        if self.encoder is not None:
            record["encoder"] = self.encoder
        return record


def _keyword_literal(call: ast.Call, name: str) -> object:
    """The literal value of keyword ``name``, a marker if dynamic/absent."""
    for keyword in call.keywords:
        if keyword.arg == name:
            if isinstance(keyword.value, ast.Constant):
                return keyword.value.value
            return _DYNAMIC
    return _ABSENT


_ABSENT = object()
_DYNAMIC = object()


def _classify_call(call: ast.Call) -> LoweringPrediction:
    """Classify one ``return nn_library.X(...)`` construction."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
            and func.value.id == "nn_library"):
        return LoweringPrediction(
            "unknown", "returns something other than an nn_library "
            "construction; cannot classify statically")
    if func.attr == "PensieveNetwork":
        return LoweringPrediction(
            "hand_fused",
            "PensieveNetwork is served by the dedicated hand-fused engine "
            "(plan_for returns None for it by design)")
    if func.attr != "GenericActorCritic":
        return LoweringPrediction(
            "graph_fallback",
            f"nn_library.{func.attr} is not a lowerable design-space "
            "architecture")

    activation = _keyword_literal(call, "activation")
    encoder = _keyword_literal(call, "encoder")
    if activation is _ABSENT:
        activation = _DEFAULT_ACTIVATION
    if encoder is _ABSENT:
        encoder = _DEFAULT_ENCODER
    if activation is _DYNAMIC or encoder is _DYNAMIC:
        return LoweringPrediction(
            "unknown", "activation/encoder is not a literal; cannot "
            "classify statically")

    if activation is not None and (
            not isinstance(activation, str)
            or activation.lower() not in lowerable_activation_names()):
        return LoweringPrediction(
            "graph_fallback",
            f"activation {activation!r} has no fused kernel; plan_for will "
            "fall back to the autograd graph path",
            activation=str(activation), encoder=str(encoder))
    if not isinstance(encoder, str) or encoder not in LOWERABLE_ENCODERS:
        return LoweringPrediction(
            "graph_fallback",
            f"encoder {encoder!r} is outside the lowerable vocabulary "
            f"{LOWERABLE_ENCODERS}",
            activation=str(activation), encoder=str(encoder))
    return LoweringPrediction(
        "compiled",
        f"GenericActorCritic with encoder {encoder!r} and activation "
        f"{activation!r} lowers onto the fused kernels",
        activation=str(activation), encoder=encoder)


def predict_lowerability(tree: ast.Module) -> LoweringPrediction:
    """Predict how the ``build_network`` in ``tree`` will execute."""
    definitions = [node for node in tree.body
                   if isinstance(node, ast.FunctionDef)
                   and node.name == NETWORK_BUILDER_NAME]
    if not definitions:
        return LoweringPrediction(
            "unknown", f"no module-level {NETWORK_BUILDER_NAME} definition")
    # The last definition wins at exec time, exactly like the sandbox.
    definition = definitions[-1]

    # Local subclasses can override forward/_encode, which plan_for refuses.
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                base_name = base.attr if isinstance(base, ast.Attribute) \
                    else getattr(base, "id", "")
                if base_name in ("GenericActorCritic", "PensieveNetwork",
                                 "ActorCriticNetwork"):
                    return LoweringPrediction(
                        "graph_fallback",
                        f"local subclass {node.name!r} may override "
                        "forward/_encode; the planner cannot prove kernel "
                        "equivalence")

    predictions: List[LoweringPrediction] = []
    for node in ast.walk(definition):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        if isinstance(node.value, ast.Call):
            predictions.append(_classify_call(node.value))
        elif not (isinstance(node.value, ast.Constant)
                  and node.value.value is None):
            predictions.append(LoweringPrediction(
                "unknown", "returns a locally computed value; cannot "
                "classify statically"))
    if not predictions:
        return LoweringPrediction(
            "unknown", f"{NETWORK_BUILDER_NAME} has no value-returning "
            "return statement")
    verdicts = {p.verdict for p in predictions}
    if len(verdicts) > 1:
        return LoweringPrediction(
            "unknown", "different return paths construct different "
            "architectures")
    return predictions[0]
