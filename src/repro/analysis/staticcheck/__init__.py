"""Static design auditor and repo contract linters.

This package analyzes *code as text* — before anything is executed:

* :mod:`~repro.analysis.staticcheck.auditor` — the **design auditor**, an
  AST-walking analyzer for LLM-generated ``state_func``/``build_network``
  code blocks.  It statically rejects sandbox escapes (disallowed imports,
  dunder attribute chains, dynamic ``getattr``), nondeterminism (module-level
  ``np.random`` calls that would break the content-addressed result store),
  unbounded loops, input mutation, unnormalized features and broken
  contracts, and predicts whether a network design will lower onto the fused
  kernels of :mod:`repro.nn.compile` or fall back to the autograd graph path.
* :mod:`~repro.analysis.staticcheck.contracts` — the **repo contract
  linter**, which runs over ``src/repro`` itself and enforces the invariants
  CI used to re-fix by hand: RNG discipline in library code, store-key
  completeness of every config field and engine toggle, picklability of
  everything submitted to the process pool, and allocation-free disabled
  paths in the telemetry helpers.

Entry points: ``repro lint --designs DIR`` audits generated code on disk,
``repro lint --self`` runs the contract linter plus the auditor's self-test
corpus (wired into CI via ``make lint``), and
:class:`~repro.core.filters.FilterPipeline` runs the auditor as the first
pre-check stage of every campaign.
"""

from .auditor import DesignAuditor, audit_design, run_selfcheck_corpus
from .contracts import lint_repo
from .findings import (AuditFinding, AuditReport, Severity,
                       rejection_bucket)
from .lowerability import (LOWERABLE_ENCODERS, LoweringPrediction,
                           predict_lowerability)

__all__ = [
    "AuditFinding",
    "AuditReport",
    "Severity",
    "rejection_bucket",
    "DesignAuditor",
    "audit_design",
    "run_selfcheck_corpus",
    "LoweringPrediction",
    "predict_lowerability",
    "LOWERABLE_ENCODERS",
    "lint_repo",
]
