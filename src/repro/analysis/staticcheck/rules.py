"""AST rule implementations behind the design auditor.

Each ``check_*`` function walks a parsed code block and returns
:class:`~repro.analysis.staticcheck.findings.AuditFinding`s.  The functions
share a :class:`CodeContext` that pre-computes name bindings and import
aliases once per block, so individual rules stay small and, importantly,
conservative: a rule only fires on patterns it can *prove* from the text
(bare aliases, literal attribute names, constant loop conditions), never on
heuristics that could reject healthy designs.

Rule families implemented here:

``sandbox``
    Escape and containment: disallowed imports, dunder/underscore attribute
    access (``().__class__`` needs no ``getattr`` so only static analysis
    can stop it), dynamic ``getattr``/``setattr`` names, 3-argument
    ``type``, ``global``/``nonlocal``, denied builtins, names that resolve
    to nothing in the sandbox namespace, and — for network code — attributes
    the ``nn_library`` facade does not expose.
``determinism``
    Module-level ``np.random`` draws and unseeded generator construction,
    which would silently break the content-addressed result store's
    bit-exactness contract; stdlib ``random`` use is a warning because the
    sandbox injects a seeded stand-in (see :mod:`repro.core.codegen`).
``resource``
    ``while True`` without a reachable exit and unbounded
    ``itertools.count/cycle/repeat`` consumed by loops, comprehensions or
    collection constructors.
``purity``
    Mutation of the input history arrays (subscript stores, augmented
    assignment, in-place ndarray methods, ``out=`` aliasing) through any
    assignment-chain alias, including ``np.asarray`` views.
``normalization``
    Raw (undivided) bitrate/chunk-size rows — statically visible instances
    of the defects the paper's fuzzing normalization check targets.
``numeric``
    Non-finite literals (``float('nan')``, ``np.inf``, ``math.nan``) that
    the :class:`~repro.abr.state.StateFunction` wrapper would reject at
    run time.
``contract``
    The code-block contract: expected function present exactly once, not
    returning ``None``, state rank ≤ 2, plausible signature.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ...abr.networks import NETWORK_BUILDER_NAME
from ...abr.state import STATE_FUNCTION_NAME, STATE_FUNCTION_PARAMETERS
from ...core.codegen import (ALLOWED_IMPORT_ROOTS, NETWORK_GLOBAL_NAMES,
                             NN_LIBRARY_ATTRIBUTES, SAFE_BUILTIN_NAMES,
                             SANDBOX_GLOBAL_NAMES)
from .findings import AuditFinding, Severity

__all__ = ["CodeContext", "run_all_rules", "NETWORK_BUILDER_PARAMETERS"]

#: Parameters of the network-builder contract.
NETWORK_BUILDER_PARAMETERS = ("state_shape", "num_actions", "rng")

#: Builtins that are absent from the sandbox and whose presence signals an
#: escape or introspection attempt rather than an honest undefined name.
_DENIED_BUILTINS = frozenset({
    "eval", "exec", "compile", "__import__", "globals", "locals", "vars",
    "open", "input", "breakpoint", "exit", "quit", "help", "dir", "id",
    "memoryview", "delattr", "__build_class__",
})

#: Builtins whose attribute-name argument must be a literal, safe string.
_DYNAMIC_ATTR_BUILTINS = frozenset({"getattr", "setattr", "hasattr", "delattr"})

#: ndarray methods that mutate the array in place.
_MUTATING_ARRAY_METHODS = frozenset({
    "fill", "sort", "partition", "put", "resize", "itemset", "setfield",
    "byteswap", "setflags",
})

#: numpy module-level functions whose *first argument* is written in place.
_MUTATING_NUMPY_FUNCTIONS = frozenset({"copyto", "put", "place", "putmask"})

#: ``np.random`` members that construct generators rather than draw from the
#: hidden global stream (seeded construction is fine; unseeded is flagged).
_NP_RANDOM_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "PCG64", "MT19937", "Philox", "SFC64",
})

#: numpy attributes that evaluate to non-finite floats.
_NUMPY_NONFINITE_ATTRS = frozenset({
    "nan", "NaN", "NAN", "inf", "Inf", "Infinity", "infty", "NINF", "PINF",
})

#: Collection constructors that eagerly drain their (possibly infinite)
#: iterable argument.
_EAGER_CONSUMERS = frozenset({"list", "tuple", "set", "dict", "sorted",
                              "sum", "max", "min"})

#: The input parameters the normalization rules watch, with the rule that
#: fires when a bare (undivided) alias of them becomes a state row.
_RAW_FEATURE_RULES = {
    "bitrate_kbps_history": ("normalization.raw-bitrate",
                             "bitrates are in kbps (thousands); divide by the "
                             "ladder top before using them as a feature"),
    "next_chunk_sizes_bytes": ("normalization.raw-sizes",
                               "chunk sizes are in bytes (millions); divide "
                               "by 1e6 before using them as a feature"),
}


class CodeContext:
    """Pre-computed bindings and aliases for one parsed code block."""

    def __init__(self, tree: ast.Module, kind: str) -> None:
        if kind not in ("state", "network"):
            raise ValueError(f"unknown design kind {kind!r}")
        self.tree = tree
        self.kind = kind
        self.expected_name = (STATE_FUNCTION_NAME if kind == "state"
                              else NETWORK_BUILDER_NAME)
        self.parameters = (STATE_FUNCTION_PARAMETERS if kind == "state"
                           else NETWORK_BUILDER_PARAMETERS)
        self.sandbox_names: Set[str] = set(SANDBOX_GLOBAL_NAMES)
        if kind == "network":
            self.sandbox_names.update(NETWORK_GLOBAL_NAMES)
        #: Names statically bound anywhere in the block (over-approximate).
        self.defined: Set[str] = set()
        #: Names referring to the numpy module (``np``/``numpy``/aliases).
        self.numpy_names: Set[str] = {"np", "numpy"}
        #: Names referring to the ``numpy.random`` module itself.
        self.numpy_random_names: Set[str] = set()
        #: Names imported *from* ``numpy.random`` (direct draw functions).
        self.numpy_random_members: Set[str] = set()
        #: Names referring to the stdlib ``random`` module.
        self.random_names: Set[str] = set()
        #: Names imported *from* ``random``.
        self.random_members: Set[str] = set()
        #: Names referring to the ``itertools`` module.
        self.itertools_names: Set[str] = set()
        #: Local name -> itertools member for unbounded iterator factories.
        self.itertools_unbounded: Dict[str, str] = {}
        self._collect_bindings()
        #: Parameter name -> set of local aliases (the parameter itself plus
        #: everything assigned from it, directly or through ``np.asarray``).
        self.input_aliases: Dict[str, Set[str]] = self._collect_input_aliases()

    # ------------------------------------------------------------------ #
    def _collect_bindings(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.defined.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                self.defined.add(node.name)
            elif isinstance(node, ast.arg):
                self.defined.add(node.arg)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self.defined.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self._record_import(alias)
            elif isinstance(node, ast.ImportFrom):
                self._record_import_from(node)

    def _record_import(self, alias: ast.alias) -> None:
        root = alias.name.split(".")[0]
        binding = alias.asname or root
        self.defined.add(binding)
        if root == "numpy":
            if alias.asname and alias.name.startswith("numpy.random"):
                self.numpy_random_names.add(binding)
            else:
                self.numpy_names.add(binding)
        elif alias.name == "random":
            self.random_names.add(binding)
        elif alias.name == "itertools":
            self.itertools_names.add(binding)

    def _record_import_from(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            binding = alias.asname or alias.name
            self.defined.add(binding)
            if module == "numpy" and alias.name == "random":
                self.numpy_random_names.add(binding)
            elif module.startswith("numpy.random"):
                self.numpy_random_members.add(binding)
            elif module == "random":
                self.random_members.add(binding)
            elif module == "itertools":
                if alias.name in ("count", "cycle", "repeat"):
                    self.itertools_unbounded[binding] = alias.name
                self.itertools_names.discard(binding)

    # ------------------------------------------------------------------ #
    def _collect_input_aliases(self) -> Dict[str, Set[str]]:
        aliases: Dict[str, Set[str]] = {p: {p} for p in self.parameters}
        reverse: Dict[str, str] = {p: p for p in self.parameters}

        def source_param(expr: ast.expr) -> Optional[str]:
            """The input parameter ``expr`` aliases, if provable."""
            if isinstance(expr, ast.Name):
                return reverse.get(expr.id)
            if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
                # np.asarray(x, ...) and friends return x itself when the
                # dtype already matches — treat the result as an alias.
                base = expr.func.value
                if (isinstance(base, ast.Name) and base.id in self.numpy_names
                        and expr.func.attr in ("asarray", "asanyarray",
                                               "ascontiguousarray", "asfarray",
                                               "atleast_1d", "atleast_2d")
                        and expr.args):
                    return source_param(expr.args[0])
            return None

        # Two passes reach aliases-of-aliases in either source order.
        for _ in range(2):
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.Assign):
                    continue
                param = source_param(node.value)
                if param is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases[param].add(target.id)
                        reverse[target.id] = param
        return aliases

    # ------------------------------------------------------------------ #
    def alias_of(self, expr: ast.expr) -> Optional[str]:
        """The input parameter a bare ``Name`` expression aliases, if any."""
        if isinstance(expr, ast.Name):
            for param, names in self.input_aliases.items():
                if expr.id in names:
                    return param
        return None

    def is_numpy_random(self, expr: ast.expr) -> bool:
        """Whether ``expr`` refers to the ``numpy.random`` module."""
        if isinstance(expr, ast.Name):
            return expr.id in self.numpy_random_names
        return (isinstance(expr, ast.Attribute) and expr.attr == "random"
                and isinstance(expr.value, ast.Name)
                and expr.value.id in self.numpy_names)


def _finding(rule: str, severity: Severity, message: str,
             node: ast.AST) -> AuditFinding:
    return AuditFinding(rule=rule, severity=severity, message=message,
                        line=getattr(node, "lineno", 0))


# --------------------------------------------------------------------------- #
# sandbox family
# --------------------------------------------------------------------------- #
def check_imports(ctx: CodeContext) -> List[AuditFinding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root not in ALLOWED_IMPORT_ROOTS:
                    findings.append(_finding(
                        "sandbox.disallowed-import", Severity.ERROR,
                        f"import of {alias.name!r} is not allowed "
                        f"(allowed roots: {sorted(ALLOWED_IMPORT_ROOTS)})",
                        node))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                findings.append(_finding(
                    "sandbox.relative-import", Severity.ERROR,
                    "relative imports are not allowed in generated code",
                    node))
                continue
            root = (node.module or "").split(".")[0]
            if root not in ALLOWED_IMPORT_ROOTS:
                findings.append(_finding(
                    "sandbox.disallowed-import", Severity.ERROR,
                    f"import from {node.module!r} is not allowed "
                    f"(allowed roots: {sorted(ALLOWED_IMPORT_ROOTS)})",
                    node))
    return findings


def check_attribute_access(ctx: CodeContext) -> List[AuditFinding]:
    """Dunder/underscore attributes — the ``().__class__`` escape family."""
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute):
            continue
        if node.attr.startswith("__"):
            findings.append(_finding(
                "sandbox.dunder-attribute", Severity.ERROR,
                f"dunder attribute access ({node.attr!r}) can escape the "
                "sandbox and is rejected statically", node))
        elif node.attr.startswith("_"):
            findings.append(_finding(
                "sandbox.private-attribute", Severity.WARNING,
                f"access to private attribute {node.attr!r}", node))
    return findings


def check_dynamic_attributes(ctx: CodeContext) -> List[AuditFinding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in _DYNAMIC_ATTR_BUILTINS):
            continue
        if len(node.args) < 2:
            continue
        name_arg = node.args[1]
        if not (isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)):
            findings.append(_finding(
                "sandbox.dynamic-attribute", Severity.ERROR,
                f"{node.func.id} with a non-literal attribute name cannot be "
                "audited and is rejected", node))
        elif name_arg.value.startswith("_"):
            findings.append(_finding(
                "sandbox.dunder-attribute", Severity.ERROR,
                f"{node.func.id}({name_arg.value!r}) reaches an "
                "underscore-prefixed attribute", node))
    return findings


def check_denied_builtins(ctx: CodeContext) -> List[AuditFinding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                and node.id in _DENIED_BUILTINS
                and node.id not in ctx.defined):
            findings.append(_finding(
                "sandbox.denied-builtin", Severity.ERROR,
                f"{node.id!r} is not available in the sandbox", node))
        elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "type" and len(node.args) >= 3):
            findings.append(_finding(
                "sandbox.dynamic-type", Severity.ERROR,
                "three-argument type() creates classes dynamically and is "
                "rejected", node))
    return findings


def check_global_state(ctx: CodeContext) -> List[AuditFinding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            keyword = "global" if isinstance(node, ast.Global) else "nonlocal"
            findings.append(_finding(
                "sandbox.global-state", Severity.ERROR,
                f"{keyword} statements are not allowed in generated code",
                node))
    return findings


def check_undefined_names(ctx: CodeContext) -> List[AuditFinding]:
    """Names that resolve to nothing in the sandbox namespace.

    The binding set is over-approximate (any static binding anywhere in the
    block counts), so a finding here means the name cannot possibly resolve
    — the defect the synthetic LLM's ``runtime`` state designs exhibit.
    """
    allowed = (ctx.defined | ctx.sandbox_names | set(SAFE_BUILTIN_NAMES)
               | _DENIED_BUILTINS)
    findings = []
    seen: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                and node.id not in allowed and node.id not in seen):
            seen.add(node.id)
            findings.append(_finding(
                "sandbox.undefined-name", Severity.ERROR,
                f"name {node.id!r} is never assigned and does not exist in "
                "the sandbox namespace", node))
    return findings


def check_nn_library_attributes(ctx: CodeContext) -> List[AuditFinding]:
    if ctx.kind != "network":
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "nn_library"
                and node.attr not in NN_LIBRARY_ATTRIBUTES):
            findings.append(_finding(
                "sandbox.unknown-nn-attribute", Severity.ERROR,
                f"nn_library has no attribute {node.attr!r} "
                f"(available: {', '.join(NN_LIBRARY_ATTRIBUTES)})", node))
    return findings


# --------------------------------------------------------------------------- #
# determinism family
# --------------------------------------------------------------------------- #
def check_determinism(ctx: CodeContext) -> List[AuditFinding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and ctx.is_numpy_random(func.value):
            member = func.attr
            if member == "seed":
                findings.append(_finding(
                    "determinism.global-seed", Severity.ERROR,
                    "np.random.seed mutates hidden global RNG state shared "
                    "with the harness", node))
            elif member in _NP_RANDOM_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    findings.append(_finding(
                        "determinism.unseeded-numpy-random", Severity.ERROR,
                        f"np.random.{member}() without a seed draws entropy "
                        "from the OS and breaks result-store bit-exactness",
                        node))
            else:
                findings.append(_finding(
                    "determinism.unseeded-numpy-random", Severity.ERROR,
                    f"module-level np.random.{member}() uses the hidden "
                    "global stream; results would not be reproducible", node))
        elif isinstance(func, ast.Name) and func.id in ctx.numpy_random_members:
            findings.append(_finding(
                "determinism.unseeded-numpy-random", Severity.ERROR,
                f"{func.id}() imported from numpy.random draws from the "
                "hidden global stream", node))
        elif (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ctx.random_names):
            member = func.attr
            if member == "Random":
                if not node.args and not node.keywords:
                    findings.append(_finding(
                        "determinism.unseeded-random", Severity.WARNING,
                        "random.Random() without a seed; pass an explicit "
                        "seed", node))
            elif member != "seed":
                findings.append(_finding(
                    "determinism.module-random", Severity.WARNING,
                    f"module-level random.{member}(); deterministic here "
                    "only because the sandbox injects a seeded instance",
                    node))
        elif isinstance(func, ast.Name) and func.id in ctx.random_members:
            findings.append(_finding(
                "determinism.module-random", Severity.WARNING,
                f"{func.id}() imported from random draws from module-level "
                "state; prefer an explicit random.Random(seed)", node))
    return findings


# --------------------------------------------------------------------------- #
# resource family
# --------------------------------------------------------------------------- #
def _loop_exits(loop) -> bool:
    """Whether the loop body contains a reachable break/return/raise."""

    def scan(stmts: Sequence[ast.stmt], nested_loop: bool) -> bool:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Break) and not nested_loop:
                return True
            if isinstance(stmt, (ast.Return, ast.Raise)):
                return True
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                if scan(stmt.body, True) or scan(stmt.orelse, True):
                    return True
            elif isinstance(stmt, ast.If):
                if scan(stmt.body, nested_loop) or scan(stmt.orelse,
                                                        nested_loop):
                    return True
            elif isinstance(stmt, ast.Try):
                blocks = [stmt.body, stmt.orelse, stmt.finalbody]
                blocks.extend(handler.body for handler in stmt.handlers)
                if any(scan(block, nested_loop) for block in blocks):
                    return True
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                if scan(stmt.body, nested_loop):
                    return True
        return False

    return scan(loop.body, False)


def _unbounded_factory(ctx: CodeContext, expr: ast.expr) -> Optional[str]:
    """The itertools factory name if ``expr`` builds an infinite iterator."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    member: Optional[str] = None
    if (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
            and func.value.id in ctx.itertools_names):
        member = func.attr
    elif isinstance(func, ast.Name):
        member = ctx.itertools_unbounded.get(func.id)
    if member in ("count", "cycle"):
        return member
    if member == "repeat":
        bounded = (len(expr.args) >= 2
                   or any(kw.arg == "times" for kw in expr.keywords))
        if not bounded:
            return member
    return None


def check_resource_bounds(ctx: CodeContext) -> List[AuditFinding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.While):
            constant_true = (isinstance(node.test, ast.Constant)
                             and bool(node.test.value))
            if constant_true and not _loop_exits(node):
                findings.append(_finding(
                    "resource.unbounded-loop", Severity.ERROR,
                    "while loop with a constant-true condition and no "
                    "break/return/raise never terminates", node))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            member = _unbounded_factory(ctx, node.iter)
            if member and not _loop_exits(node):
                findings.append(_finding(
                    "resource.unbounded-iterator", Severity.ERROR,
                    f"for loop over itertools.{member}(...) has no exit",
                    node))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                member = _unbounded_factory(ctx, generator.iter)
                if member:
                    severity = (Severity.WARNING
                                if isinstance(node, ast.GeneratorExp)
                                else Severity.ERROR)
                    findings.append(_finding(
                        "resource.unbounded-iterator", severity,
                        f"comprehension over itertools.{member}(...) grows "
                        "without bound", node))
        elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in _EAGER_CONSUMERS):
            for arg in node.args:
                member = _unbounded_factory(ctx, arg)
                if member:
                    findings.append(_finding(
                        "resource.unbounded-iterator", Severity.ERROR,
                        f"{node.func.id}() drains the infinite iterator "
                        f"itertools.{member}(...)", node))
    return findings


# --------------------------------------------------------------------------- #
# purity family (state designs)
# --------------------------------------------------------------------------- #
def check_purity(ctx: CodeContext) -> List[AuditFinding]:
    if ctx.kind != "state":
        return []
    findings = []

    def mutation(node: ast.AST, param: str, how: str) -> AuditFinding:
        return _finding(
            "purity.input-mutation", Severity.ERROR,
            f"{how} mutates the input history array {param!r} "
            "(np.asarray returns a view; the simulator reuses these "
            "buffers across steps)", node)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    param = ctx.alias_of(target.value)
                    if param:
                        findings.append(mutation(node, param,
                                                 "subscript assignment"))
        elif isinstance(node, ast.AugAssign):
            target = node.target
            base = target.value if isinstance(target, ast.Subscript) else target
            param = ctx.alias_of(base)
            if param:
                findings.append(mutation(node, param, "augmented assignment"))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                param = ctx.alias_of(func.value)
                if param and func.attr in _MUTATING_ARRAY_METHODS:
                    findings.append(mutation(node, param,
                                             f".{func.attr}()"))
                if (isinstance(func.value, ast.Name)
                        and func.value.id in ctx.numpy_names
                        and func.attr in _MUTATING_NUMPY_FUNCTIONS
                        and node.args):
                    param = ctx.alias_of(node.args[0])
                    if param:
                        findings.append(mutation(node, param,
                                                 f"np.{func.attr}()"))
            for keyword in node.keywords:
                if keyword.arg == "out":
                    param = ctx.alias_of(keyword.value)
                    if param:
                        findings.append(mutation(node, param, "out= keyword"))
    return findings


# --------------------------------------------------------------------------- #
# normalization family (state designs)
# --------------------------------------------------------------------------- #
def _bare_alias(ctx: CodeContext, expr: ast.expr) -> Optional[str]:
    """The watched parameter when ``expr`` is an undivided alias of it."""
    target = expr
    if isinstance(target, ast.Subscript):
        target = target.value
    param = ctx.alias_of(target)
    if param in _RAW_FEATURE_RULES:
        return param
    return None


def check_normalization(ctx: CodeContext) -> List[AuditFinding]:
    if ctx.kind != "state":
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        candidates: List[ast.expr] = []
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append" and len(node.args) == 1):
            candidates.append(node.args[0])
        elif isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Subscript) for t in node.targets):
                candidates.append(node.value)
        for expr in candidates:
            param = _bare_alias(ctx, expr)
            if param:
                rule, hint = _RAW_FEATURE_RULES[param]
                findings.append(_finding(
                    rule, Severity.ERROR,
                    f"raw (undivided) {param} used as a state feature; "
                    f"{hint}", node))
    return findings


# --------------------------------------------------------------------------- #
# numeric family
# --------------------------------------------------------------------------- #
def _is_nonfinite_float_call(node: ast.Call) -> bool:
    if not (isinstance(node.func, ast.Name) and node.func.id == "float"
            and len(node.args) == 1):
        return False
    arg = node.args[0]
    if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
        return False
    text = arg.value.strip().lower().lstrip("+-")
    return text in ("nan", "inf", "infinity")


def check_nonfinite(ctx: CodeContext) -> List[AuditFinding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and _is_nonfinite_float_call(node):
            findings.append(_finding(
                "numeric.non-finite", Severity.ERROR,
                f"non-finite literal float({node.args[0].value!r}); the "
                "state validator rejects non-finite features at run time",
                node))
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            base = node.value
            if not isinstance(base, ast.Name):
                continue
            if ((base.id in ctx.numpy_names
                    and node.attr in _NUMPY_NONFINITE_ATTRS)
                    or (base.id == "math" and node.attr in ("nan", "inf"))):
                findings.append(_finding(
                    "numeric.non-finite", Severity.ERROR,
                    f"non-finite constant {base.id}.{node.attr}", node))
    return findings


# --------------------------------------------------------------------------- #
# contract family
# --------------------------------------------------------------------------- #
def check_contract(ctx: CodeContext) -> List[AuditFinding]:
    findings = []
    definitions = [node for node in ctx.tree.body
                   if isinstance(node, ast.FunctionDef)
                   and node.name == ctx.expected_name]
    if not definitions:
        findings.append(AuditFinding(
            rule="contract.missing-function", severity=Severity.ERROR,
            message=f"code block does not define {ctx.expected_name!r} at "
                    "module level", line=1))
        return findings
    if len(definitions) > 1:
        findings.append(_finding(
            "contract.redefinition", Severity.ERROR,
            f"{ctx.expected_name!r} is defined {len(definitions)} times; the "
            "last definition silently wins", definitions[-1]))

    last = definitions[-1]
    positional = len(last.args.args) + len(last.args.posonlyargs)
    if ctx.kind == "state" and positional != len(ctx.parameters):
        findings.append(_finding(
            "contract.signature", Severity.ERROR,
            f"{ctx.expected_name} takes {positional} positional parameters, "
            f"the contract has {len(ctx.parameters)}", last))
    elif ctx.kind == "network" and positional < 2:
        findings.append(_finding(
            "contract.signature", Severity.ERROR,
            f"{ctx.expected_name} must accept at least (state_shape, "
            "num_actions)", last))

    for definition in definitions:
        for node in ast.walk(definition):
            if isinstance(node, ast.Return):
                value = node.value
                if value is None or (isinstance(value, ast.Constant)
                                     and value.value is None):
                    findings.append(_finding(
                        "contract.returns-none", Severity.ERROR,
                        f"{ctx.expected_name} returns None on at least one "
                        "path", node))

    if ctx.kind == "state":
        findings.extend(_check_state_rank(ctx))
    return findings


def _check_state_rank(ctx: CodeContext) -> List[AuditFinding]:
    """Reshapes that provably push the state beyond 2 dimensions."""
    findings = []
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "reshape"):
            continue
        rank: Optional[int] = None
        if len(node.args) == 1 and isinstance(node.args[0], (ast.Tuple,
                                                             ast.List)):
            rank = len(node.args[0].elts)
        elif len(node.args) > 1:
            rank = len(node.args)
        if rank is not None and rank > 2:
            findings.append(_finding(
                "contract.state-rank", Severity.ERROR,
                f"reshape to {rank} dimensions; the state contract allows "
                "at most 2 (the StateFunction wrapper rejects higher ranks)",
                node))
    return findings


# --------------------------------------------------------------------------- #
#: All rule checks, in report order.
_ALL_CHECKS = (
    check_imports,
    check_attribute_access,
    check_dynamic_attributes,
    check_denied_builtins,
    check_global_state,
    check_undefined_names,
    check_nn_library_attributes,
    check_determinism,
    check_resource_bounds,
    check_purity,
    check_normalization,
    check_nonfinite,
    check_contract,
)


def run_all_rules(ctx: CodeContext) -> List[AuditFinding]:
    """Run every rule family over ``ctx`` and return the combined findings."""
    findings: List[AuditFinding] = []
    for check in _ALL_CHECKS:
        findings.extend(check(ctx))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings
