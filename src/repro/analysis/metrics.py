"""Metrics shared by the experiment drivers and benchmarks."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "smoothed_score",
    "median_of_seeds",
    "improvement_percent",
    "moving_average",
    "cumulative_best",
]


def smoothed_score(checkpoint_scores: Sequence[float], last_k: int = 10) -> float:
    """Average of the last ``last_k`` checkpoint scores (the §3.1 smoothing)."""
    scores = [float(s) for s in checkpoint_scores]
    if not scores:
        return float("-inf")
    if last_k < 1:
        raise ValueError("last_k must be at least 1")
    return float(np.mean(scores[-last_k:]))


def median_of_seeds(per_seed_scores: Sequence[float]) -> float:
    """Median of per-seed smoothed scores (the §3.1 aggregation)."""
    finite = [float(s) for s in per_seed_scores if np.isfinite(s)]
    if not finite:
        return float("-inf")
    return float(np.median(finite))


def improvement_percent(original: float, improved: float) -> Optional[float]:
    """Relative improvement in percent, e.g. 13.0 for a 13% gain.

    Matches the "Impr." columns of Tables 3-5: the improvement is measured
    relative to the magnitude of the original score (the paper's Starlink
    emulation row has a negative original score, which this handles).
    Returns ``None`` when the original score is too close to zero for a
    relative number to be meaningful.
    """
    if not np.isfinite(original) or not np.isfinite(improved):
        return None
    baseline = abs(original)
    if baseline < 1e-12:
        return None
    return float((improved - original) / baseline * 100.0)


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Simple trailing moving average (used to smooth training curves)."""
    if window < 1:
        raise ValueError("window must be at least 1")
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return array
    result = np.empty_like(array)
    for i in range(array.size):
        start = max(0, i - window + 1)
        result[i] = array[start:i + 1].mean()
    return result


def cumulative_best(values: Sequence[float]) -> np.ndarray:
    """Running maximum (used for best-so-far curves in ablations)."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return array
    return np.maximum.accumulate(array)
