"""Nada reproduction: designing network algorithms via large language models.

Top-level package; see the subpackages for the individual systems:

- :mod:`repro.core` — the Nada framework (generation, filtering, evaluation).
- :mod:`repro.llm` — LLM substrate (synthetic design generator, embeddings).
- :mod:`repro.nn` — NumPy autograd and neural-network layers.
- :mod:`repro.rl` — actor-critic training.
- :mod:`repro.abr` — adaptive-bitrate streaming substrate (Pensieve).
- :mod:`repro.emulation` — packet-level emulation substrate.
- :mod:`repro.traces` — network bandwidth traces.
- :mod:`repro.analysis` — metrics, tables and experiment drivers.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
