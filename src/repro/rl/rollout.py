"""Episode rollouts: run one streaming session and collect a trajectory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..abr.env import SessionResult, StreamingSession, SimulatorConfig
from ..abr.qoe import QoEMetric
from ..abr.video import Video
from ..traces.base import Trace
from .agent import ABRAgent

__all__ = ["Trajectory", "collect_episode", "discounted_returns"]


@dataclass
class Trajectory:
    """States, actions and rewards from one streaming episode."""

    states: List[np.ndarray] = field(default_factory=list)
    actions: List[int] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    session: Optional[SessionResult] = None

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def total_reward(self) -> float:
        return float(sum(self.rewards))

    @property
    def mean_reward(self) -> float:
        return self.total_reward / max(len(self.rewards), 1)

    def stacked_states(self) -> np.ndarray:
        """States stacked along a new leading batch axis."""
        return np.stack(self.states, axis=0)


def discounted_returns(rewards: List[float], gamma: float,
                       bootstrap_value: float = 0.0) -> np.ndarray:
    """Compute discounted returns ``G_t = r_t + gamma * G_{t+1}``, vectorized.

    The scan is expressed as a reversed cumulative sum of ``r_t / gamma^t``
    rescaled by ``gamma^t``.  Because ``gamma^-t`` overflows/underflows for
    long horizons, the episode is processed in blocks sized so the power ratio
    inside a block stays well conditioned; the running return carries the
    bootstrap across blocks exactly like the scalar recurrence.
    """
    rewards_array = np.asarray(rewards, dtype=np.float64)
    n = rewards_array.size
    returns = np.empty(n, dtype=np.float64)
    running = float(bootstrap_value)
    if n == 0:
        return returns
    if gamma == 0.0:
        return rewards_array.copy()
    if gamma == 1.0:
        returns[:] = np.cumsum(rewards_array[::-1])[::-1]
        returns += running
        return returns
    # Largest block for which gamma^block stays above ~1e-8 (so dividing by
    # the power vector loses at most ~8 of the 15 float64 digits).
    block = int(min(512.0, max(1.0, -8.0 / np.log10(abs(gamma)))))
    for end in range(n, 0, -block):
        start = max(0, end - block)
        segment = rewards_array[start:end]
        size = segment.size
        powers = gamma ** np.arange(size)
        tail = np.cumsum((segment * powers)[::-1])[::-1]
        returns[start:end] = tail / powers + running * gamma ** np.arange(size, 0, -1)
        running = float(returns[start])
    return returns


def collect_episode(agent: ABRAgent, video: Video, trace: Trace,
                    qoe: Optional[QoEMetric] = None,
                    config: Optional[SimulatorConfig] = None,
                    rng: Optional[np.random.Generator] = None,
                    greedy: bool = False,
                    start_offset_s: Optional[float] = None) -> Trajectory:
    """Stream ``video`` over ``trace`` with ``agent`` and record the trajectory.

    During training the episode starts at a random offset into the trace
    (passed via ``start_offset_s``), matching how Pensieve randomizes the
    mapping between videos and trace positions across epochs.
    """
    session = StreamingSession(video, trace, qoe=qoe, config=config, rng=rng,
                               start_offset_s=start_offset_s)
    trajectory = Trajectory()
    while not session.done:
        observation = session.observe()
        action, state = agent.act_with_state(observation, greedy=greedy)
        record, _ = session.step(action)
        trajectory.states.append(state)
        trajectory.actions.append(action)
        trajectory.rewards.append(record.reward)
    trajectory.session = session.result()
    return trajectory
