"""Episode rollouts: run one streaming session and collect a trajectory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..abr.env import SessionResult, StreamingSession, SimulatorConfig
from ..abr.qoe import QoEMetric
from ..abr.video import Video
from ..traces.base import Trace
from .agent import ABRAgent

__all__ = ["Trajectory", "collect_episode", "discounted_returns"]


@dataclass
class Trajectory:
    """States, actions and rewards from one streaming episode."""

    states: List[np.ndarray] = field(default_factory=list)
    actions: List[int] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    session: Optional[SessionResult] = None

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def total_reward(self) -> float:
        return float(sum(self.rewards))

    @property
    def mean_reward(self) -> float:
        return self.total_reward / max(len(self.rewards), 1)

    def stacked_states(self) -> np.ndarray:
        """States stacked along a new leading batch axis."""
        return np.stack(self.states, axis=0)


def discounted_returns(rewards: List[float], gamma: float,
                       bootstrap_value: float = 0.0) -> np.ndarray:
    """Compute discounted returns ``G_t = r_t + gamma * G_{t+1}``."""
    returns = np.zeros(len(rewards))
    running = bootstrap_value
    for index in reversed(range(len(rewards))):
        running = rewards[index] + gamma * running
        returns[index] = running
    return returns


def collect_episode(agent: ABRAgent, video: Video, trace: Trace,
                    qoe: Optional[QoEMetric] = None,
                    config: Optional[SimulatorConfig] = None,
                    rng: Optional[np.random.Generator] = None,
                    greedy: bool = False,
                    start_offset_s: Optional[float] = None) -> Trajectory:
    """Stream ``video`` over ``trace`` with ``agent`` and record the trajectory.

    During training the episode starts at a random offset into the trace
    (passed via ``start_offset_s``), matching how Pensieve randomizes the
    mapping between videos and trace positions across epochs.
    """
    session = StreamingSession(video, trace, qoe=qoe, config=config, rng=rng,
                               start_offset_s=start_offset_s)
    trajectory = Trajectory()
    while not session.done:
        observation = session.observe()
        action, state = agent.act_with_state(observation, greedy=greedy)
        record, _ = session.step(action)
        trajectory.states.append(state)
        trajectory.actions.append(action)
        trajectory.rewards.append(record.reward)
    trajectory.session = session.result()
    return trajectory
