"""Advantage actor-critic (A2C) trainer for ABR agents.

This is the training algorithm behind Pensieve (the original uses A3C, the
asynchronous variant; the synchronous form trains the same objective).  One
"epoch" is one streaming episode: the agent plays a full video over a randomly
chosen training trace, and the collected trajectory produces one policy and
value update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..abr.env import SimulatorConfig, StreamingSession
from ..abr.networks import build_seed_stack, seed_stack_compatible
from ..abr.qoe import LinearQoE, QoEMetric
from ..abr.state import original_state_function, original_states_batched
from ..abr.video import Video
from ..traces.base import TraceSet
from .agent import ABRAgent
from .policy import action_entropy, log_prob_of
from .rollout import Trajectory, collect_episode, discounted_returns
from .schedules import ConstantSchedule, LinearSchedule

__all__ = ["A2CConfig", "EpochStats", "A2CTrainer", "MultiSeedA2CTrainer",
           "TRAINING_METRIC_NAMES",
           "evaluate_agent", "evaluate_agent_batched"]

#: The scalar training metrics snapshotted at every checkpoint and attached
#: to :class:`~repro.core.evaluation.TrainingRun` (one series per name,
#: aligned with ``checkpoint_epochs``).
TRAINING_METRIC_NAMES = ("entropy", "actor_loss", "critic_loss", "grad_norm")


def _stats_metrics(stats: "EpochStats") -> "Dict[str, float]":
    return {"entropy": stats.entropy, "actor_loss": stats.actor_loss,
            "critic_loss": stats.critic_loss, "grad_norm": stats.grad_norm}


@dataclass(frozen=True)
class A2CConfig:
    """Hyper-parameters of the actor-critic trainer (Pensieve defaults)."""

    actor_lr: float = 1e-3
    critic_lr: float = 1e-3
    gamma: float = 0.99
    entropy_weight_start: float = 1.0
    entropy_weight_end: float = 0.1
    entropy_anneal_epochs: int = 1000
    value_loss_coefficient: float = 0.5
    max_grad_norm: float = 10.0
    optimizer: str = "rmsprop"


@dataclass
class EpochStats:
    """Per-epoch training metrics returned by :meth:`A2CTrainer.train_epoch`."""

    epoch: int
    episode_reward: float
    mean_chunk_reward: float
    actor_loss: float
    critic_loss: float
    entropy: float
    grad_norm: float
    trace_name: str


def _make_optimizer(name: str, parameters, lr: float):
    key = name.lower()
    if key == "rmsprop":
        return nn.RMSProp(parameters, lr=lr)
    if key == "adam":
        return nn.Adam(parameters, lr=lr)
    if key == "sgd":
        return nn.SGD(parameters, lr=lr)
    raise ValueError(f"unknown optimizer {name!r}")


def _make_stacked_optimizer(name: str, parameters, lr: float):
    """Stacked counterpart of :func:`_make_optimizer`.

    Same update rules, stepped in cache-sized blocks so a multi-seed
    parameter bank does not stream from memory once per update pass.
    """
    key = name.lower()
    if key == "rmsprop":
        return nn.StackedRMSProp(parameters, lr=lr)
    if key == "adam":
        return nn.StackedAdam(parameters, lr=lr)
    if key == "sgd":
        return nn.StackedSGD(parameters, lr=lr)
    raise ValueError(f"unknown optimizer {name!r}")


def _actor_critic_groups(network, config: A2CConfig,
                         stacked_of=None) -> list:
    """Parameter groups honoring ``actor_lr``/``critic_lr``.

    The critic head (as reported by ``network.critic_head_parameters``) steps
    at ``critic_lr``; every other parameter — branches, shared layers, actor
    tower — at ``actor_lr``.  ``stacked_of`` maps each serial parameter to its
    multi-seed stacked counterpart so the lockstep trainer builds the exact
    same grouping over stacked arrays.
    """
    critic = getattr(network, "critic_head_parameters", list)()
    critic_ids = {id(p) for p in critic}
    actor = [p for p in network.parameters() if id(p) not in critic_ids]
    if stacked_of is not None:
        actor = [stacked_of(p) for p in actor]
        critic = [stacked_of(p) for p in critic]
    groups = [{"params": actor, "lr": config.actor_lr}]
    if critic:
        groups.append({"params": critic, "lr": config.critic_lr})
    return groups


class A2CTrainer:
    """Trains an :class:`ABRAgent` with synchronous advantage actor-critic."""

    def __init__(self, agent: ABRAgent, video: Video, train_traces: TraceSet,
                 qoe: Optional[QoEMetric] = None,
                 config: Optional[A2CConfig] = None,
                 simulator_config: Optional[SimulatorConfig] = None,
                 seed: Optional[int] = None) -> None:
        self.agent = agent
        self.video = video
        self.train_traces = train_traces
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.config = config or A2CConfig()
        self.simulator_config = simulator_config
        self._rng = np.random.default_rng(seed)
        self.agent.seed(int(self._rng.integers(2 ** 31)))
        groups = _actor_critic_groups(self.agent.network, self.config)
        self._optimizer = _make_optimizer(self.config.optimizer, groups,
                                          self.config.actor_lr)
        cfg = self.config
        if cfg.entropy_anneal_epochs > 0:
            self._entropy_schedule = LinearSchedule(
                cfg.entropy_weight_start, cfg.entropy_weight_end,
                cfg.entropy_anneal_epochs)
        else:
            self._entropy_schedule = ConstantSchedule(cfg.entropy_weight_start)
        self.epoch = 0
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------ #
    @property
    def reward_history(self) -> List[float]:
        """Episode rewards of every epoch trained so far.

        This is the training-reward trajectory that the early-stopping
        classifier consumes (§2.2 of the paper).
        """
        return [stats.episode_reward for stats in self.history]

    def checkpoint_metrics(self) -> Dict[str, float]:
        """Latest epoch's scalar training metrics, for checkpoint snapshots.

        Keys are :data:`TRAINING_METRIC_NAMES`; NaN before the first epoch.
        """
        if not self.history:
            return {name: float("nan") for name in TRAINING_METRIC_NAMES}
        return _stats_metrics(self.history[-1])

    # ------------------------------------------------------------------ #
    def train_epoch(self) -> EpochStats:
        """Run one episode and apply one actor-critic update."""
        trace = self.train_traces.sample(self._rng)
        start_offset = float(self._rng.uniform(0.0, trace.duration_s))
        trajectory = collect_episode(
            self.agent, self.video, trace, qoe=self.qoe,
            config=self.simulator_config, rng=self._rng,
            start_offset_s=start_offset)
        stats = self._update(trajectory, trace.name)
        self.epoch += 1
        self.history.append(stats)
        return stats

    def train(self, num_epochs: int,
              callback: Optional[Callable[[EpochStats], None]] = None) -> List[EpochStats]:
        """Train for ``num_epochs`` episodes; returns the per-epoch stats."""
        stats_list = []
        for _ in range(num_epochs):
            stats = self.train_epoch()
            stats_list.append(stats)
            if callback is not None:
                callback(stats)
        return stats_list

    # ------------------------------------------------------------------ #
    def _update(self, trajectory: Trajectory, trace_name: str) -> EpochStats:
        actions = np.asarray(trajectory.actions, dtype=np.int64)
        returns = discounted_returns(trajectory.rewards, self.config.gamma)
        entropy_weight = self._entropy_schedule(self.epoch)
        network = self.agent.network

        if network.supports_fused_update():
            actor_loss, critic_loss, entropy, grad_norm = self._fused_update(
                trajectory.stacked_states(), actions, returns, entropy_weight)
        else:
            actor_loss, critic_loss, entropy, grad_norm = self._graph_update(
                trajectory.stacked_states(), actions, returns, entropy_weight)

        return EpochStats(
            epoch=self.epoch,
            episode_reward=trajectory.total_reward,
            mean_chunk_reward=trajectory.mean_reward,
            actor_loss=float(actor_loss),
            critic_loss=float(critic_loss),
            entropy=float(entropy),
            grad_norm=float(grad_norm),
            trace_name=trace_name,
        )

    def _graph_update(self, states_array: np.ndarray, actions: np.ndarray,
                      returns: np.ndarray, entropy_weight: float):
        """One actor-critic update through the autograd graph."""
        states = nn.tensor(states_array)
        logits, values = self.agent.network.forward(states)
        advantages = returns - values.numpy()

        log_probs = log_prob_of(logits, actions)
        entropy = action_entropy(logits)

        actor_loss = nn.policy_gradient_loss(log_probs, advantages)
        critic_loss = nn.mse_loss(values, nn.tensor(returns))
        loss = (actor_loss
                + self.config.value_loss_coefficient * critic_loss
                - entropy_weight * entropy)

        self._optimizer.zero_grad()
        loss.backward()
        grad_norm = nn.clip_grad_norm(self.agent.network.parameters(),
                                      self.config.max_grad_norm)
        self._optimizer.step()
        return (float(actor_loss.item()), float(critic_loss.item()),
                float(entropy.item()), float(grad_norm))

    def _fused_update(self, states_array: np.ndarray, actions: np.ndarray,
                      returns: np.ndarray, entropy_weight: float):
        """One actor-critic update via the network's analytic fast path.

        Computes the same losses and gradients as :meth:`_graph_update`
        (verified against it in the test suite) with hand-derived loss
        gradients instead of an autograd graph:

        * actor: ``d logits = -(adv / B) * (onehot(a) - softmax)``
        * entropy bonus: ``d logits = (w_e / B) * p * (log p + H)``
        * critic: ``d value = c_v * 2/B * (v - R)``
        """
        network = self.agent.network
        cache, logits, values = network.fused_forward(states_array)
        batch = logits.shape[0]
        # Stay in the network dtype end to end: a float64 returns vector would
        # silently upcast every gradient GEMM below.
        returns = np.asarray(returns, dtype=logits.dtype)
        advantages = returns - values

        # Stable log-softmax / softmax from the raw logits.
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        probs = np.exp(log_probs)
        picked = log_probs[np.arange(batch), actions]
        row_entropy = -(probs * log_probs).sum(axis=-1)

        actor_loss = -float(np.mean(picked * advantages))
        critic_loss = float(np.mean((values - returns) ** 2))
        entropy = float(np.mean(row_entropy))

        one_hot = np.zeros_like(probs)
        one_hot[np.arange(batch), actions] = 1.0
        d_logits = (-(advantages[:, None] / batch) * (one_hot - probs)
                    + (entropy_weight / batch) * probs
                    * (log_probs + row_entropy[:, None]))
        d_values = (self.config.value_loss_coefficient * 2.0 / batch
                    * (values - returns))

        self._optimizer.zero_grad()
        network.fused_backward(cache, d_logits, d_values)
        grad_norm = nn.clip_grad_norm(network.parameters(),
                                      self.config.max_grad_norm)
        self._optimizer.step()
        return actor_loss, critic_loss, entropy, float(grad_norm)


def evaluate_agent(agent: ABRAgent, video: Video, traces: TraceSet,
                   qoe: Optional[QoEMetric] = None,
                   simulator_config: Optional[SimulatorConfig] = None,
                   greedy: bool = True,
                   seed: Optional[int] = None,
                   batched: bool = True) -> float:
    """Mean per-chunk reward of ``agent`` across every trace in ``traces``.

    This is the quantity plotted on the y-axis of Figures 3 and 4 ("test
    score" before seed-aggregation).  With ``batched=True`` (default) greedy,
    noise-free evaluations step every trace in lockstep with one batched
    policy forward per chunk — same decisions, a fraction of the forwards.
    """
    noise_free = simulator_config is None or simulator_config.bandwidth_noise_std == 0
    if batched and greedy and noise_free and len(traces) > 1:
        return evaluate_agent_batched(agent, video, traces, qoe=qoe,
                                      simulator_config=simulator_config)
    rng = np.random.default_rng(seed)
    qoe = qoe or LinearQoE(video.bitrates_kbps)
    rewards = []
    for trace in traces:
        trajectory = collect_episode(agent, video, trace, qoe=qoe,
                                     config=simulator_config, rng=rng,
                                     greedy=greedy)
        rewards.append(trajectory.mean_reward)
    return float(np.mean(rewards))


def _original_states_lockstep(sessions, video, ladder: np.ndarray,
                              out: np.ndarray) -> np.ndarray:
    """Original-design states for lockstep sessions, in one vectorized pass.

    Stacks the live observation histories of every session and runs
    :func:`~repro.abr.state.original_states_batched` — per session the state
    is bit-identical to ``agent.state_of(session.observe())``, without the
    per-session Python dispatch.  All sessions must sit at the same chunk
    index of the same video (the lockstep invariant).
    """
    views = [session.history_arrays for session in sessions]
    bitrate = np.stack([v[0] for v in views])
    throughput = np.stack([v[1] for v in views])
    download = np.stack([v[2] for v in views])
    buffer_s = np.stack([v[3] for v in views])
    first = sessions[0].simulator
    next_sizes = video.next_chunk_sizes(first.next_chunk_index)
    return original_states_batched(
        bitrate, throughput, download, buffer_s, next_sizes,
        first.remaining_chunks, video.num_chunks, ladder, out=out)


def _lockstep_greedy_rewards(sessions, state_of, probs_fn,
                             num_chunks: int, states_builder=None):
    """Step a batch of sessions in greedy lockstep; returns mean rewards.

    Every session streams the same video, so all of them need exactly
    ``num_chunks`` decisions; each decision round stacks the per-session
    states into a ``(sessions, *state_shape)`` array and asks ``probs_fn``
    for one batched forward.  ``states_builder``, when given, supplies that
    array in one vectorized pass (the original-design fast path); the
    default stacks per-session ``state_of`` calls.  Greedy decisions
    consume no randomness, so per-session decisions are identical to
    stepping each session on its own.
    """
    for _ in range(num_chunks):
        if states_builder is not None:
            states = states_builder()
        else:
            states = np.stack([state_of(session.observe())
                               for session in sessions], axis=0)
        probs = probs_fn(states)
        actions = np.argmax(probs, axis=-1)
        for session, action in zip(sessions, actions):
            session.step(int(action))
    return [session.result().mean_reward for session in sessions]


def evaluate_agent_batched(agent: ABRAgent, video: Video, traces: TraceSet,
                           qoe: Optional[QoEMetric] = None,
                           simulator_config: Optional[SimulatorConfig] = None,
                           ) -> float:
    """Greedy evaluation of ``agent`` on all traces in lockstep.

    One batched policy forward per chunk resolves every trace's decision —
    same decisions as the serial path, a fraction of the forwards (the
    simulator RNG is only touched by bandwidth noise, which the caller must
    disable to use this path).
    """
    qoe = qoe or LinearQoE(video.bitrates_kbps)
    sessions = [StreamingSession(video, trace, qoe=qoe, config=simulator_config)
                for trace in traces]
    rewards = _lockstep_greedy_rewards(
        sessions, agent.state_of, agent.batch_action_probabilities,
        video.num_chunks)
    return float(np.mean(rewards))


class MultiSeedA2CTrainer:
    """Trains every seed's session of one design simultaneously, in lockstep.

    The §3.1 protocol trains each design ``num_seeds`` times with different
    seeds; serially that is ``num_seeds`` full :class:`A2CTrainer` loops.
    This trainer stacks the per-seed network weights into 3-D tensors
    (:class:`~repro.abr.networks.PensieveSeedStack` for the original
    architecture, :class:`~repro.nn.compile.CompiledSeedStack` for generated
    design-space architectures the kernel planner lowers) and runs all
    sessions together: per round, each seed samples its own trace/offset
    from its own RNG stream, the per-chunk policy forwards batch across
    seeds, and one batched fused forward/backward plus a stacked in-place
    optimizer step replaces ``num_seeds`` separate updates.

    Seed-for-seed equivalence with the serial trainer is a hard contract, not
    an approximation: every seed keeps the exact RNG streams (trace sampling,
    start offsets, action sampling, bandwidth noise) and the stacked kernels
    are bit-compatible with the serial fused kernels, so trace choices and
    action sequences are identical and weights agree to float round-off.
    Architectures the stack cannot express should use :class:`A2CTrainer`
    per seed (check :meth:`supports` first).
    """

    def __init__(self, agents: Sequence[ABRAgent], video: Video,
                 train_traces: TraceSet,
                 qoe: Optional[QoEMetric] = None,
                 config: Optional[A2CConfig] = None,
                 simulator_config: Optional[SimulatorConfig] = None,
                 seeds: Optional[Sequence[Optional[int]]] = None) -> None:
        self.agents = list(agents)
        if not self.agents:
            raise ValueError("MultiSeedA2CTrainer needs at least one agent")
        if seeds is None:
            seeds = list(range(len(self.agents)))
        if len(seeds) != len(self.agents):
            raise ValueError("one seed per agent is required")
        self.video = video
        self.train_traces = train_traces
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.config = config or A2CConfig()
        self.simulator_config = simulator_config
        self.seeds = list(seeds)
        # Mirrors A2CTrainer.__init__ for each seed: the trainer RNG is
        # seeded first, then the agent's action RNG from its first draw.
        self._rngs = [np.random.default_rng(seed) for seed in self.seeds]
        for agent, rng in zip(self.agents, self._rngs):
            agent.seed(int(rng.integers(2 ** 31)))
        networks = [agent.network for agent in self.agents]
        if not seed_stack_compatible(networks):
            raise ValueError(
                "agents' networks cannot train in lockstep (no fused update "
                "support or mismatched architectures); train each seed with "
                "A2CTrainer instead")
        self.stack = build_seed_stack(networks)
        groups = _actor_critic_groups(networks[0], self.config,
                                      stacked_of=self.stack.stacked_of)
        self._optimizer = _make_stacked_optimizer(self.config.optimizer,
                                                  groups,
                                                  self.config.actor_lr)
        cfg = self.config
        if cfg.entropy_anneal_epochs > 0:
            self._entropy_schedule = LinearSchedule(
                cfg.entropy_weight_start, cfg.entropy_weight_end,
                cfg.entropy_anneal_epochs)
        else:
            self._entropy_schedule = ConstantSchedule(cfg.entropy_weight_start)
        self.epoch = 0
        self.histories: List[List[EpochStats]] = [[] for _ in self.agents]
        # When every agent uses the trusted original state function, the
        # per-chunk states are computed with one vectorized pass over the
        # stacked session histories (bit-identical per seed) instead of one
        # Python state-function call per seed; generated state functions are
        # arbitrary code and keep the per-seed path.
        self._original_states = all(
            agent.state_function.trusted
            and agent.state_function._func is original_state_function
            for agent in self.agents) and len(self.stack.state_shape) == 2
        self._states_buffer = np.empty(
            (self.num_seeds, video.num_chunks) + self.stack.state_shape)
        self._ladder = np.asarray(video.bitrates_kbps, dtype=np.float64)

    # ------------------------------------------------------------------ #
    @staticmethod
    def supports(networks) -> bool:
        """Whether these networks can train through the lockstep engine.

        True for the original Pensieve architecture (hand-fused seed stack)
        and for any generated design-space architecture the kernel planner
        can lower (:class:`~repro.nn.compile.CompiledSeedStack`); False for
        mixed architectures or exotic codegen output, which train per seed
        through the graph reference path.
        """
        return seed_stack_compatible(list(networks))

    @property
    def num_seeds(self) -> int:
        return len(self.agents)

    @property
    def reward_histories(self) -> List[List[float]]:
        """Per-seed episode-reward trajectories (cf. ``A2CTrainer.reward_history``)."""
        return [[stats.episode_reward for stats in history]
                for history in self.histories]

    def checkpoint_metrics(self) -> List[Dict[str, float]]:
        """Per-seed latest-epoch training metrics (cf. ``A2CTrainer``)."""
        return [_stats_metrics(history[-1]) if history
                else {name: float("nan") for name in TRAINING_METRIC_NAMES}
                for history in self.histories]

    # ------------------------------------------------------------------ #
    def _run_seed_episode(self, index: int, session: StreamingSession,
                          actions: List[int], rewards: List[float]) -> None:
        """Roll out one seed's full episode into the epoch buffers.

        Episodes run seed-major — one seed's whole episode before the next —
        so each seed's ~1.6 MB actor tower stays hot in L2 across its
        consecutive decisions (interleaving seeds per chunk would cycle the
        full multi-seed weight bank through cache every round).  This is
        also exactly the serial trainer's execution order, so each seed's
        RNG stream is consumed identically.
        """
        agent = self.agents[index]
        states = self._states_buffer[index]
        video = self.video
        forward = self.stack.seed_policy_forward(index, batch=1)
        for chunk in range(video.num_chunks):
            if self._original_states:
                histories = session.history_arrays
                simulator = session.simulator
                original_states_batched(
                    histories[0], histories[1], histories[2], histories[3],
                    video.next_chunk_sizes(simulator.next_chunk_index),
                    simulator.remaining_chunks, video.num_chunks,
                    self._ladder, out=states[chunk])
            else:
                states[chunk] = agent.state_of(session.observe())
            probs = forward.probs(states[chunk:chunk + 1])
            action = agent.act_from_probs(probs[0])
            record, _ = session.step(action)
            actions.append(action)
            rewards.append(record.reward)

    def train_epoch(self) -> List[EpochStats]:
        """Run one episode per seed and apply one stacked lockstep update."""
        num_seeds = self.num_seeds
        traces = []
        actions_per_seed: List[List[int]] = [[] for _ in range(num_seeds)]
        rewards_per_seed: List[List[float]] = [[] for _ in range(num_seeds)]
        for index, (agent, rng) in enumerate(zip(self.agents, self._rngs)):
            trace = self.train_traces.sample(rng)
            start_offset = float(rng.uniform(0.0, trace.duration_s))
            traces.append(trace)
            session = StreamingSession(
                self.video, trace, qoe=self.qoe, config=self.simulator_config,
                rng=rng, start_offset_s=start_offset)
            self._run_seed_episode(index, session, actions_per_seed[index],
                                   rewards_per_seed[index])

        stacked_states = self._states_buffer
        actions = np.asarray(actions_per_seed, dtype=np.int64)
        returns = np.stack([discounted_returns(rewards, self.config.gamma)
                            for rewards in rewards_per_seed], axis=0)
        entropy_weight = self._entropy_schedule(self.epoch)
        stats = self._fused_update(stacked_states, actions, returns,
                                   entropy_weight, traces, rewards_per_seed)
        self.epoch += 1
        for history, seed_stats in zip(self.histories, stats):
            history.append(seed_stats)
        return stats

    def train(self, num_epochs: int,
              callback: Optional[Callable[[List[EpochStats]], None]] = None,
              ) -> List[List[EpochStats]]:
        """Train all seeds for ``num_epochs`` lockstep episodes."""
        stats_list: List[List[EpochStats]] = []
        for _ in range(num_epochs):
            stats = self.train_epoch()
            stats_list.append(stats)
            if callback is not None:
                callback(stats)
        return stats_list

    # ------------------------------------------------------------------ #
    def _fused_update(self, states: np.ndarray, actions: np.ndarray,
                      returns: np.ndarray, entropy_weight: float,
                      traces, rewards_per_seed) -> List[EpochStats]:
        """Stacked twin of :meth:`A2CTrainer._fused_update`.

        Identical loss arithmetic with one leading seed axis; per-seed
        slices match the serial update bit for bit (batched GEMMs resolve
        each seed with the same BLAS calls, elementwise math is
        shape-independent, and gradient clipping accumulates per seed in
        serial parameter order).
        """
        cfg = self.config
        cache, logits, values = self.stack.fused_forward(states)
        batch = logits.shape[1]
        returns = np.asarray(returns, dtype=logits.dtype)
        advantages = returns - values

        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1,
                                                         keepdims=True))
        probs = np.exp(log_probs)
        picked = np.take_along_axis(log_probs, actions[:, :, None],
                                    axis=2)[:, :, 0]
        row_entropy = -(probs * log_probs).sum(axis=-1)

        actor_losses = -np.mean(picked * advantages, axis=1)
        critic_losses = np.mean((values - returns) ** 2, axis=1)
        entropies = np.mean(row_entropy, axis=1)

        one_hot = np.zeros_like(probs)
        np.put_along_axis(one_hot, actions[:, :, None], 1.0, axis=2)
        d_logits = (-(advantages[:, :, None] / batch) * (one_hot - probs)
                    + (entropy_weight / batch) * probs
                    * (log_probs + row_entropy[:, :, None]))
        d_values = (cfg.value_loss_coefficient * 2.0 / batch
                    * (values - returns))

        self._optimizer.zero_grad()
        self.stack.fused_backward(cache, d_logits, d_values)
        grad_norms = nn.clip_grad_norm_stacked(self.stack.parameters(),
                                               cfg.max_grad_norm)
        self._optimizer.step()
        self.stack.mark_updated()

        stats = []
        for index, trace in enumerate(traces):
            rewards = rewards_per_seed[index]
            total = float(sum(rewards))
            stats.append(EpochStats(
                epoch=self.epoch,
                episode_reward=total,
                mean_chunk_reward=total / max(len(rewards), 1),
                actor_loss=float(actor_losses[index]),
                critic_loss=float(critic_losses[index]),
                entropy=float(entropies[index]),
                grad_norm=float(grad_norms[index]),
                trace_name=trace.name,
            ))
        return stats

    # ------------------------------------------------------------------ #
    def evaluate_checkpoint(self, traces: TraceSet, greedy: bool = True,
                            batched: bool = True) -> List[float]:
        """Per-seed test scores, matching ``evaluate_agent`` seed for seed.

        When the batched greedy path applies, all ``seeds x traces`` sessions
        step in one lockstep grid with one stacked forward per chunk
        (reusing the :func:`evaluate_agent_batched` loop); otherwise each
        seed evaluates through the identical serial ``evaluate_agent`` call,
        preserving its RNG consumption exactly.
        """
        noise_free = (self.simulator_config is None
                      or self.simulator_config.bandwidth_noise_std == 0)
        if batched and greedy and noise_free and len(traces) > 1:
            scores = []
            buffer = np.empty((len(traces),) + self.stack.state_shape)
            for index, agent in enumerate(self.agents):
                # Seed-major like the rollout: one seed's weights stay hot
                # across every chunk of its trace batch.
                sessions = [StreamingSession(self.video, trace, qoe=self.qoe,
                                             config=self.simulator_config)
                            for trace in traces]
                forward = self.stack.seed_policy_forward(index,
                                                         batch=len(traces))
                states_builder = None
                if self._original_states:
                    def states_builder(sessions=sessions):
                        return _original_states_lockstep(
                            sessions, self.video, self._ladder, buffer)
                rewards = _lockstep_greedy_rewards(
                    sessions, agent.state_of, forward.probs,
                    self.video.num_chunks, states_builder=states_builder)
                scores.append(float(np.mean(rewards)))
            return scores
        return [evaluate_agent(agent, self.video, traces, qoe=self.qoe,
                               simulator_config=self.simulator_config,
                               greedy=greedy, seed=seed, batched=batched)
                for agent, seed in zip(self.agents, self.seeds)]
