"""Advantage actor-critic (A2C) trainer for ABR agents.

This is the training algorithm behind Pensieve (the original uses A3C, the
asynchronous variant; the synchronous form trains the same objective).  One
"epoch" is one streaming episode: the agent plays a full video over a randomly
chosen training trace, and the collected trajectory produces one policy and
value update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .. import nn
from ..abr.env import SimulatorConfig
from ..abr.qoe import LinearQoE, QoEMetric
from ..abr.video import Video
from ..traces.base import TraceSet
from .agent import ABRAgent
from .policy import action_entropy, log_prob_of
from .rollout import Trajectory, collect_episode, discounted_returns
from .schedules import ConstantSchedule, LinearSchedule

__all__ = ["A2CConfig", "EpochStats", "A2CTrainer", "evaluate_agent"]


@dataclass(frozen=True)
class A2CConfig:
    """Hyper-parameters of the actor-critic trainer (Pensieve defaults)."""

    actor_lr: float = 1e-3
    critic_lr: float = 1e-3
    gamma: float = 0.99
    entropy_weight_start: float = 1.0
    entropy_weight_end: float = 0.1
    entropy_anneal_epochs: int = 1000
    value_loss_coefficient: float = 0.5
    max_grad_norm: float = 10.0
    optimizer: str = "rmsprop"


@dataclass
class EpochStats:
    """Per-epoch training metrics returned by :meth:`A2CTrainer.train_epoch`."""

    epoch: int
    episode_reward: float
    mean_chunk_reward: float
    actor_loss: float
    critic_loss: float
    entropy: float
    grad_norm: float
    trace_name: str


def _make_optimizer(name: str, parameters, lr: float):
    key = name.lower()
    if key == "rmsprop":
        return nn.RMSProp(parameters, lr=lr)
    if key == "adam":
        return nn.Adam(parameters, lr=lr)
    if key == "sgd":
        return nn.SGD(parameters, lr=lr)
    raise ValueError(f"unknown optimizer {name!r}")


class A2CTrainer:
    """Trains an :class:`ABRAgent` with synchronous advantage actor-critic."""

    def __init__(self, agent: ABRAgent, video: Video, train_traces: TraceSet,
                 qoe: Optional[QoEMetric] = None,
                 config: Optional[A2CConfig] = None,
                 simulator_config: Optional[SimulatorConfig] = None,
                 seed: Optional[int] = None) -> None:
        self.agent = agent
        self.video = video
        self.train_traces = train_traces
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.config = config or A2CConfig()
        self.simulator_config = simulator_config
        self._rng = np.random.default_rng(seed)
        self.agent.seed(int(self._rng.integers(2 ** 31)))
        parameters = self.agent.network.parameters()
        self._optimizer = _make_optimizer(self.config.optimizer, parameters,
                                          self.config.actor_lr)
        cfg = self.config
        if cfg.entropy_anneal_epochs > 0:
            self._entropy_schedule = LinearSchedule(
                cfg.entropy_weight_start, cfg.entropy_weight_end,
                cfg.entropy_anneal_epochs)
        else:
            self._entropy_schedule = ConstantSchedule(cfg.entropy_weight_start)
        self.epoch = 0
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------ #
    @property
    def reward_history(self) -> List[float]:
        """Episode rewards of every epoch trained so far.

        This is the training-reward trajectory that the early-stopping
        classifier consumes (§2.2 of the paper).
        """
        return [stats.episode_reward for stats in self.history]

    # ------------------------------------------------------------------ #
    def train_epoch(self) -> EpochStats:
        """Run one episode and apply one actor-critic update."""
        trace = self.train_traces.sample(self._rng)
        start_offset = float(self._rng.uniform(0.0, trace.duration_s))
        trajectory = collect_episode(
            self.agent, self.video, trace, qoe=self.qoe,
            config=self.simulator_config, rng=self._rng,
            start_offset_s=start_offset)
        stats = self._update(trajectory, trace.name)
        self.epoch += 1
        self.history.append(stats)
        return stats

    def train(self, num_epochs: int,
              callback: Optional[Callable[[EpochStats], None]] = None) -> List[EpochStats]:
        """Train for ``num_epochs`` episodes; returns the per-epoch stats."""
        stats_list = []
        for _ in range(num_epochs):
            stats = self.train_epoch()
            stats_list.append(stats)
            if callback is not None:
                callback(stats)
        return stats_list

    # ------------------------------------------------------------------ #
    def _update(self, trajectory: Trajectory, trace_name: str) -> EpochStats:
        states = nn.tensor(trajectory.stacked_states())
        actions = np.asarray(trajectory.actions, dtype=np.int64)
        returns = discounted_returns(trajectory.rewards, self.config.gamma)

        logits, values = self.agent.network.forward(states)
        advantages = returns - values.numpy()

        log_probs = log_prob_of(logits, actions)
        entropy = action_entropy(logits)
        entropy_weight = self._entropy_schedule(self.epoch)

        actor_loss = nn.policy_gradient_loss(log_probs, advantages)
        critic_loss = nn.mse_loss(values, nn.tensor(returns))
        loss = (actor_loss
                + self.config.value_loss_coefficient * critic_loss
                - entropy_weight * entropy)

        self._optimizer.zero_grad()
        loss.backward()
        grad_norm = nn.clip_grad_norm(self.agent.network.parameters(),
                                      self.config.max_grad_norm)
        self._optimizer.step()

        return EpochStats(
            epoch=self.epoch,
            episode_reward=trajectory.total_reward,
            mean_chunk_reward=trajectory.mean_reward,
            actor_loss=float(actor_loss.item()),
            critic_loss=float(critic_loss.item()),
            entropy=float(entropy.item()),
            grad_norm=float(grad_norm),
            trace_name=trace_name,
        )


def evaluate_agent(agent: ABRAgent, video: Video, traces: TraceSet,
                   qoe: Optional[QoEMetric] = None,
                   simulator_config: Optional[SimulatorConfig] = None,
                   greedy: bool = True,
                   seed: Optional[int] = None) -> float:
    """Mean per-chunk reward of ``agent`` across every trace in ``traces``.

    This is the quantity plotted on the y-axis of Figures 3 and 4 ("test
    score" before seed-aggregation).
    """
    rng = np.random.default_rng(seed)
    qoe = qoe or LinearQoE(video.bitrates_kbps)
    rewards = []
    for trace in traces:
        trajectory = collect_episode(agent, video, trace, qoe=qoe,
                                     config=simulator_config, rng=rng,
                                     greedy=greedy)
        rewards.append(trajectory.mean_reward)
    return float(np.mean(rewards))
