"""Advantage actor-critic (A2C) trainer for ABR agents.

This is the training algorithm behind Pensieve (the original uses A3C, the
asynchronous variant; the synchronous form trains the same objective).  One
"epoch" is one streaming episode: the agent plays a full video over a randomly
chosen training trace, and the collected trajectory produces one policy and
value update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .. import nn
from ..abr.env import SimulatorConfig, StreamingSession
from ..abr.qoe import LinearQoE, QoEMetric
from ..abr.video import Video
from ..traces.base import TraceSet
from .agent import ABRAgent
from .policy import action_entropy, log_prob_of
from .rollout import Trajectory, collect_episode, discounted_returns
from .schedules import ConstantSchedule, LinearSchedule

__all__ = ["A2CConfig", "EpochStats", "A2CTrainer", "evaluate_agent",
           "evaluate_agent_batched"]


@dataclass(frozen=True)
class A2CConfig:
    """Hyper-parameters of the actor-critic trainer (Pensieve defaults)."""

    actor_lr: float = 1e-3
    critic_lr: float = 1e-3
    gamma: float = 0.99
    entropy_weight_start: float = 1.0
    entropy_weight_end: float = 0.1
    entropy_anneal_epochs: int = 1000
    value_loss_coefficient: float = 0.5
    max_grad_norm: float = 10.0
    optimizer: str = "rmsprop"


@dataclass
class EpochStats:
    """Per-epoch training metrics returned by :meth:`A2CTrainer.train_epoch`."""

    epoch: int
    episode_reward: float
    mean_chunk_reward: float
    actor_loss: float
    critic_loss: float
    entropy: float
    grad_norm: float
    trace_name: str


def _make_optimizer(name: str, parameters, lr: float):
    key = name.lower()
    if key == "rmsprop":
        return nn.RMSProp(parameters, lr=lr)
    if key == "adam":
        return nn.Adam(parameters, lr=lr)
    if key == "sgd":
        return nn.SGD(parameters, lr=lr)
    raise ValueError(f"unknown optimizer {name!r}")


class A2CTrainer:
    """Trains an :class:`ABRAgent` with synchronous advantage actor-critic."""

    def __init__(self, agent: ABRAgent, video: Video, train_traces: TraceSet,
                 qoe: Optional[QoEMetric] = None,
                 config: Optional[A2CConfig] = None,
                 simulator_config: Optional[SimulatorConfig] = None,
                 seed: Optional[int] = None) -> None:
        self.agent = agent
        self.video = video
        self.train_traces = train_traces
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.config = config or A2CConfig()
        self.simulator_config = simulator_config
        self._rng = np.random.default_rng(seed)
        self.agent.seed(int(self._rng.integers(2 ** 31)))
        parameters = self.agent.network.parameters()
        self._optimizer = _make_optimizer(self.config.optimizer, parameters,
                                          self.config.actor_lr)
        cfg = self.config
        if cfg.entropy_anneal_epochs > 0:
            self._entropy_schedule = LinearSchedule(
                cfg.entropy_weight_start, cfg.entropy_weight_end,
                cfg.entropy_anneal_epochs)
        else:
            self._entropy_schedule = ConstantSchedule(cfg.entropy_weight_start)
        self.epoch = 0
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------ #
    @property
    def reward_history(self) -> List[float]:
        """Episode rewards of every epoch trained so far.

        This is the training-reward trajectory that the early-stopping
        classifier consumes (§2.2 of the paper).
        """
        return [stats.episode_reward for stats in self.history]

    # ------------------------------------------------------------------ #
    def train_epoch(self) -> EpochStats:
        """Run one episode and apply one actor-critic update."""
        trace = self.train_traces.sample(self._rng)
        start_offset = float(self._rng.uniform(0.0, trace.duration_s))
        trajectory = collect_episode(
            self.agent, self.video, trace, qoe=self.qoe,
            config=self.simulator_config, rng=self._rng,
            start_offset_s=start_offset)
        stats = self._update(trajectory, trace.name)
        self.epoch += 1
        self.history.append(stats)
        return stats

    def train(self, num_epochs: int,
              callback: Optional[Callable[[EpochStats], None]] = None) -> List[EpochStats]:
        """Train for ``num_epochs`` episodes; returns the per-epoch stats."""
        stats_list = []
        for _ in range(num_epochs):
            stats = self.train_epoch()
            stats_list.append(stats)
            if callback is not None:
                callback(stats)
        return stats_list

    # ------------------------------------------------------------------ #
    def _update(self, trajectory: Trajectory, trace_name: str) -> EpochStats:
        actions = np.asarray(trajectory.actions, dtype=np.int64)
        returns = discounted_returns(trajectory.rewards, self.config.gamma)
        entropy_weight = self._entropy_schedule(self.epoch)
        network = self.agent.network

        if network.supports_fused_update():
            actor_loss, critic_loss, entropy, grad_norm = self._fused_update(
                trajectory.stacked_states(), actions, returns, entropy_weight)
        else:
            actor_loss, critic_loss, entropy, grad_norm = self._graph_update(
                trajectory.stacked_states(), actions, returns, entropy_weight)

        return EpochStats(
            epoch=self.epoch,
            episode_reward=trajectory.total_reward,
            mean_chunk_reward=trajectory.mean_reward,
            actor_loss=float(actor_loss),
            critic_loss=float(critic_loss),
            entropy=float(entropy),
            grad_norm=float(grad_norm),
            trace_name=trace_name,
        )

    def _graph_update(self, states_array: np.ndarray, actions: np.ndarray,
                      returns: np.ndarray, entropy_weight: float):
        """One actor-critic update through the autograd graph."""
        states = nn.tensor(states_array)
        logits, values = self.agent.network.forward(states)
        advantages = returns - values.numpy()

        log_probs = log_prob_of(logits, actions)
        entropy = action_entropy(logits)

        actor_loss = nn.policy_gradient_loss(log_probs, advantages)
        critic_loss = nn.mse_loss(values, nn.tensor(returns))
        loss = (actor_loss
                + self.config.value_loss_coefficient * critic_loss
                - entropy_weight * entropy)

        self._optimizer.zero_grad()
        loss.backward()
        grad_norm = nn.clip_grad_norm(self.agent.network.parameters(),
                                      self.config.max_grad_norm)
        self._optimizer.step()
        return (float(actor_loss.item()), float(critic_loss.item()),
                float(entropy.item()), float(grad_norm))

    def _fused_update(self, states_array: np.ndarray, actions: np.ndarray,
                      returns: np.ndarray, entropy_weight: float):
        """One actor-critic update via the network's analytic fast path.

        Computes the same losses and gradients as :meth:`_graph_update`
        (verified against it in the test suite) with hand-derived loss
        gradients instead of an autograd graph:

        * actor: ``d logits = -(adv / B) * (onehot(a) - softmax)``
        * entropy bonus: ``d logits = (w_e / B) * p * (log p + H)``
        * critic: ``d value = c_v * 2/B * (v - R)``
        """
        network = self.agent.network
        cache, logits, values = network.fused_forward(states_array)
        batch = logits.shape[0]
        # Stay in the network dtype end to end: a float64 returns vector would
        # silently upcast every gradient GEMM below.
        returns = np.asarray(returns, dtype=logits.dtype)
        advantages = returns - values

        # Stable log-softmax / softmax from the raw logits.
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        probs = np.exp(log_probs)
        picked = log_probs[np.arange(batch), actions]
        row_entropy = -(probs * log_probs).sum(axis=-1)

        actor_loss = -float(np.mean(picked * advantages))
        critic_loss = float(np.mean((values - returns) ** 2))
        entropy = float(np.mean(row_entropy))

        one_hot = np.zeros_like(probs)
        one_hot[np.arange(batch), actions] = 1.0
        d_logits = (-(advantages[:, None] / batch) * (one_hot - probs)
                    + (entropy_weight / batch) * probs
                    * (log_probs + row_entropy[:, None]))
        d_values = (self.config.value_loss_coefficient * 2.0 / batch
                    * (values - returns))

        self._optimizer.zero_grad()
        network.fused_backward(cache, d_logits, d_values)
        grad_norm = nn.clip_grad_norm(network.parameters(),
                                      self.config.max_grad_norm)
        self._optimizer.step()
        return actor_loss, critic_loss, entropy, float(grad_norm)


def evaluate_agent(agent: ABRAgent, video: Video, traces: TraceSet,
                   qoe: Optional[QoEMetric] = None,
                   simulator_config: Optional[SimulatorConfig] = None,
                   greedy: bool = True,
                   seed: Optional[int] = None,
                   batched: bool = True) -> float:
    """Mean per-chunk reward of ``agent`` across every trace in ``traces``.

    This is the quantity plotted on the y-axis of Figures 3 and 4 ("test
    score" before seed-aggregation).  With ``batched=True`` (default) greedy,
    noise-free evaluations step every trace in lockstep with one batched
    policy forward per chunk — same decisions, a fraction of the forwards.
    """
    noise_free = simulator_config is None or simulator_config.bandwidth_noise_std == 0
    if batched and greedy and noise_free and len(traces) > 1:
        return evaluate_agent_batched(agent, video, traces, qoe=qoe,
                                      simulator_config=simulator_config)
    rng = np.random.default_rng(seed)
    qoe = qoe or LinearQoE(video.bitrates_kbps)
    rewards = []
    for trace in traces:
        trajectory = collect_episode(agent, video, trace, qoe=qoe,
                                     config=simulator_config, rng=rng,
                                     greedy=greedy)
        rewards.append(trajectory.mean_reward)
    return float(np.mean(rewards))


def evaluate_agent_batched(agent: ABRAgent, video: Video, traces: TraceSet,
                           qoe: Optional[QoEMetric] = None,
                           simulator_config: Optional[SimulatorConfig] = None,
                           ) -> float:
    """Greedy evaluation of ``agent`` on all traces in lockstep.

    Every session streams the same video, so all of them need exactly
    ``video.num_chunks`` decisions; each decision round stacks the per-session
    states and runs one batched policy forward.  Greedy decisions consume no
    randomness, so this returns the same per-trace decisions as the serial
    path (the simulator RNG is only touched by bandwidth noise, which the
    caller must disable to use this path).
    """
    qoe = qoe or LinearQoE(video.bitrates_kbps)
    sessions = [StreamingSession(video, trace, qoe=qoe, config=simulator_config)
                for trace in traces]
    for _ in range(video.num_chunks):
        states = np.stack([agent.state_of(session.observe())
                           for session in sessions], axis=0)
        probs = agent.batch_action_probabilities(states)
        actions = np.argmax(probs, axis=-1)
        for session, action in zip(sessions, actions):
            session.step(int(action))
    rewards = [session.result().mean_reward for session in sessions]
    return float(np.mean(rewards))
