"""ABR agent: binds a state function to an actor-critic network.

The agent is the unit that the Nada pipeline evaluates: a candidate *design*
is a (state function, network builder) pair, and instantiating it produces an
:class:`ABRAgent` that can act in the simulator or the emulator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..abr.env import Observation
from ..abr.networks import ActorCriticNetwork, original_network_builder
from ..abr.state import StateFunction
from .policy import greedy_action, sample_action

__all__ = ["ABRAgent"]


class ABRAgent:
    """An RL-based ABR policy: state function + actor-critic network."""

    def __init__(self, state_function: StateFunction, network: ActorCriticNetwork,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.state_function = state_function
        self.network = network
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_builder(cls, state_function: StateFunction, network_builder,
                     sample_observation: Observation, num_actions: int,
                     rng: Optional[np.random.Generator] = None) -> "ABRAgent":
        """Instantiate the network for the shape this state function produces.

        ``sample_observation`` is used to probe the state shape before the
        network is constructed — the same order of operations Nada uses when
        evaluating a generated design.
        """
        state_function.reset_shape()
        shape = state_function.probe_shape(sample_observation)
        network = network_builder(shape, num_actions, rng=rng)
        if not isinstance(network, ActorCriticNetwork):
            raise TypeError("network builder must return an ActorCriticNetwork")
        return cls(state_function, network, rng=rng)

    @classmethod
    def original(cls, sample_observation: Observation, num_actions: int,
                 rng: Optional[np.random.Generator] = None) -> "ABRAgent":
        """The unmodified Pensieve design (original state + original network)."""
        return cls.from_builder(StateFunction.original(), original_network_builder,
                                sample_observation, num_actions, rng=rng)

    # ------------------------------------------------------------------ #
    def state_of(self, observation: Observation) -> np.ndarray:
        """Compute the feature array for an observation."""
        return self.state_function(observation)

    def action_probabilities(self, state: np.ndarray) -> np.ndarray:
        """Inference forward pass; returns action probabilities.

        Dispatches through :meth:`ActorCriticNetwork.policy_probs`, which uses
        a pure-NumPy actor-tower forward when the architecture supports it and
        falls back to the autograd graph under ``no_grad`` otherwise.
        """
        return self.network.policy_probs(state[None, ...])[0]

    def batch_action_probabilities(self, states: np.ndarray) -> np.ndarray:
        """Action probabilities for a ``(batch, *state_shape)`` array of states."""
        return self.network.policy_probs(states)

    def act(self, observation: Observation, greedy: bool = False) -> int:
        """Choose a bitrate for the next chunk."""
        state = self.state_of(observation)
        probs = self.action_probabilities(state)
        if greedy:
            return greedy_action(probs)
        return sample_action(probs, self._rng)

    def act_with_state(self, observation: Observation,
                       greedy: bool = False) -> Tuple[int, np.ndarray]:
        """Like :meth:`act` but also returns the computed state (for rollouts)."""
        state = self.state_of(observation)
        probs = self.action_probabilities(state)
        action = greedy_action(probs) if greedy else sample_action(probs, self._rng)
        return action, state

    def act_from_probs(self, probabilities: np.ndarray,
                       greedy: bool = False) -> int:
        """Choose an action from externally computed probabilities.

        The multi-seed lockstep trainer computes every seed's probabilities in
        one batched forward and then samples each seed through this method, so
        the action draw consumes this agent's RNG exactly like
        :meth:`act_with_state` does on the serial path.
        """
        if greedy:
            return greedy_action(probabilities)
        return sample_action(probabilities, self._rng)

    def act_batch(self, observations, greedy: bool = False,
                  rngs=None) -> list:
        """Choose a bitrate for each of many *independent* observations.

        The whole batch goes through ONE :meth:`policy_probs` forward (a
        single GEMM on the compiled/folded inference path) instead of one
        Python forward per observation; row ``i`` of the batched forward is
        bit-identical to ``policy_probs`` on observation ``i`` alone, so the
        chosen actions match per-observation :meth:`act` calls exactly.

        ``rngs`` optionally supplies one ``np.random.Generator`` per
        observation for stochastic selection (the fleet harness passes each
        session's private generator so the draw discipline matches a serial
        per-session run); when omitted the agent's own RNG draws in batch
        order.
        """
        if not observations:
            return []
        states = np.stack([self.state_of(obs) for obs in observations])
        all_probs = self.network.policy_probs(states)
        if greedy:
            return [greedy_action(probs) for probs in all_probs]
        if rngs is None:
            return [sample_action(probs, self._rng) for probs in all_probs]
        return [sample_action(probs, rng)
                for probs, rng in zip(all_probs, rngs)]

    # ------------------------------------------------------------------ #
    def greedy_policy(self):
        """A plain ``observation -> action`` callable using greedy decisions."""
        def policy(observation: Observation) -> int:
            return self.act(observation, greedy=True)
        return policy

    def stochastic_policy(self):
        """A plain ``observation -> action`` callable that samples actions."""
        def policy(observation: Observation) -> int:
            return self.act(observation, greedy=False)
        return policy

    def seed(self, seed: int) -> None:
        """Re-seed the agent's action-sampling RNG."""
        self._rng = np.random.default_rng(seed)
