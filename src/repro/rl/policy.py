"""Categorical policy utilities shared by the actor-critic trainer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Tensor

__all__ = ["sample_action", "greedy_action", "log_prob_of", "action_entropy"]


def sample_action(probabilities: np.ndarray, rng: np.random.Generator) -> int:
    """Sample an action index from a probability vector.

    Probabilities are re-normalized defensively: generated architectures can
    produce slightly unnormalized outputs due to numerical error.  Sampling is
    one uniform draw inverted through the cumulative distribution, which is
    what ``rng.choice`` does without its per-call validation overhead (this
    sits on the per-chunk training hot path).
    """
    probs = np.maximum(np.asarray(probabilities, dtype=np.float64).ravel(), 0.0)
    cumulative = np.cumsum(probs)
    total = float(cumulative[-1])
    if not np.isfinite(total) or total <= 0:
        # Degenerate distribution: fall back to uniform.
        return min(int(rng.random() * len(probs)), len(probs) - 1)
    draw = rng.random() * total
    return min(int(np.searchsorted(cumulative, draw, side="right")),
               len(probs) - 1)


def greedy_action(probabilities: np.ndarray) -> int:
    """Return the most likely action index."""
    return int(np.argmax(np.asarray(probabilities).ravel()))


def log_prob_of(logits: Tensor, actions: np.ndarray) -> Tensor:
    """Log probability of each taken action under a batch of logits."""
    actions = np.asarray(actions, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    batch = log_probs.shape[0]
    return log_probs[np.arange(batch), actions]


def action_entropy(logits: Tensor) -> Tensor:
    """Mean entropy of the categorical distributions defined by ``logits``."""
    probs = logits.softmax(axis=-1)
    log_probs = logits.log_softmax(axis=-1)
    return -(probs * log_probs).sum(axis=-1).mean()
