"""Reinforcement-learning substrate: agents, rollouts and the A2C trainer."""

from .a2c import (A2CConfig, A2CTrainer, EpochStats, evaluate_agent,
                  evaluate_agent_batched)
from .agent import ABRAgent
from .policy import action_entropy, greedy_action, log_prob_of, sample_action
from .rollout import Trajectory, collect_episode, discounted_returns
from .schedules import ConstantSchedule, ExponentialDecaySchedule, LinearSchedule

__all__ = [
    "A2CConfig", "A2CTrainer", "EpochStats", "evaluate_agent",
    "evaluate_agent_batched",
    "ABRAgent",
    "sample_action", "greedy_action", "log_prob_of", "action_entropy",
    "Trajectory", "collect_episode", "discounted_returns",
    "ConstantSchedule", "LinearSchedule", "ExponentialDecaySchedule",
]
