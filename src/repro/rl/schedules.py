"""Hyper-parameter schedules used during RL training."""

from __future__ import annotations

__all__ = ["ConstantSchedule", "LinearSchedule", "ExponentialDecaySchedule"]


class ConstantSchedule:
    """Always returns the same value."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, step: int) -> float:
        return self.value


class LinearSchedule:
    """Linear interpolation from ``start`` to ``end`` over ``duration`` steps.

    Pensieve anneals the entropy weight linearly over training; this schedule
    reproduces that behaviour.
    """

    def __init__(self, start: float, end: float, duration: int) -> None:
        if duration < 1:
            raise ValueError("duration must be at least 1")
        self.start = float(start)
        self.end = float(end)
        self.duration = int(duration)

    def __call__(self, step: int) -> float:
        if step >= self.duration:
            return self.end
        fraction = max(step, 0) / self.duration
        return self.start + fraction * (self.end - self.start)


class ExponentialDecaySchedule:
    """Multiplicative decay: ``value = start * decay ** (step / period)``."""

    def __init__(self, start: float, decay: float, period: int = 1,
                 floor: float = 0.0) -> None:
        if period < 1:
            raise ValueError("period must be at least 1")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.start = float(start)
        self.decay = float(decay)
        self.period = int(period)
        self.floor = float(floor)

    def __call__(self, step: int) -> float:
        value = self.start * self.decay ** (max(step, 0) / self.period)
        return max(value, self.floor)
