"""Alternative early-stopping predictors and their comparison (§3.4).

The paper compares five mechanisms for predicting, from early evidence,
whether a design will end up among the top performers:

1. **Reward Only** — the 1D-CNN over the early reward trajectory
   (:class:`~repro.core.early_stopping.RewardTrajectoryClassifier`);
2. **Text Only** — an embedding of the design's source code fed to a
   classifier;
3. **Text + Reward** — both feature sets concatenated;
4. **Heuristic Max** — the maximum reward observed in the early prefix;
5. **Heuristic Last** — the last reward of the early prefix.

All predictors expose the same interface (fit on labelled designs, produce a
promise score per design); thresholds are tuned on the training split for a
0% false-negative rate, and :func:`cross_validate_predictors` reproduces the
paper's five-fold evaluation protocol (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..llm.embeddings import HashingEmbedder
from .early_stopping import (
    EarlyStoppingConfig,
    RewardTrajectoryClassifier,
    classification_rates,
    prepare_reward_prefix,
    top_fraction_labels,
    tune_threshold_zero_fnr,
)

__all__ = [
    "DesignSampleFeatures",
    "EarlyStopPredictor",
    "RewardOnlyPredictor",
    "TextOnlyPredictor",
    "TextRewardPredictor",
    "HeuristicMaxPredictor",
    "HeuristicLastPredictor",
    "PREDICTOR_REGISTRY",
    "make_predictor",
    "PredictorEvaluation",
    "evaluate_predictor",
    "cross_validate_predictors",
]


@dataclass
class DesignSampleFeatures:
    """The raw material every predictor may use for one design."""

    reward_prefix: Sequence[float]
    code: str
    final_score: float


class EarlyStopPredictor:
    """Interface: fit on labelled designs, score new designs."""

    name = "base"

    def fit(self, samples: Sequence[DesignSampleFeatures]) -> "EarlyStopPredictor":
        raise NotImplementedError

    def predict_scores(self, samples: Sequence[DesignSampleFeatures]) -> np.ndarray:
        raise NotImplementedError

    @property
    def threshold(self) -> float:
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# Reward Only
# --------------------------------------------------------------------------- #
class RewardOnlyPredictor(EarlyStopPredictor):
    """The paper's chosen mechanism (1D-CNN over the reward prefix)."""

    name = "reward_only"

    def __init__(self, config: Optional[EarlyStoppingConfig] = None) -> None:
        self.config = config or EarlyStoppingConfig()
        self._classifier = RewardTrajectoryClassifier(self.config)

    def fit(self, samples: Sequence[DesignSampleFeatures]) -> "RewardOnlyPredictor":
        self._classifier.fit([s.reward_prefix for s in samples],
                             [s.final_score for s in samples])
        return self

    def predict_scores(self, samples: Sequence[DesignSampleFeatures]) -> np.ndarray:
        return self._classifier.predict_scores([s.reward_prefix for s in samples])

    @property
    def threshold(self) -> float:
        if self._classifier.threshold is None:
            raise RuntimeError("predictor has not been fitted")
        return self._classifier.threshold


# --------------------------------------------------------------------------- #
# Dense classifier over arbitrary feature vectors (shared by text predictors)
# --------------------------------------------------------------------------- #
class _DenseClassifier:
    """Small MLP binary classifier over fixed-size feature vectors."""

    def __init__(self, input_dim: int, hidden_units: int, epochs: int,
                 learning_rate: float, seed: int) -> None:
        rng = np.random.default_rng(seed)
        self.hidden = nn.Dense(input_dim, hidden_units, activation="relu", rng=rng)
        self.out = nn.Dense(hidden_units, 1, rng=rng)
        self.epochs = epochs
        self.learning_rate = learning_rate
        self._rng = rng

    def _forward(self, x: nn.Tensor) -> nn.Tensor:
        batch = x.shape[0]
        return self.out(self.hidden(x)).reshape(batch).sigmoid()

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        params = self.hidden.parameters() + self.out.parameters()
        optimizer = nn.Adam(params, lr=self.learning_rate)
        n = features.shape[0]
        batch_size = min(32, n)
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                predictions = self._forward(nn.tensor(features[idx]))
                loss = nn.binary_cross_entropy(predictions, nn.tensor(labels[idx]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    def predict(self, features: np.ndarray) -> np.ndarray:
        with nn.no_grad():
            outputs = self._forward(nn.tensor(features))
        return outputs.numpy().copy()


class _FeatureClassifierPredictor(EarlyStopPredictor):
    """Base for predictors that classify a fixed-size feature vector."""

    def __init__(self, top_fraction: float = 0.01, smoothed_fraction: float = 0.20,
                 hidden_units: int = 32, epochs: int = 200,
                 learning_rate: float = 5e-3, seed: int = 0) -> None:
        self.top_fraction = top_fraction
        self.smoothed_fraction = smoothed_fraction
        self.hidden_units = hidden_units
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self._classifier: Optional[_DenseClassifier] = None
        self._threshold: Optional[float] = None
        self._feature_mean: Optional[np.ndarray] = None
        self._feature_std: Optional[np.ndarray] = None

    # Subclasses implement the feature extraction.
    def _features(self, samples: Sequence[DesignSampleFeatures]) -> np.ndarray:
        raise NotImplementedError

    def fit(self, samples: Sequence[DesignSampleFeatures]) -> "EarlyStopPredictor":
        features = self._features(samples)
        self._feature_mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0] = 1.0
        self._feature_std = std
        features = (features - self._feature_mean) / self._feature_std
        final_scores = [s.final_score for s in samples]
        smoothed = top_fraction_labels(final_scores, self.smoothed_fraction)
        strict = top_fraction_labels(final_scores, self.top_fraction)
        self._classifier = _DenseClassifier(features.shape[1], self.hidden_units,
                                            self.epochs, self.learning_rate, self.seed)
        self._classifier.fit(features, smoothed.astype(np.float64))
        scores = self._classifier.predict(features)
        self._threshold = tune_threshold_zero_fnr(scores, strict)
        return self

    def predict_scores(self, samples: Sequence[DesignSampleFeatures]) -> np.ndarray:
        if self._classifier is None:
            raise RuntimeError("predictor has not been fitted")
        features = self._features(samples)
        features = (features - self._feature_mean) / self._feature_std
        return self._classifier.predict(features)

    @property
    def threshold(self) -> float:
        if self._threshold is None:
            raise RuntimeError("predictor has not been fitted")
        return self._threshold


class TextOnlyPredictor(_FeatureClassifierPredictor):
    """Classifies a code embedding only (no training rewards)."""

    name = "text_only"

    def __init__(self, embedding_dim: int = 128, **kwargs) -> None:
        super().__init__(**kwargs)
        self._embedder = HashingEmbedder(dimension=embedding_dim)

    def _features(self, samples: Sequence[DesignSampleFeatures]) -> np.ndarray:
        return self._embedder.embed_batch([s.code for s in samples])


class TextRewardPredictor(_FeatureClassifierPredictor):
    """Classifies the concatenation of the code embedding and reward prefix."""

    name = "text_reward"

    def __init__(self, embedding_dim: int = 128, reward_prefix_length: int = 10,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self._embedder = HashingEmbedder(dimension=embedding_dim)
        self.reward_prefix_length = reward_prefix_length

    def _features(self, samples: Sequence[DesignSampleFeatures]) -> np.ndarray:
        embeddings = self._embedder.embed_batch([s.code for s in samples])
        rewards = np.stack([prepare_reward_prefix(s.reward_prefix,
                                                  self.reward_prefix_length)
                            for s in samples])
        return np.concatenate([embeddings, rewards], axis=1)


# --------------------------------------------------------------------------- #
# Heuristics
# --------------------------------------------------------------------------- #
class _HeuristicPredictor(EarlyStopPredictor):
    """Thresholded scalar heuristics over the reward prefix."""

    def __init__(self, top_fraction: float = 0.01,
                 reward_prefix_length: int = 10) -> None:
        self.top_fraction = top_fraction
        self.reward_prefix_length = reward_prefix_length
        self._threshold: Optional[float] = None

    def _score_one(self, prefix: Sequence[float]) -> float:
        raise NotImplementedError

    def predict_scores(self, samples: Sequence[DesignSampleFeatures]) -> np.ndarray:
        return np.array([
            self._score_one(prepare_reward_prefix(s.reward_prefix,
                                                  self.reward_prefix_length))
            for s in samples
        ])

    def fit(self, samples: Sequence[DesignSampleFeatures]) -> "EarlyStopPredictor":
        scores = self.predict_scores(samples)
        strict = top_fraction_labels([s.final_score for s in samples],
                                     self.top_fraction)
        self._threshold = tune_threshold_zero_fnr(scores, strict)
        return self

    @property
    def threshold(self) -> float:
        if self._threshold is None:
            raise RuntimeError("predictor has not been fitted")
        return self._threshold


class HeuristicMaxPredictor(_HeuristicPredictor):
    """Stops designs whose best early reward is low."""

    name = "heuristic_max"

    def _score_one(self, prefix: Sequence[float]) -> float:
        return float(np.max(prefix))


class HeuristicLastPredictor(_HeuristicPredictor):
    """Stops designs whose most recent early reward is low."""

    name = "heuristic_last"

    def _score_one(self, prefix: Sequence[float]) -> float:
        return float(prefix[-1])


PREDICTOR_REGISTRY = {
    "reward_only": RewardOnlyPredictor,
    "text_only": TextOnlyPredictor,
    "text_reward": TextRewardPredictor,
    "heuristic_max": HeuristicMaxPredictor,
    "heuristic_last": HeuristicLastPredictor,
}


def make_predictor(name: str, **kwargs) -> EarlyStopPredictor:
    """Instantiate an early-stopping predictor by name."""
    key = name.lower()
    if key not in PREDICTOR_REGISTRY:
        raise KeyError(f"unknown predictor {name!r}; known: {sorted(PREDICTOR_REGISTRY)}")
    return PREDICTOR_REGISTRY[key](**kwargs)


# --------------------------------------------------------------------------- #
# Evaluation protocol (Figure 5)
# --------------------------------------------------------------------------- #
@dataclass
class PredictorEvaluation:
    """FNR/TNR of one predictor, averaged over validation folds."""

    name: str
    false_negative_rate: float
    true_negative_rate: float
    fold_details: List[Dict[str, float]] = field(default_factory=list)


def evaluate_predictor(predictor: EarlyStopPredictor,
                       train: Sequence[DesignSampleFeatures],
                       test: Sequence[DesignSampleFeatures],
                       top_fraction: float = 0.01) -> Dict[str, float]:
    """Fit on ``train`` and compute FNR/TNR on ``test``."""
    predictor.fit(train)
    scores = predictor.predict_scores(test)
    labels = top_fraction_labels([s.final_score for s in test], top_fraction)
    return classification_rates(scores, labels, predictor.threshold)


def cross_validate_predictors(samples: Sequence[DesignSampleFeatures],
                              predictor_names: Sequence[str] = tuple(PREDICTOR_REGISTRY),
                              num_folds: int = 5,
                              train_fraction_per_fold: float = 0.2,
                              top_fraction: float = 0.01,
                              seed: int = 0,
                              predictor_kwargs: Optional[Dict[str, dict]] = None,
                              ) -> List[PredictorEvaluation]:
    """Reproduce the paper's five-fold protocol.

    In each fold, ``train_fraction_per_fold`` of the designs (20%, i.e. 400 of
    2000 in the paper) are used to fit each predictor and the remaining
    designs are used for evaluation; FNR and TNR are averaged across folds.
    """
    if len(samples) < 10:
        raise ValueError("need at least 10 designs for cross-validation")
    predictor_kwargs = predictor_kwargs or {}
    rng = np.random.default_rng(seed)
    n = len(samples)
    results: List[PredictorEvaluation] = []
    fold_indices = [rng.permutation(n) for _ in range(num_folds)]
    train_size = max(4, int(round(train_fraction_per_fold * n)))

    for name in predictor_names:
        fold_details: List[Dict[str, float]] = []
        for indices in fold_indices:
            train_idx = indices[:train_size]
            test_idx = indices[train_size:]
            train = [samples[i] for i in train_idx]
            test = [samples[i] for i in test_idx]
            predictor = make_predictor(name, **predictor_kwargs.get(name, {}))
            fold_details.append(evaluate_predictor(predictor, train, test,
                                                   top_fraction=top_fraction))
        results.append(PredictorEvaluation(
            name=name,
            false_negative_rate=float(np.mean([f["false_negative_rate"]
                                               for f in fold_details])),
            true_negative_rate=float(np.mean([f["true_negative_rate"]
                                              for f in fold_details])),
            fold_details=fold_details,
        ))
    return results
