"""Design generation: driving an LLM to produce candidate code blocks.

The generator sends the prompts from :mod:`repro.core.prompts` to any
:class:`~repro.llm.base.LLMClient`, extracts the code block from each
response, and wraps it into a :class:`~repro.core.design.Design`.  Responses
without a usable code block are recorded as compilation-rejected designs so
that pool statistics stay honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..llm.base import LLMClient, first_code_block
from .design import CandidatePool, Design, DesignKind, DesignStatus
from .prompts import PromptConfig, build_network_prompt, build_state_prompt

__all__ = ["GenerationConfig", "DesignGenerator"]


@dataclass(frozen=True)
class GenerationConfig:
    """Controls one generation campaign."""

    prompt: PromptConfig = PromptConfig()
    temperature: float = 1.0
    #: Base seed; each request uses ``base_seed + index`` for reproducibility.
    base_seed: Optional[int] = None


class DesignGenerator:
    """Generates candidate designs with a single LLM backend."""

    def __init__(self, client: LLMClient,
                 config: Optional[GenerationConfig] = None) -> None:
        self.client = client
        self.config = config or GenerationConfig()

    # ------------------------------------------------------------------ #
    def generate(self, kind: DesignKind, count: int) -> List[Design]:
        """Generate ``count`` designs of ``kind`` (state or network)."""
        kind = DesignKind(kind)
        if count < 1:
            raise ValueError("count must be at least 1")
        if kind == DesignKind.STATE:
            messages = build_state_prompt(self.config.prompt)
        else:
            messages = build_network_prompt(self.config.prompt)

        designs: List[Design] = []
        for index in range(count):
            seed = (None if self.config.base_seed is None
                    else self.config.base_seed + index)
            completion = self.client.complete(messages,
                                              temperature=self.config.temperature,
                                              seed=seed)
            code = first_code_block(completion.text)
            tags = tuple(completion.metadata.get("tags", ()))
            if code is None:
                # A response with no code block cannot be evaluated; count it
                # as failing the compilation check.
                design = Design(kind=kind, code=completion.text or "<empty response>",
                                origin_model=completion.model, tags=tags)
                design.mark_rejected(DesignStatus.REJECTED_COMPILATION,
                                     "response contained no code block")
            else:
                design = Design(kind=kind, code=code,
                                origin_model=completion.model, tags=tags)
            designs.append(design)
        return designs

    def generate_states(self, count: int) -> List[Design]:
        """Generate ``count`` state-representation designs."""
        return self.generate(DesignKind.STATE, count)

    def generate_networks(self, count: int) -> List[Design]:
        """Generate ``count`` neural-network-architecture designs."""
        return self.generate(DesignKind.NETWORK, count)

    def populate_pool(self, pool: CandidatePool, kind: DesignKind,
                      count: int) -> List[Design]:
        """Generate designs and add them to an existing pool."""
        designs = self.generate(kind, count)
        pool.extend(designs)
        return designs
