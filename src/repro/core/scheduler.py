"""The campaign scheduler: one work-graph execution layer for all evaluation.

The paper's headline experiment is a *campaign*: pools of LLM-generated
designs scored across several network environments under the §3.1 protocol.
This module is the single substrate every campaign runs on.  Its unit of
work is a **job** — (state design, network design, environment, seed batch)
— and it composes the repository's two execution engines instead of choosing
one:

* **inside** a job, all seeds train in lockstep through
  :class:`~repro.rl.a2c.MultiSeedA2CTrainer` (stacked per-seed weights, one
  batched fused update per round) whenever the design supports it;
* **across** jobs, work fans out over the
  :func:`~repro.core.parallel.parallel_map` process pool with an
  order-preserving merge.

Because each job runs exactly the code it would run serially (the worker
only changes *where* the computation happens), campaign scores are
bit-identical for serial, 1-worker and N-worker executions — the
equivalence suite in ``tests/test_scheduler.py`` pins this.

When a :class:`~repro.core.results.ResultStore` is attached, every job's
per-seed :class:`~repro.core.evaluation.TrainingRun` records are looked up
before execution and persisted after it, so repeated campaigns skip
already-scored work and interrupted campaigns resume.  Jobs carrying an
early-stopping classifier bypass the store: their outcome depends on the
fitted classifier state, which is not part of the key schema.

Call sites (:class:`~repro.core.evaluation.TestScoreProtocol`,
:class:`~repro.core.pipeline.NadaPipeline`, the ``analysis.experiments``
sweeps and the CLI) never touch the process pool directly — they build jobs
and hand them to a scheduler.
"""

from __future__ import annotations

import signal
import threading
import time
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, TYPE_CHECKING, TypeVar)

import numpy as np

from .. import nn
from ..abr.networks import fast_inference_enabled, set_fast_inference
from ..log import get_logger
from . import faults, telemetry
from .faults import FaultPlan
from .parallel import (ParallelConfig, TaskOutcome, parallel_map,
                       run_resilient)
from .results import (Lease, ResultStore, context_fingerprint,
                      design_fingerprint, result_key)

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from .design import Design
    from .early_stopping import RewardTrajectoryClassifier
    from .evaluation import DesignTrainer, TrainingRun

__all__ = [
    "EvaluationJob",
    "JobResult",
    "CampaignScheduler",
    "protocol_score",
]

T = TypeVar("T")
R = TypeVar("R")

logger = get_logger("scheduler")


@dataclass(frozen=True)
class EvaluationJob:
    """One unit of campaign work: a design pair × environment × seed batch.

    The job owns everything needed to train its seed batch to completion in
    an arbitrary worker process: the (picklable)
    :class:`~repro.core.evaluation.DesignTrainer` carries the environment
    (video, trace splits, QoE metric, schedule); the designs carry the code
    under test; ``seeds`` is the batch trained in lockstep inside the worker.
    """

    trainer: "DesignTrainer"
    state_design: Optional["Design"]
    network_design: Optional["Design"]
    seeds: Tuple[int, ...]
    early_stopping: Optional["RewardTrajectoryClassifier"] = None
    #: Human-readable environment label recorded in the result store.
    environment: str = ""

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("a job needs at least one seed")


@dataclass
class JobResult:
    """Outcome of one job: per-seed runs plus the protocol aggregate."""

    job: EvaluationJob
    runs: List["TrainingRun"]
    #: Median over seeds of last-k checkpoint means (the §3.1 test score).
    score: float
    #: True when every seed was served from the result store.
    cached: bool = False
    #: True when this job was collapsed onto an identical job in the same
    #: submission and its result fanned back from that single execution.
    deduplicated: bool = False
    #: ``"ok"`` for a complete result, ``"quarantined"`` when the job kept
    #: failing past the retry budget (``runs`` then holds whatever seed
    #: batches did complete; ``score`` is ``-inf``).
    status: str = "ok"
    #: The last failure message for a quarantined job.
    error: Optional[str] = None
    #: Training attempts consumed by the slowest-to-succeed seed batch
    #: (1 for a clean first-try execution, 0 for a store hit).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def protocol_score(runs: Sequence["TrainingRun"], last_k: int) -> float:
    """The §3.1 aggregation: median over seeds of last-``k`` checkpoint means.

    Early-stopped seeds are excluded unless every seed stopped (in which
    case the truncated runs are all the evidence there is).
    """
    completed = [run for run in runs if not run.early_stopped]
    scoring_runs = completed if completed else list(runs)
    per_seed = [run.smoothed_score(last_k) for run in scoring_runs]
    finite = [score for score in per_seed if np.isfinite(score)]
    return float(np.median(finite)) if finite else float("-inf")


def _job_label(job: EvaluationJob) -> str:
    """Human-readable design label for telemetry attributes."""
    parts = []
    if job.state_design is not None:
        parts.append(f"state:{job.state_design.design_id}")
    if job.network_design is not None:
        parts.append(f"net:{job.network_design.design_id}")
    return "+".join(parts) or "original"


def _job_fault_key(job: EvaluationJob) -> str:
    """The key fault rules match against for job-level sites."""
    seeds = ",".join(str(seed) for seed in job.seeds)
    return f"{job.environment}|{_job_label(job)}|seeds={seeds}"


# --------------------------------------------------------------------------- #
# Worker payloads.  Spawned workers start from a fresh interpreter, so the
# process-global engine toggles — tensor dtype, fast inference, the kernel
# compiler and its numerics mode — ride along with every task and are
# re-applied before any computation.
# --------------------------------------------------------------------------- #
def _engine_state() -> Tuple[str, bool, bool, str]:
    return (str(nn.get_default_dtype()), fast_inference_enabled(),
            nn.compilation_enabled(), nn.get_numerics())


def _apply_engine_state(state: Tuple[str, bool, bool, str]) -> None:
    dtype, fast, compiled, numerics = state
    nn.set_default_dtype(dtype)
    set_fast_inference(fast)
    nn.set_compilation(compiled)
    nn.set_numerics(numerics)


@dataclass(frozen=True)
class _JobTask:
    job: EvaluationJob
    engine: Tuple[str, bool, bool, str]
    #: Whether the parent has telemetry enabled.  Worker processes start
    #: from a fresh interpreter with telemetry off; when set, the task runs
    #: inside :func:`telemetry.capture` and ships its events back with the
    #: result for the parent's order-preserving merge.  The serial path runs
    #: the exact same capture so event streams match across worker counts.
    capture_telemetry: bool = False
    #: The active fault plan rides to workers with the task, exactly like
    #: the engine-state tuple, so injection sites fire identically no
    #: matter where the job lands.
    fault_plan: Optional[FaultPlan] = None

    def fault_key(self) -> str:
        """The key ``rpc.*`` fault rules match for this task (remote path)."""
        return _job_fault_key(self.job)


def _run_job_task(
        task: _JobTask, attempt: int = 0,
) -> Tuple[List["TrainingRun"], Optional[List[telemetry.TelemetryEvent]]]:
    """Worker entry point: train one job's seed batch, in lockstep if possible."""
    _apply_engine_state(task.engine)
    if task.fault_plan is not None:
        faults.install_plan(task.fault_plan)
    job = task.job
    faults.perturb_job(_job_fault_key(job), attempt)
    if not task.capture_telemetry:
        runs = job.trainer.run_seeds(job.state_design, job.network_design,
                                     list(job.seeds),
                                     early_stopping=job.early_stopping)
        return runs, None
    with telemetry.capture() as local:
        with local.span("job.train", {
                "environment": job.environment,
                "design": _job_label(job),
                "seeds": ",".join(str(seed) for seed in job.seeds)}):
            runs = job.trainer.run_seeds(job.state_design, job.network_design,
                                         list(job.seeds),
                                         early_stopping=job.early_stopping)
    return runs, local.events


@dataclass(frozen=True)
class _MapTask:
    fn: Callable[[Any], Any]
    item: Any
    engine: Tuple[str, bool, bool, str]
    capture_telemetry: bool = False


def _run_map_task(
        task: _MapTask,
) -> Tuple[Any, Optional[List[telemetry.TelemetryEvent]]]:
    _apply_engine_state(task.engine)
    if not task.capture_telemetry:
        return task.fn(task.item), None
    with telemetry.capture() as local:
        with local.span("job.map"):
            result = task.fn(task.item)
    return result, local.events


class CampaignScheduler:
    """Executes evaluation jobs over the worker pool, through the store.

    The scheduler is deliberately stateless between :meth:`run` calls apart
    from the attached store and memoized context fingerprints — a campaign
    driver expresses its stage structure by calling :meth:`run` once per
    stage with every ready job, and the scheduler takes care of placement,
    caching and the order-preserving merge.
    """

    def __init__(self, parallel: Optional[ParallelConfig] = None,
                 store: Optional[ResultStore] = None,
                 executor: Optional[Any] = None) -> None:
        self.parallel = parallel or ParallelConfig()
        self.store = store
        #: Optional execution transport (e.g.
        #: :class:`~repro.core.distributed.RemoteExecutor`).  Anything with
        #: ``run(fn, items, config, should_stop=None, heartbeat=None) ->
        #: List[TaskOutcome]`` — the :func:`run_resilient` signature — can
        #: stand in for the local process pool; results must preserve
        #: submission order so the telemetry/record merge is unchanged.
        self.executor = executor
        #: Context fingerprints are O(dataset) to compute, so they are
        #: memoized per live trainer instance (trainers are reused across
        #: jobs).  Weak keys mean a recycled object address can never serve
        #: another trainer's fingerprint, and the per-trainer entries are
        #: keyed by the inputs that can change between runs (dtype, engine
        #: toggles, environment label) so toggling any recomputes.
        self._contexts: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        #: Memoized "does this design train in lockstep?" probes, keyed by
        #: design fingerprint and the engine toggles the answer depends on.
        self._lockstep_probe: Dict[Tuple, bool] = {}
        #: Set by :meth:`request_shutdown` (and the SIGINT/SIGTERM handlers
        #: installed around :meth:`run`): in-flight jobs drain, queued jobs
        #: are abandoned, completed results persist, then :meth:`run`
        #: raises ``KeyboardInterrupt``.
        self._shutdown = threading.Event()
        #: Every quarantined :class:`JobResult` across this scheduler's
        #: lifetime, in completion order — the campaign's failure record.
        self.failures: List[JobResult] = []

    # ------------------------------------------------------------------ #
    # Graceful shutdown.
    # ------------------------------------------------------------------ #
    def request_shutdown(self) -> None:
        """Ask a running campaign to stop: drain in-flight, persist, raise."""
        self._shutdown.set()

    @contextmanager
    def _signal_guard(self) -> Iterator[None]:
        """Route SIGINT/SIGTERM to a graceful drain while :meth:`run` is live.

        The first signal sets the shutdown flag (in-flight jobs finish and
        persist); a second one aborts hard via ``KeyboardInterrupt``.  Only
        the main thread can own signal handlers — elsewhere the guard is a
        no-op and shutdown remains available through
        :meth:`request_shutdown`.
        """
        if threading.current_thread() is not threading.main_thread():
            yield
            return

        def handler(signum: int, frame: Any) -> None:
            if self._shutdown.is_set():
                raise KeyboardInterrupt
            self._shutdown.set()
            logger.warning(
                "received %s: draining in-flight jobs and persisting "
                "completed results (signal again to abort hard)",
                signal.Signals(signum).name)

        previous: Dict[int, Any] = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover - exotic host
                pass
        try:
            yield
        finally:
            for signum, old in previous.items():
                try:
                    signal.signal(signum, old)
                except (ValueError, OSError):  # pragma: no cover
                    pass

    def failure_summary(self) -> Optional[str]:
        """A per-job table of quarantined work, or None when all jobs passed."""
        if not self.failures:
            return None
        lines = [f"{len(self.failures)} job(s) quarantined after retries:"]
        for result in self.failures:
            job = result.job
            seeds = ",".join(str(seed) for seed in job.seeds)
            lines.append(
                f"  - {job.environment or '<env>'} | {_job_label(job)} | "
                f"seeds={seeds} | attempts={result.attempts} | "
                f"{result.error or 'unknown failure'}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    def _context(self, job: EvaluationJob) -> str:
        variant = (str(nn.get_default_dtype()), fast_inference_enabled(),
                   nn.compilation_enabled(), nn.get_numerics(),
                   job.environment)
        per_trainer = self._contexts.setdefault(job.trainer, {})
        fingerprint = per_trainer.get(variant)
        if fingerprint is None:
            if per_trainer:
                # A fingerprint existed but for a different engine variant:
                # the memoized context was invalidated by a dtype/toggle flip.
                telemetry.counter("store.context_invalidated")
            fingerprint = context_fingerprint(job.trainer, job.environment)
            per_trainer[variant] = fingerprint
        return fingerprint

    def _job_keys(self, job: EvaluationJob) -> Optional[List[str]]:
        """Per-seed store keys, or None when the job is not cacheable."""
        if self.store is None or job.early_stopping is not None:
            return None
        context = self._context(job)
        designs = design_fingerprint(job.state_design, job.network_design)
        return [result_key(context, designs, seed) for seed in job.seeds]

    def _lookup(self, job: EvaluationJob,
                keys: Optional[List[str]]) -> Optional[List["TrainingRun"]]:
        """All-or-nothing cache read: a job resumes only as a whole batch.

        Counters are committed once the batch outcome is known — records
        probed before a miss aborts the batch are not counted as hits,
        since their contents are discarded and retrained.  Loaded runs are
        re-stamped with the requesting config's ``last_k_checkpoints``
        (excluded from the key because it only shapes aggregation), making
        a cached run indistinguishable from a freshly trained one.
        """
        if keys is None:
            return None
        runs = []
        for key in keys:
            run = self.store.peek_run(key)
            if run is None:
                self.store.misses += 1
                self.store.partial_probes += len(runs)
                telemetry.counter("store.miss")
                if runs:
                    telemetry.counter("store.partial_probe", len(runs))
                return None
            runs.append(run)
        self.store.hits += len(runs)
        telemetry.counter("store.hit", len(runs))
        for run in runs:
            run.last_k_checkpoints = job.trainer.config.last_k_checkpoints
        return runs

    def _persist(self, job: EvaluationJob, keys: Optional[List[str]],
                 runs: Sequence["TrainingRun"],
                 leases_by_key: Optional[Dict[str, Lease]] = None) -> None:
        if keys is None:
            return
        meta = {
            "environment": job.environment,
            "state_design": job.state_design.design_id
            if job.state_design is not None else "original",
            "network_design": job.network_design.design_id
            if job.network_design is not None else "original",
        }
        leases_by_key = leases_by_key or {}
        for key, run in zip(keys, runs):
            self.store.put_run(key, run, meta={**meta, "seed": run.seed},
                               lease=leases_by_key.get(key))

    def _splits_without_cost(self, job: EvaluationJob) -> bool:
        """True when per-seed fan-out cannot lose lockstep batching.

        Jobs whose training falls to the per-seed path regardless — an
        early-stopping classifier attached, lockstep disabled in the
        config, or an architecture the kernel compiler cannot lower (since
        PR 5 generated designs *do* lockstep whenever
        :mod:`repro.nn.compile` can lower them, so only exotic codegen
        output still splits) — gain worker-level seed parallelism by
        splitting into singleton seed batches; records are identical
        either way because the per-seed path is exactly what runs inside
        the whole batch.  Lockstep-eligible jobs stay whole so the stacked
        engine applies inside their worker.
        """
        if len(job.seeds) <= 1:
            return False
        if (job.early_stopping is not None
                or not job.trainer.config.lockstep_training):
            return True
        if job.network_design is None:
            return False
        return not self._design_locksteps(job)

    def _design_locksteps(self, job: EvaluationJob) -> bool:
        """Memoized probe: would this job's design train in lockstep?

        Instantiating the design's network (cheap — weight init only) is
        the only way to know whether the kernel planner can lower it; the
        answer is cached per design fingerprint and engine-toggle state so
        a campaign pays for each distinct design once.
        """
        key = (design_fingerprint(job.state_design, job.network_design),
               nn.compilation_enabled(), fast_inference_enabled())
        cached = self._lockstep_probe.get(key)
        if cached is None:
            cached = bool(job.trainer.supports_lockstep(job.state_design,
                                                        job.network_design))
            self._lockstep_probe[key] = cached
        return cached

    @staticmethod
    def _dedupe_key(job: EvaluationJob) -> Optional[Tuple]:
        """Collapse key for identical jobs in one submission, or None.

        Two jobs collapse when they share the trainer instance (hence the
        evaluation context), the environment label, the design pair's
        content fingerprint and the seed batch.  Jobs carrying an
        early-stopping classifier never collapse: their outcome depends on
        fitted classifier state, which the key cannot see.
        """
        if job.early_stopping is not None:
            return None
        return (id(job.trainer), job.environment,
                design_fingerprint(job.state_design, job.network_design),
                tuple(job.seeds))

    def run(self, jobs: Sequence[EvaluationJob]) -> List[JobResult]:
        """Execute a batch of jobs; results come back in submission order.

        Cached jobs are answered from the store without touching the pool.
        Identical (design, context, seed batch) jobs within the submission
        collapse to a single execution whose result fans back to every
        requester (``JobResult.deduplicated`` marks the copies).  The
        remainder fan out across worker processes, each training its seed
        batch in lockstep inside the worker.  Jobs that would train
        per-seed anyway additionally split into per-seed work items under
        fan-out, so seeds of one design can occupy several workers when
        lockstep has nothing to lose.  Scores are bit-identical to running
        every job serially in submission order.

        A job that keeps failing past the retry budget comes back
        ``status="quarantined"`` with ``score=-inf`` instead of raising —
        the batch completes with partial results (graceful degradation).
        SIGINT/SIGTERM (or :meth:`request_shutdown`) drains in-flight jobs,
        persists their records, then raises ``KeyboardInterrupt``.
        """
        tel = telemetry.get_telemetry()
        jobs = list(jobs)
        self._shutdown.clear()
        if tel is not None:
            tel.counter("scheduler.jobs.submitted", len(jobs))
        with self._signal_guard():
            with telemetry.span(
                    "scheduler.run",
                    {"jobs": len(jobs)} if tel is not None else None):
                results = self._run_batch(jobs, tel)
        return results

    def _run_batch(self, jobs: List[EvaluationJob],
                   tel: Optional[telemetry.Telemetry]) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending: List[Tuple[int, EvaluationJob, Optional[List[str]]]] = []
        aliases: Dict[int, int] = {}  # duplicate index -> primary index
        primary_of: Dict[Tuple, int] = {}
        for index, job in enumerate(jobs):
            dedupe = self._dedupe_key(job)
            if dedupe is not None:
                primary = primary_of.get(dedupe)
                if primary is not None:
                    aliases[index] = primary
                    if tel is not None:
                        tel.counter("scheduler.jobs.deduplicated")
                    continue
                primary_of[dedupe] = index
            keys = self._job_keys(job)
            cached_runs = self._lookup(job, keys)
            if cached_runs is not None:
                if tel is not None:
                    tel.counter("scheduler.jobs.store_hit")
                score = protocol_score(cached_runs,
                                       job.trainer.config.last_k_checkpoints)
                results[index] = JobResult(job=job, runs=cached_runs,
                                           score=score, cached=True,
                                           attempts=0)
            else:
                pending.append((index, job, keys))

        logger.debug(
            "scheduler pass: %d job(s) submitted, %d cached, %d deduplicated, "
            "%d to train", len(jobs),
            sum(1 for r in results if r is not None and r.cached),
            len(aliases), len(pending))

        # Claim a lease on every store key before training so a second
        # process sharing the store cannot execute the same (context,
        # design, seed) concurrently.  Jobs whose keys are all held
        # elsewhere are deferred: they wait for the holder to publish (or
        # die) instead of duplicating its work.
        executable: List[Tuple[int, EvaluationJob, Optional[List[str]],
                               List[Lease]]] = []
        deferred: List[Tuple[int, EvaluationJob, List[str]]] = []
        for index, job, keys in pending:
            if keys is None:
                executable.append((index, job, None, []))
                continue
            leases = self._claim_all(keys)
            if leases is None:
                deferred.append((index, job, keys))
                if tel is not None:
                    tel.counter("scheduler.jobs.lease_deferred")
                continue
            # Another process may have published between our lookup miss
            # and the claim; honour its records instead of retraining.
            cached_runs = self._peek_batch(job, keys)
            if cached_runs is not None:
                for lease in leases:
                    self.store.release(lease)
                self._commit_hit(job, cached_runs, results, index, tel)
                continue
            executable.append((index, job, keys, leases))

        interrupted = False
        if executable:
            interrupted = self._execute_pending(executable, results, tel)
        if deferred:
            if interrupted or self._shutdown.is_set():
                interrupted = True
            else:
                interrupted = self._await_deferred(deferred, results, tel)

        for index, primary in aliases.items():
            source = results[primary]
            if source is None:
                continue  # primary interrupted; no result to fan back
            results[index] = JobResult(job=jobs[index], runs=source.runs,
                                       score=source.score,
                                       cached=source.cached,
                                       deduplicated=True,
                                       status=source.status,
                                       error=source.error,
                                       attempts=source.attempts)

        if interrupted or self._shutdown.is_set():
            settled = sum(1 for result in results if result is not None)
            logger.warning(
                "graceful shutdown: %d/%d job result(s) settled; completed "
                "work was persisted to the store", settled, len(jobs))
            if tel is not None:
                tel.counter("scheduler.interrupted")
            raise KeyboardInterrupt(
                "campaign interrupted; completed results were persisted")
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Lease coordination.
    # ------------------------------------------------------------------ #
    def _claim_all(self, keys: List[str]) -> Optional[List[Lease]]:
        """Claim every key or none: partial holds are released on failure."""
        leases: List[Lease] = []
        for key in keys:
            lease = self.store.claim(key)
            if lease is None:
                for held in leases:
                    self.store.release(held)
                return None
            leases.append(lease)
        return leases

    def _peek_batch(self, job: EvaluationJob,
                    keys: List[str]) -> Optional[List["TrainingRun"]]:
        """Counter-free all-or-nothing read, for lease polling."""
        runs = []
        for key in keys:
            run = self.store.peek_run(key)
            if run is None:
                return None
            runs.append(run)
        for run in runs:
            run.last_k_checkpoints = job.trainer.config.last_k_checkpoints
        return runs

    def _commit_hit(self, job: EvaluationJob, runs: List["TrainingRun"],
                    results: List[Optional[JobResult]], index: int,
                    tel: Optional[telemetry.Telemetry]) -> None:
        """Account and record a batch served by another process's records."""
        self.store.hits += len(runs)
        telemetry.counter("store.hit", len(runs))
        if tel is not None:
            tel.counter("scheduler.jobs.store_hit")
        score = protocol_score(runs, job.trainer.config.last_k_checkpoints)
        results[index] = JobResult(job=job, runs=runs, score=score,
                                   cached=True, attempts=0)

    def _await_deferred(self, deferred: List[Tuple[int, EvaluationJob,
                                                   List[str]]],
                        results: List[Optional[JobResult]],
                        tel: Optional[telemetry.Telemetry]) -> bool:
        """Wait for lease holders to publish; steal and execute if they die.

        Polls the store for each deferred job: records appearing resolve
        the job as a hit; a lease going stale (holder crashed without
        heartbeating) is taken over via :meth:`ResultStore.claim` and the
        job executes here.  Returns True when shutdown interrupted the
        wait.
        """
        poll = max(0.05, min(1.0, self.store.lease_timeout / 10.0))
        pending = list(deferred)
        while pending:
            if self._shutdown.is_set():
                return True
            remaining: List[Tuple[int, EvaluationJob, List[str]]] = []
            for index, job, keys in pending:
                runs = self._peek_batch(job, keys)
                if runs is not None:
                    self._commit_hit(job, runs, results, index, tel)
                    continue
                leases = self._claim_all(keys)
                if leases is not None:
                    if self._execute_pending([(index, job, keys, leases)],
                                             results, tel):
                        return True
                    continue
                remaining.append((index, job, keys))
            if remaining and len(remaining) == len(pending):
                time.sleep(poll)
            pending = remaining
        return False

    # ------------------------------------------------------------------ #
    # Resilient execution.
    # ------------------------------------------------------------------ #
    def _execute_pending(
            self,
            batch: List[Tuple[int, EvaluationJob, Optional[List[str]],
                              List[Lease]]],
            results: List[Optional[JobResult]],
            tel: Optional[telemetry.Telemetry]) -> bool:
        """Train a batch of uncached jobs; returns True when interrupted.

        Subjob failures are isolated: an attempt that raises, times out or
        dies with its worker is retried with backoff, and a subjob
        exhausting the retry budget quarantines its parent job instead of
        aborting the batch.  Completed seed batches persist to the store
        even when a sibling subjob of the same job failed or a shutdown
        arrived mid-batch, so resumed campaigns skip them.
        """
        engine = _engine_state()
        plan = faults.get_plan()
        # Remote workers parallelize like a multi-worker pool, so jobs that
        # split per-seed under fan-out split the same way for them — record
        # layout stays identical across backends either way.
        split = (self.parallel.resolved_workers() > 1
                 or self.executor is not None)
        parts_per_job: List[List[EvaluationJob]] = []
        subjobs: List[EvaluationJob] = []
        for _, job, _, _ in batch:
            if split and self._splits_without_cost(job):
                parts = [replace(job, seeds=(seed,)) for seed in job.seeds]
                if tel is not None:
                    tel.counter("scheduler.jobs.split_per_seed",
                                attrs={"design": _job_label(job),
                                       "environment": job.environment})
            else:
                parts = [job]
            parts_per_job.append(parts)
            subjobs.extend(parts)
        tasks = [_JobTask(sub, engine, tel is not None, plan)
                 for sub in subjobs]

        heartbeat = self._lease_heartbeat(
            [lease for _, _, _, leases in batch for lease in leases])
        with telemetry.span(
                "scheduler.execute",
                {"tasks": len(tasks)} if tel is not None else None):
            try:
                if self.executor is not None:
                    flat = self.executor.run(_run_job_task, tasks,
                                             self.parallel,
                                             should_stop=self._shutdown.is_set,
                                             heartbeat=heartbeat)
                else:
                    flat = run_resilient(_run_job_task, tasks, self.parallel,
                                         should_stop=self._shutdown.is_set,
                                         heartbeat=heartbeat)
            except BaseException:
                # Transport failure (e.g. NoWorkersError): release every
                # claimed lease so a resuming campaign need not wait out
                # the staleness deadline.
                for _, _, _, leases in batch:
                    for lease in leases:
                        self.store.release(lease)
                raise
        if tel is not None:
            # Order-preserving merge of worker-captured events: the same
            # contract results get, so serial and N-worker executions
            # yield identical event streams modulo timestamps and pids.
            for outcome in flat:
                if outcome.ok and outcome.value is not None:
                    _, events = outcome.value
                    if events:
                        tel.extend(events)

        interrupted = False
        cursor = 0
        for (index, job, keys, leases), parts in zip(batch, parts_per_job):
            outcomes = flat[cursor:cursor + len(parts)]
            cursor += len(parts)
            try:
                job_interrupted = self._settle_job(index, job, keys, parts,
                                                   outcomes, results, tel,
                                                   leases)
            finally:
                for lease in leases:
                    self.store.release(lease)
            interrupted = interrupted or job_interrupted
        return interrupted

    def _lease_heartbeat(
            self, leases: List[Lease]) -> Optional[Callable[[], None]]:
        """A rate-limited refresher keeping held leases visibly alive."""
        if not leases or self.store is None:
            return None
        interval = max(0.5, min(self.store.lease_timeout / 4.0, 10.0))
        last = [time.monotonic()]

        def heartbeat() -> None:
            now = time.monotonic()
            if now - last[0] < interval:
                return
            last[0] = now
            for lease in leases:
                self.store.refresh(lease)

        return heartbeat

    def _settle_job(self, index: int, job: EvaluationJob,
                    keys: Optional[List[str]],
                    parts: List[EvaluationJob],
                    outcomes: List[TaskOutcome],
                    results: List[Optional[JobResult]],
                    tel: Optional[telemetry.Telemetry],
                    leases: Optional[List[Lease]] = None) -> bool:
        """Aggregate one job's subjob outcomes into a JobResult; persist.

        Returns True when any subjob was interrupted mid-shutdown — the
        job then stays unsettled (``results[index]`` remains None) and the
        batch raises ``KeyboardInterrupt`` after persisting everything
        that did complete.
        """
        runs: List["TrainingRun"] = []
        ok_keys: List[str] = []
        errors: List[str] = []
        attempts = 1
        job_interrupted = False
        seed_keys = dict(zip(job.seeds, keys)) if keys is not None else {}
        for part, outcome in zip(parts, outcomes):
            attempts = max(attempts, outcome.attempts)
            if outcome.status == "interrupted":
                job_interrupted = True
            elif not outcome.ok:
                errors.append(outcome.error or "unknown failure")
            elif outcome.value is not None:
                part_runs, _ = outcome.value
                runs.extend(part_runs)
                if keys is not None:
                    ok_keys.extend(seed_keys[seed] for seed in part.seeds)
            if tel is not None and outcome.attempts > 1:
                tel.counter("job.retry", outcome.attempts - 1,
                            attrs={"design": _job_label(job),
                                   "environment": job.environment})

        if ok_keys:
            leases_by_key = {lease.key: lease for lease in (leases or [])}
            with telemetry.span(
                    "job.persist",
                    {"design": _job_label(job),
                     "environment": job.environment}
                    if tel is not None else None):
                self._persist(job, ok_keys, runs, leases_by_key)
            if tel is not None:
                tel.counter("scheduler.jobs.persisted")

        if job_interrupted:
            if tel is not None:
                tel.counter("job.interrupted",
                            attrs={"design": _job_label(job),
                                   "environment": job.environment})
            return True
        if errors:
            message = "; ".join(dict.fromkeys(errors))
            logger.warning("job quarantined after %d attempt(s): %s | %s",
                           attempts, _job_fault_key(job), message)
            if tel is not None:
                tel.counter("job.quarantined",
                            attrs={"design": _job_label(job),
                                   "environment": job.environment})
            result = JobResult(job=job, runs=runs, score=float("-inf"),
                               status="quarantined", error=message,
                               attempts=attempts)
            results[index] = result
            self.failures.append(result)
            return False
        if tel is not None:
            tel.counter("scheduler.jobs.trained")
            self._record_training_series(tel, job, runs)
        score = protocol_score(runs, job.trainer.config.last_k_checkpoints)
        results[index] = JobResult(job=job, runs=runs, score=score,
                                   attempts=attempts)
        return False

    @staticmethod
    def _record_training_series(tel: telemetry.Telemetry, job: EvaluationJob,
                                runs: Sequence["TrainingRun"]) -> None:
        """Emit per-checkpoint training-metric series for freshly trained runs."""
        label = _job_label(job)
        for run in runs:
            metrics = run.checkpoint_metrics or {}
            attrs = {"environment": job.environment, "design": label,
                     "seed": run.seed}
            for name, values in metrics.items():
                for epoch, value in zip(run.checkpoint_epochs, values):
                    tel.series(f"train.{name}", epoch, value, attrs=attrs)

    # ------------------------------------------------------------------ #
    def map_items(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Order-preserving fan-out for auxiliary (non-protocol) workloads.

        Used by drivers whose work items do not produce
        :class:`TrainingRun` batches (e.g. the early-stopping corpus
        builder).  The scheduler still owns execution — worker processes
        inherit the tensor dtype and every engine toggle exactly as
        evaluation jobs do — but results bypass the store.
        """
        tel = telemetry.get_telemetry()
        engine = _engine_state()
        tasks = [_MapTask(fn, item, engine, tel is not None)
                 for item in items]
        flat = parallel_map(_run_map_task, tasks, self.parallel)
        if tel is not None:
            for _, events in flat:
                if events:
                    tel.extend(events)
        return [result for result, _ in flat]
