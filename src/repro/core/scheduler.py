"""The campaign scheduler: one work-graph execution layer for all evaluation.

The paper's headline experiment is a *campaign*: pools of LLM-generated
designs scored across several network environments under the §3.1 protocol.
This module is the single substrate every campaign runs on.  Its unit of
work is a **job** — (state design, network design, environment, seed batch)
— and it composes the repository's two execution engines instead of choosing
one:

* **inside** a job, all seeds train in lockstep through
  :class:`~repro.rl.a2c.MultiSeedA2CTrainer` (stacked per-seed weights, one
  batched fused update per round) whenever the design supports it;
* **across** jobs, work fans out over the
  :func:`~repro.core.parallel.parallel_map` process pool with an
  order-preserving merge.

Because each job runs exactly the code it would run serially (the worker
only changes *where* the computation happens), campaign scores are
bit-identical for serial, 1-worker and N-worker executions — the
equivalence suite in ``tests/test_scheduler.py`` pins this.

When a :class:`~repro.core.results.ResultStore` is attached, every job's
per-seed :class:`~repro.core.evaluation.TrainingRun` records are looked up
before execution and persisted after it, so repeated campaigns skip
already-scored work and interrupted campaigns resume.  Jobs carrying an
early-stopping classifier bypass the store: their outcome depends on the
fitted classifier state, which is not part of the key schema.

Call sites (:class:`~repro.core.evaluation.TestScoreProtocol`,
:class:`~repro.core.pipeline.NadaPipeline`, the ``analysis.experiments``
sweeps and the CLI) never touch the process pool directly — they build jobs
and hand them to a scheduler.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    TYPE_CHECKING, TypeVar)

import numpy as np

from .. import nn
from ..abr.networks import fast_inference_enabled, set_fast_inference
from .parallel import ParallelConfig, parallel_map
from .results import ResultStore, context_fingerprint, design_fingerprint, result_key

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from .design import Design
    from .early_stopping import RewardTrajectoryClassifier
    from .evaluation import DesignTrainer, TrainingRun

__all__ = [
    "EvaluationJob",
    "JobResult",
    "CampaignScheduler",
    "protocol_score",
]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class EvaluationJob:
    """One unit of campaign work: a design pair × environment × seed batch.

    The job owns everything needed to train its seed batch to completion in
    an arbitrary worker process: the (picklable)
    :class:`~repro.core.evaluation.DesignTrainer` carries the environment
    (video, trace splits, QoE metric, schedule); the designs carry the code
    under test; ``seeds`` is the batch trained in lockstep inside the worker.
    """

    trainer: "DesignTrainer"
    state_design: Optional["Design"]
    network_design: Optional["Design"]
    seeds: Tuple[int, ...]
    early_stopping: Optional["RewardTrajectoryClassifier"] = None
    #: Human-readable environment label recorded in the result store.
    environment: str = ""

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("a job needs at least one seed")


@dataclass
class JobResult:
    """Outcome of one job: per-seed runs plus the protocol aggregate."""

    job: EvaluationJob
    runs: List["TrainingRun"]
    #: Median over seeds of last-k checkpoint means (the §3.1 test score).
    score: float
    #: True when every seed was served from the result store.
    cached: bool = False


def protocol_score(runs: Sequence["TrainingRun"], last_k: int) -> float:
    """The §3.1 aggregation: median over seeds of last-``k`` checkpoint means.

    Early-stopped seeds are excluded unless every seed stopped (in which
    case the truncated runs are all the evidence there is).
    """
    completed = [run for run in runs if not run.early_stopped]
    scoring_runs = completed if completed else list(runs)
    per_seed = [run.smoothed_score(last_k) for run in scoring_runs]
    finite = [score for score in per_seed if np.isfinite(score)]
    return float(np.median(finite)) if finite else float("-inf")


# --------------------------------------------------------------------------- #
# Worker payloads.  Spawned workers start from a fresh interpreter, so the
# process-global tensor dtype and fast-inference toggle ride along with every
# task and are re-applied before any computation.
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _JobTask:
    job: EvaluationJob
    dtype: str
    fast_inference: bool


def _run_job_task(task: _JobTask) -> List["TrainingRun"]:
    """Worker entry point: train one job's seed batch, in lockstep if possible."""
    nn.set_default_dtype(task.dtype)
    set_fast_inference(task.fast_inference)
    job = task.job
    return job.trainer.run_seeds(job.state_design, job.network_design,
                                 list(job.seeds),
                                 early_stopping=job.early_stopping)


@dataclass(frozen=True)
class _MapTask:
    fn: Callable[[Any], Any]
    item: Any
    dtype: str
    fast_inference: bool


def _run_map_task(task: _MapTask) -> Any:
    nn.set_default_dtype(task.dtype)
    set_fast_inference(task.fast_inference)
    return task.fn(task.item)


class CampaignScheduler:
    """Executes evaluation jobs over the worker pool, through the store.

    The scheduler is deliberately stateless between :meth:`run` calls apart
    from the attached store and memoized context fingerprints — a campaign
    driver expresses its stage structure by calling :meth:`run` once per
    stage with every ready job, and the scheduler takes care of placement,
    caching and the order-preserving merge.
    """

    def __init__(self, parallel: Optional[ParallelConfig] = None,
                 store: Optional[ResultStore] = None) -> None:
        self.parallel = parallel or ParallelConfig()
        self.store = store
        #: Context fingerprints are O(dataset) to compute, so they are
        #: memoized per live trainer instance (trainers are reused across
        #: jobs).  Weak keys mean a recycled object address can never serve
        #: another trainer's fingerprint, and the per-trainer entries are
        #: keyed by the inputs that can change between runs (dtype,
        #: environment label) so toggling either recomputes.
        self._contexts: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------ #
    def _context(self, job: EvaluationJob) -> str:
        variant = (str(nn.get_default_dtype()), fast_inference_enabled(),
                   job.environment)
        per_trainer = self._contexts.setdefault(job.trainer, {})
        fingerprint = per_trainer.get(variant)
        if fingerprint is None:
            fingerprint = context_fingerprint(job.trainer, job.environment)
            per_trainer[variant] = fingerprint
        return fingerprint

    def _job_keys(self, job: EvaluationJob) -> Optional[List[str]]:
        """Per-seed store keys, or None when the job is not cacheable."""
        if self.store is None or job.early_stopping is not None:
            return None
        context = self._context(job)
        designs = design_fingerprint(job.state_design, job.network_design)
        return [result_key(context, designs, seed) for seed in job.seeds]

    def _lookup(self, job: EvaluationJob,
                keys: Optional[List[str]]) -> Optional[List["TrainingRun"]]:
        """All-or-nothing cache read: a job resumes only as a whole batch.

        Counters are committed once the batch outcome is known — records
        probed before a miss aborts the batch are not counted as hits,
        since their contents are discarded and retrained.  Loaded runs are
        re-stamped with the requesting config's ``last_k_checkpoints``
        (excluded from the key because it only shapes aggregation), making
        a cached run indistinguishable from a freshly trained one.
        """
        if keys is None:
            return None
        runs = []
        for key in keys:
            run = self.store.peek_run(key)
            if run is None:
                self.store.misses += 1
                return None
            runs.append(run)
        self.store.hits += len(runs)
        for run in runs:
            run.last_k_checkpoints = job.trainer.config.last_k_checkpoints
        return runs

    def _persist(self, job: EvaluationJob, keys: Optional[List[str]],
                 runs: Sequence["TrainingRun"]) -> None:
        if keys is None:
            return
        meta = {
            "environment": job.environment,
            "state_design": job.state_design.design_id
            if job.state_design is not None else "original",
            "network_design": job.network_design.design_id
            if job.network_design is not None else "original",
        }
        for key, run in zip(keys, runs):
            self.store.put_run(key, run, meta={**meta, "seed": run.seed})

    @staticmethod
    def _splits_without_cost(job: EvaluationJob) -> bool:
        """True when per-seed fan-out cannot lose lockstep batching.

        Jobs whose training falls to the per-seed path regardless — an
        early-stopping classifier attached, lockstep disabled in the
        config, or a generated network architecture (only stacked
        ``PensieveNetwork`` weights support the fused lockstep engine, per
        ``PensieveSeedStack.compatible``) — gain worker-level seed
        parallelism by splitting into singleton seed batches; records are
        identical either way because the per-seed path is exactly what
        runs inside the whole batch.  Lockstep-eligible jobs stay whole so
        the stacked engine applies inside their worker.
        """
        if len(job.seeds) <= 1:
            return False
        return (job.early_stopping is not None
                or not job.trainer.config.lockstep_training
                or job.network_design is not None)

    def run(self, jobs: Sequence[EvaluationJob]) -> List[JobResult]:
        """Execute a batch of jobs; results come back in submission order.

        Cached jobs are answered from the store without touching the pool;
        the remainder fan out across worker processes, each training its
        seed batch in lockstep inside the worker.  Jobs that would train
        per-seed anyway additionally split into per-seed work items under
        fan-out, so seeds of one design can occupy several workers when
        lockstep has nothing to lose.  Scores are bit-identical to running
        every job serially in submission order.
        """
        jobs = list(jobs)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending: List[Tuple[int, EvaluationJob, Optional[List[str]]]] = []
        for index, job in enumerate(jobs):
            keys = self._job_keys(job)
            cached_runs = self._lookup(job, keys)
            if cached_runs is not None:
                score = protocol_score(cached_runs,
                                       job.trainer.config.last_k_checkpoints)
                results[index] = JobResult(job=job, runs=cached_runs,
                                           score=score, cached=True)
            else:
                pending.append((index, job, keys))

        if pending:
            dtype = str(nn.get_default_dtype())
            fast = fast_inference_enabled()
            split = self.parallel.resolved_workers() > 1
            subjobs: List[EvaluationJob] = []
            spans: List[int] = []
            for _, job, _ in pending:
                parts = ([replace(job, seeds=(seed,)) for seed in job.seeds]
                         if split and self._splits_without_cost(job)
                         else [job])
                subjobs.extend(parts)
                spans.append(len(parts))
            tasks = [_JobTask(sub, dtype, fast) for sub in subjobs]
            flat = parallel_map(_run_job_task, tasks, self.parallel)
            cursor = 0
            for (index, job, keys), span in zip(pending, spans):
                runs = [run for chunk in flat[cursor:cursor + span]
                        for run in chunk]
                cursor += span
                self._persist(job, keys, runs)
                score = protocol_score(runs,
                                       job.trainer.config.last_k_checkpoints)
                results[index] = JobResult(job=job, runs=runs, score=score)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def map_items(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Order-preserving fan-out for auxiliary (non-protocol) workloads.

        Used by drivers whose work items do not produce
        :class:`TrainingRun` batches (e.g. the early-stopping corpus
        builder).  The scheduler still owns execution — worker processes
        inherit the tensor dtype and fast-inference toggle exactly as
        evaluation jobs do — but results bypass the store.
        """
        dtype = str(nn.get_default_dtype())
        fast = fast_inference_enabled()
        tasks = [_MapTask(fn, item, dtype, fast) for item in items]
        return parallel_map(_run_map_task, tasks, self.parallel)
