"""Candidate designs and the candidate pool.

A *design* is one LLM-generated code block — either a state representation or
a neural-network architecture — together with everything Nada learns about it
as it moves through the pipeline: whether it compiled, whether its features
were well normalized, its training-reward trajectory, whether it was
early-stopped, and its final test score.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["DesignKind", "DesignStatus", "Design", "CandidatePool"]


class DesignKind(str, enum.Enum):
    """What component of the algorithm a design replaces."""

    STATE = "state"
    NETWORK = "network"


class DesignStatus(str, enum.Enum):
    """Lifecycle of a design inside the Nada pipeline."""

    GENERATED = "generated"
    #: Rejected by the static design auditor, before any code was executed.
    REJECTED_AUDIT = "rejected_audit"
    REJECTED_COMPILATION = "rejected_compilation"
    REJECTED_NORMALIZATION = "rejected_normalization"
    PENDING_EVALUATION = "pending_evaluation"
    EARLY_STOPPED = "early_stopped"
    EVALUATED = "evaluated"
    #: Evaluation kept failing past the retry budget and was quarantined.
    FAILED = "failed"


_id_counter = itertools.count()


def _next_design_id(kind: DesignKind, code: str) -> str:
    digest = hashlib.sha1(code.encode("utf-8")).hexdigest()[:8]
    return f"{kind.value}-{next(_id_counter):05d}-{digest}"


@dataclass
class Design:
    """One candidate design and its evaluation record."""

    kind: DesignKind
    code: str
    origin_model: str = "unknown"
    design_id: str = ""
    status: DesignStatus = DesignStatus.GENERATED
    tags: tuple[str, ...] = ()
    #: Error message of the failed pre-check, if any.
    rejection_reason: Optional[str] = None
    #: Structured findings from the static audit stage (rule id, severity,
    #: message, line), as dicts so the design stays trivially serializable.
    audit_findings: List[Dict[str, object]] = field(default_factory=list)
    #: Static lowerability verdict for network designs ("compiled",
    #: "hand_fused", "graph_fallback" or "unknown"; None before the audit).
    lowerability: Optional[str] = None
    #: Episode rewards observed during (possibly truncated) training.
    reward_history: List[float] = field(default_factory=list)
    #: Test scores observed at periodic checkpoints during training.
    checkpoint_scores: List[float] = field(default_factory=list)
    #: Final aggregate test score (the paper's "score"), if fully evaluated.
    test_score: Optional[float] = None
    #: Free-form metadata (seed, environment name, training epochs, ...).
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.kind = DesignKind(self.kind)
        self.status = DesignStatus(self.status)
        if not self.code or not self.code.strip():
            raise ValueError("a design must contain non-empty code")
        if not self.design_id:
            self.design_id = _next_design_id(self.kind, self.code)

    # ------------------------------------------------------------------ #
    @property
    def is_rejected(self) -> bool:
        return self.status in (DesignStatus.REJECTED_AUDIT,
                               DesignStatus.REJECTED_COMPILATION,
                               DesignStatus.REJECTED_NORMALIZATION)

    @property
    def passed_prechecks(self) -> bool:
        return self.status not in (DesignStatus.GENERATED,
                                   DesignStatus.REJECTED_AUDIT,
                                   DesignStatus.REJECTED_COMPILATION,
                                   DesignStatus.REJECTED_NORMALIZATION)

    def mark_rejected(self, status: DesignStatus, reason: str) -> None:
        if status not in (DesignStatus.REJECTED_AUDIT,
                          DesignStatus.REJECTED_COMPILATION,
                          DesignStatus.REJECTED_NORMALIZATION):
            raise ValueError("mark_rejected requires a rejection status")
        self.status = status
        self.rejection_reason = reason

    def record_training(self, rewards: Sequence[float],
                        checkpoint_scores: Sequence[float] = ()) -> None:
        self.reward_history = [float(r) for r in rewards]
        if checkpoint_scores:
            self.checkpoint_scores = [float(s) for s in checkpoint_scores]

    def finalize(self, test_score: float) -> None:
        self.test_score = float(test_score)
        self.status = DesignStatus.EVALUATED

    def summary(self) -> str:
        score = f"{self.test_score:.3f}" if self.test_score is not None else "-"
        return (f"{self.design_id} [{self.kind.value}] status={self.status.value} "
                f"score={score}")


class CandidatePool:
    """An ordered collection of designs with query helpers.

    The pool corresponds to the "State Pool" / "Neural Network Pool" boxes in
    Figure 1 of the paper.
    """

    def __init__(self, designs: Iterable[Design] = ()) -> None:
        self._designs: List[Design] = list(designs)
        self._by_id: Dict[str, Design] = {d.design_id: d for d in self._designs}
        if len(self._by_id) != len(self._designs):
            raise ValueError("duplicate design ids in pool")

    # ------------------------------------------------------------------ #
    def add(self, design: Design) -> None:
        if design.design_id in self._by_id:
            raise ValueError(f"design {design.design_id!r} already in pool")
        self._designs.append(design)
        self._by_id[design.design_id] = design

    def extend(self, designs: Iterable[Design]) -> None:
        for design in designs:
            self.add(design)

    def get(self, design_id: str) -> Design:
        if design_id not in self._by_id:
            raise KeyError(f"no design with id {design_id!r}")
        return self._by_id[design_id]

    def __len__(self) -> int:
        return len(self._designs)

    def __iter__(self) -> Iterator[Design]:
        return iter(self._designs)

    def __contains__(self, design_id: str) -> bool:
        return design_id in self._by_id

    # ------------------------------------------------------------------ #
    def of_kind(self, kind: DesignKind) -> List[Design]:
        kind = DesignKind(kind)
        return [d for d in self._designs if d.kind == kind]

    def with_status(self, status: DesignStatus) -> List[Design]:
        status = DesignStatus(status)
        return [d for d in self._designs if d.status == status]

    def surviving_prechecks(self) -> List[Design]:
        """Designs that passed both pre-checks (compilation + normalization)."""
        return [d for d in self._designs if d.passed_prechecks]

    def evaluated(self) -> List[Design]:
        return [d for d in self._designs
                if d.status == DesignStatus.EVALUATED and d.test_score is not None]

    def top_k(self, k: int, kind: Optional[DesignKind] = None) -> List[Design]:
        """The ``k`` fully-evaluated designs with the highest test scores."""
        candidates = self.evaluated()
        if kind is not None:
            kind = DesignKind(kind)
            candidates = [d for d in candidates if d.kind == kind]
        return sorted(candidates, key=lambda d: d.test_score, reverse=True)[:k]

    def best(self, kind: Optional[DesignKind] = None) -> Optional[Design]:
        top = self.top_k(1, kind=kind)
        return top[0] if top else None

    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, int]:
        """Counts per lifecycle status (used by the Table 2 benchmark)."""
        counts: Dict[str, int] = {"total": len(self._designs)}
        for status in DesignStatus:
            counts[status.value] = sum(1 for d in self._designs if d.status == status)
        counts["passed_prechecks"] = len(self.surviving_prechecks())
        return counts
