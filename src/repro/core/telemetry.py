"""Structured telemetry for campaigns: spans, counters and scalar series.

Campaigns push thousands of (design × environment × seed-batch) jobs through
the scheduler, the content-addressed result store and the kernel compiler.
This module is the single event substrate those layers report into:

* **Spans** — named intervals with wall-clock *and* CPU time plus free-form
  attributes (``job.train``, ``scheduler.run``, ``pipeline.stage1`` …).
* **Counters** — monotonic totals (``store.hit``, ``compile.fallback`` …).
* **Series** — scalar-vs-step curves (per-checkpoint entropy, losses …).

Design constraints:

* **True no-op when disabled.**  ``span()`` returns a shared singleton
  context manager and ``counter()``/``series()`` return immediately, so the
  instrumented hot paths allocate nothing and cost one attribute load when
  telemetry is off (pinned by ``tests/test_telemetry.py``).
* **Process safety.**  Pool workers cannot share a buffer with the parent.
  Worker tasks wrap their work in :func:`capture`, return the recorded
  events alongside their results, and the scheduler merges them back in
  submission order — the same order-preserving contract ``parallel_map``
  gives results, so a serial run and a ``workers=N`` run produce identical
  event streams modulo timestamps and worker pids.
* **No dependencies.**  Only the standard library, importable from any layer
  (``nn``, ``rl``, ``core``) without cycles.

Events persist as JSON lines (one file per recording process) via
:meth:`Telemetry.flush` and render either as a human summary
(:func:`render_report`, surfaced by ``repro report``) or as a Chrome/Perfetto
trace (:func:`chrome_trace`, surfaced by ``--trace out.json``).
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "TelemetryEvent",
    "Telemetry",
    "enabled",
    "get_telemetry",
    "set_telemetry",
    "enable",
    "disable",
    "span",
    "counter",
    "series",
    "capture",
    "load_events",
    "chrome_trace",
    "summarize",
    "render_report",
]

#: Attribute keys excluded from :meth:`TelemetryEvent.signature` because they
#: describe *where/how fast* something ran rather than *what* ran (the
#: serial == workers contract holds modulo execution placement).
VOLATILE_ATTRS = frozenset({"workers", "pid"})


@dataclass
class TelemetryEvent:
    """One recorded event.

    Attributes:
        kind: ``"span"``, ``"counter"`` or ``"series"``.
        name: Dotted event name (``job.train``, ``store.hit`` …).
        value: Span wall-clock seconds, counter increment, or series value.
        ts: Wall-clock epoch seconds at the start of the event.
        cpu_s: CPU seconds consumed (spans only, 0.0 otherwise).
        step: Series x-coordinate (e.g. training epoch); None otherwise.
        pid: Recording process id.
        attrs: Optional free-form attributes (JSON-scalar values).
    """

    kind: str
    name: str
    value: float
    ts: float
    cpu_s: float = 0.0
    step: Optional[int] = None
    pid: int = 0
    attrs: Optional[Dict[str, Any]] = None

    def signature(self) -> Tuple:
        """Identity of the event modulo timestamps, durations and worker ids.

        Two campaign runs that execute the same work must produce the same
        sequence of signatures regardless of worker count; durations and
        span wall-times are execution noise and are excluded (counter and
        series values are real data and are kept).
        """
        attrs = tuple(sorted((k, v) for k, v in (self.attrs or {}).items()
                             if k not in VOLATILE_ATTRS))
        value = None if self.kind == "span" else self.value
        return (self.kind, self.name, self.step, value, attrs)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "kind": self.kind, "name": self.name, "value": self.value,
            "ts": self.ts, "pid": self.pid,
        }
        if self.kind == "span":
            record["cpu_s"] = self.cpu_s
        if self.step is not None:
            record["step"] = self.step
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TelemetryEvent":
        return cls(kind=record["kind"], name=record["name"],
                   value=float(record["value"]), ts=float(record["ts"]),
                   cpu_s=float(record.get("cpu_s", 0.0)),
                   step=record.get("step"), pid=int(record.get("pid", 0)),
                   attrs=record.get("attrs"))


class _Span:
    """Context manager that records a span event on exit."""

    __slots__ = ("_sink", "_name", "_attrs", "_ts", "_wall0", "_cpu0")

    def __init__(self, sink: "Telemetry", name: str,
                 attrs: Optional[Dict[str, Any]]) -> None:
        self._sink = sink
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._ts = time.time()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        self._sink.record(TelemetryEvent(
            "span", self._name, wall, self._ts, cpu_s=cpu,
            pid=os.getpid(), attrs=self._attrs))
        return False


class _NoopSpan:
    """Shared do-nothing span returned when telemetry is disabled.

    A singleton with empty ``__slots__``: entering/exiting it performs no
    allocations, which keeps the disabled hot path free (see the
    zero-allocation test).
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Telemetry:
    """An in-memory event sink, optionally backed by a directory.

    Thread-safe for recording; cross-process merging goes through
    :func:`capture` + :meth:`extend` rather than shared state.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self.events: List[TelemetryEvent] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.events)

    def record(self, event: TelemetryEvent) -> None:
        with self._lock:
            self.events.append(event)

    def extend(self, events: Sequence[TelemetryEvent]) -> None:
        """Merge events recorded elsewhere (a pool worker) in their order."""
        with self._lock:
            self.events.extend(events)

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> _Span:
        return _Span(self, name, attrs)

    def counter(self, name: str, value: float = 1,
                attrs: Optional[Dict[str, Any]] = None) -> None:
        self.record(TelemetryEvent("counter", name, float(value), time.time(),
                                   pid=os.getpid(), attrs=attrs))

    def series(self, name: str, step: int, value: float,
               attrs: Optional[Dict[str, Any]] = None) -> None:
        self.record(TelemetryEvent("series", name, float(value), time.time(),
                                   step=int(step), pid=os.getpid(),
                                   attrs=attrs))

    def flush(self) -> Optional[str]:
        """Write all buffered events to ``directory`` as JSON lines.

        The file is named after the recording pid so concurrent campaigns
        sharing a directory never collide; repeated flushes rewrite the file
        with the full buffer.  Returns the path, or None without a directory.
        """
        if not self.directory:
            return None
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, f"events-{os.getpid()}.jsonl")
        tmp = path + ".tmp"
        with self._lock:
            snapshot = list(self.events)
        with open(tmp, "w") as fh:
            for event in snapshot:
                fh.write(json.dumps(event.to_dict()) + "\n")
        os.replace(tmp, path)
        return path


# ---------------------------------------------------------------------------
# Module-level sink.
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Telemetry] = None


def enabled() -> bool:
    """Whether a telemetry sink is currently active."""
    return _ACTIVE is not None


def get_telemetry() -> Optional[Telemetry]:
    """The active sink, or None when telemetry is disabled.

    Instrumentation sites with per-event setup cost (building an attrs dict
    in a loop) should fetch this once and guard on it.
    """
    return _ACTIVE


def set_telemetry(sink: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install ``sink`` as the active sink, returning the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = sink
    return previous


def enable(directory: Optional[str] = None) -> Telemetry:
    """Activate telemetry, optionally persisting to ``directory``.

    Idempotent: if a sink is already active it is returned unchanged (so the
    CLI, ``NadaConfig.telemetry_dir`` and ``ExperimentScale.telemetry_dir``
    can all request the same session without clobbering each other).  When a
    directory is given the sink also flushes at interpreter exit as a
    backstop for drivers that do not flush explicitly.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    _ACTIVE = Telemetry(directory)
    if directory:
        atexit.register(_flush_quietly, _ACTIVE)
    return _ACTIVE


def disable() -> Optional[Telemetry]:
    """Deactivate telemetry, returning the sink that was active (if any)."""
    atexit.unregister(_flush_quietly)
    return set_telemetry(None)


def _flush_quietly(sink: Telemetry) -> None:
    try:
        sink.flush()
    except OSError:
        pass


def span(name: str, attrs: Optional[Dict[str, Any]] = None):
    """A context manager timing ``name``; a shared no-op when disabled."""
    sink = _ACTIVE
    if sink is None:
        return _NOOP_SPAN
    return _Span(sink, name, attrs)


def counter(name: str, value: float = 1,
            attrs: Optional[Dict[str, Any]] = None) -> None:
    """Increment counter ``name`` by ``value`` (no-op when disabled)."""
    sink = _ACTIVE
    if sink is not None:
        sink.counter(name, value, attrs)


def series(name: str, step: int, value: float,
           attrs: Optional[Dict[str, Any]] = None) -> None:
    """Record one ``(step, value)`` point of ``name`` (no-op when disabled)."""
    sink = _ACTIVE
    if sink is not None:
        sink.series(name, step, value, attrs)


@contextmanager
def capture() -> Iterator[Telemetry]:
    """Record into a fresh in-memory sink, restoring the previous one after.

    This is how pool workers (and the serial path standing in for them)
    collect events for the parent to merge: the worker task runs inside
    ``capture()``, ships ``sink.events`` back with its result, and the
    scheduler ``extend()``s them into the parent sink in submission order.
    """
    local = Telemetry()
    previous = set_telemetry(local)
    try:
        yield local
    finally:
        set_telemetry(previous)


# ---------------------------------------------------------------------------
# Persistence and rendering.
# ---------------------------------------------------------------------------

def load_events(directory: str) -> List[TelemetryEvent]:
    """Load every ``events-*.jsonl`` file under ``directory``."""
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"no telemetry directory at {directory!r}")
    events: List[TelemetryEvent] = []
    for entry in sorted(os.listdir(directory)):
        if not (entry.startswith("events-") and entry.endswith(".jsonl")):
            continue
        with open(os.path.join(directory, entry)) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(TelemetryEvent.from_dict(json.loads(line)))
    return events


def chrome_trace(events: Sequence[TelemetryEvent]) -> Dict[str, Any]:
    """Convert events to the Chrome trace format (loadable in Perfetto).

    Spans become complete ("ph": "X") events; counters and series become
    counter ("ph": "C") tracks.  Timestamps are microseconds relative to the
    earliest event.
    """
    trace: List[Dict[str, Any]] = []
    if not events:
        return {"traceEvents": trace}
    t0 = min(event.ts for event in events)
    for event in events:
        ts_us = (event.ts - t0) * 1e6
        if event.kind == "span":
            args = dict(event.attrs or {})
            args["cpu_s"] = event.cpu_s
            trace.append({"name": event.name, "cat": "span", "ph": "X",
                          "ts": ts_us, "dur": event.value * 1e6,
                          "pid": event.pid, "tid": event.pid, "args": args})
        else:
            trace.append({"name": event.name, "cat": event.kind, "ph": "C",
                          "ts": ts_us, "pid": event.pid,
                          "args": {event.name: event.value}})
    return {"traceEvents": trace}


def write_chrome_trace(events: Sequence[TelemetryEvent], path: str) -> str:
    """Serialize :func:`chrome_trace` to ``path`` and return the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(chrome_trace(events), fh)
    return path


def summarize(events: Sequence[TelemetryEvent]) -> Dict[str, Any]:
    """Aggregate events into the structures ``repro report`` renders.

    Returns a dict with: total event count, counter totals, per-span-name
    aggregates, store hit-rate (from the ``store.*`` counters the scheduler
    emits alongside the store's own accounting), worker utilization (busy
    ``job.train`` time per pid over the ``scheduler.run`` window), the
    compile lowered/fallback table keyed by reason, the slowest designs, and
    per-series point counts.
    """
    counters: Dict[str, float] = {}
    spans: Dict[str, Dict[str, float]] = {}
    series_stats: Dict[str, Dict[str, Any]] = {}
    busy: Dict[int, float] = {}
    designs: Dict[Tuple[str, str], Dict[str, float]] = {}
    fallbacks: Dict[str, int] = {}
    pids = set()

    for event in events:
        pids.add(event.pid)
        if event.kind == "counter":
            counters[event.name] = counters.get(event.name, 0.0) + event.value
            if event.name == "compile.fallback":
                reason = (event.attrs or {}).get("reason", "unknown")
                fallbacks[reason] = fallbacks.get(reason, 0) + 1
        elif event.kind == "span":
            agg = spans.setdefault(event.name,
                                   {"count": 0, "wall_s": 0.0, "cpu_s": 0.0})
            agg["count"] += 1
            agg["wall_s"] += event.value
            agg["cpu_s"] += event.cpu_s
            if event.name == "job.train":
                busy[event.pid] = busy.get(event.pid, 0.0) + event.value
                attrs = event.attrs or {}
                key = (str(attrs.get("environment", "?")),
                       str(attrs.get("design", "?")))
                entry = designs.setdefault(key, {"wall_s": 0.0, "jobs": 0})
                entry["wall_s"] += event.value
                entry["jobs"] += 1
        elif event.kind == "series":
            entry = series_stats.setdefault(event.name,
                                            {"points": 0, "last": None})
            entry["points"] += 1
            entry["last"] = event.value

    hits = counters.get("store.hit", 0.0)
    misses = counters.get("store.miss", 0.0)
    lookups = hits + misses
    window = spans.get("scheduler.run", {}).get("wall_s", 0.0)
    if window <= 0.0 and events:
        window = max(e.ts + (e.value if e.kind == "span" else 0.0)
                     for e in events) - min(e.ts for e in events)
    total_busy = sum(busy.values())
    workers = len(busy) or 1
    utilization = (total_busy / (workers * window)) if window > 0 else None

    slowest = sorted(
        ({"environment": env, "design": design, **stats}
         for (env, design), stats in designs.items()),
        key=lambda item: item["wall_s"], reverse=True)

    return {
        "events": len(events),
        "processes": len(pids),
        "counters": counters,
        "spans": spans,
        "store": {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate": (hits / lookups) if lookups else None,
            "puts": int(counters.get("store.put", 0.0)),
            "partial_probes": int(counters.get("store.partial_probe", 0.0)),
            "context_invalidations":
                int(counters.get("store.context_invalidated", 0.0)),
        },
        "workers": {
            "count": workers,
            "busy_s": {pid: round(s, 6) for pid, s in sorted(busy.items())},
            "window_s": window,
            "utilization": utilization,
        },
        "compile": {
            "lowered": int(counters.get("compile.lowered", 0.0)),
            "fallbacks": fallbacks,
        },
        "faults": {
            "retries": int(counters.get("job.retry", 0.0)),
            "quarantined": int(counters.get("job.quarantined", 0.0)),
            "interrupted": int(counters.get("job.interrupted", 0.0)),
            "pool_recycles": int(counters.get("parallel.pool_recycled", 0.0)),
            "corrupt_records": int(counters.get("store.corrupt", 0.0)),
            "torn_writes": int(counters.get("store.torn_write", 0.0)),
            "put_races": int(counters.get("store.put_race", 0.0)),
            "leases_acquired": int(counters.get("store.lease_acquired", 0.0)),
            "leases_contended": int(counters.get("store.lease_contended", 0.0)),
            "leases_stolen": int(counters.get("store.lease_stolen", 0.0)),
            "fenced_puts": int(counters.get("store.put_fenced", 0.0)),
        },
        "distributed": {
            "workers_connected":
                int(counters.get("rpc.worker_connected", 0.0)),
            "workers_lost": int(counters.get("rpc.worker_lost", 0.0)),
            "workers_respawned":
                int(counters.get("rpc.worker_respawned", 0.0)),
            "jobs_dispatched": int(counters.get("rpc.job_dispatched", 0.0)),
            "results": int(counters.get("rpc.result", 0.0)),
            "results_fenced": int(counters.get("rpc.result_fenced", 0.0)),
            "requeues": int(counters.get("rpc.requeued", 0.0)),
            "heartbeat_timeouts":
                int(counters.get("rpc.heartbeat_timeout", 0.0)),
            "local_fallbacks": int(counters.get("rpc.fallback_local", 0.0)),
            "rejects": int(counters.get("rpc.reject", 0.0)),
        },
        "serving": {
            "fleet_runs": int(spans.get("serve.fleet_run", {}).get("count", 0)),
            "sessions": int(counters.get("serve.sessions_completed", 0.0)),
            "decisions": int(counters.get("serve.decisions", 0.0)),
            "ticks": int(counters.get("serve.ticks", 0.0)),
            "decide_s": counters.get("serve.decide_s", 0.0),
            "wall_s": counters.get("serve.wall_s", 0.0),
            "decisions_per_s": (
                counters.get("serve.decisions", 0.0)
                / counters.get("serve.wall_s", 0.0)
                if counters.get("serve.wall_s", 0.0) > 0 else None),
        },
        "designs": slowest,
        "series": series_stats,
    }


def render_report(events: Sequence[TelemetryEvent], top: int = 8) -> str:
    """Render :func:`summarize` as the human-readable ``repro report`` text."""
    summary = summarize(events)
    lines: List[str] = []
    lines.append(f"telemetry summary : {summary['events']} events from "
                 f"{summary['processes']} process(es)")

    store = summary["store"]
    rate = store["hit_rate"]
    rate_text = f"{rate * 100.0:.1f}% hit rate" if rate is not None \
        else "no lookups"
    lines.append(f"result store      : {store['hits']} hits / "
                 f"{store['misses']} misses ({rate_text}), "
                 f"{store['puts']} records written, "
                 f"{store['partial_probes']} partial probes, "
                 f"{store['context_invalidations']} context invalidations")

    workers = summary["workers"]
    if workers["busy_s"]:
        util = workers["utilization"]
        util_text = f"{util * 100.0:.1f}% busy" if util is not None else "busy"
        lines.append(f"workers           : {workers['count']} worker(s), "
                     f"{util_text} over a {workers['window_s']:.2f} s window")
        for pid, busy_s in workers["busy_s"].items():
            lines.append(f"  pid {pid:<12}: {busy_s:.3f} s training")

    if summary["spans"]:
        lines.append("top time sinks    :")
        ranked = sorted(summary["spans"].items(),
                        key=lambda item: item[1]["wall_s"], reverse=True)
        for name, agg in ranked[:top]:
            lines.append(f"  {name:<24} {agg['count']:>5} span(s)  "
                         f"{agg['wall_s']:>9.3f} s wall  "
                         f"{agg['cpu_s']:>9.3f} s cpu")

    compile_stats = summary["compile"]
    total_fallbacks = sum(compile_stats["fallbacks"].values())
    lines.append(f"kernel compiler   : {compile_stats['lowered']} network(s) "
                 f"lowered, {total_fallbacks} fallback(s)")
    for reason, count in sorted(compile_stats["fallbacks"].items(),
                                key=lambda item: item[1], reverse=True):
        lines.append(f"  {count:>3} × {reason}")

    faults = summary["faults"]
    lines.append(f"fault tolerance   : {faults['retries']} retries, "
                 f"{faults['quarantined']} quarantined, "
                 f"{faults['interrupted']} interrupted, "
                 f"{faults['pool_recycles']} pool recycle(s)")
    lines.append(f"store integrity   : {faults['corrupt_records']} corrupt, "
                 f"{faults['torn_writes']} torn write(s), "
                 f"{faults['put_races']} put race(s); leases "
                 f"{faults['leases_acquired']} acquired / "
                 f"{faults['leases_contended']} contended / "
                 f"{faults['leases_stolen']} stolen; "
                 f"{faults['fenced_puts']} fenced put(s)")

    distributed = summary["distributed"]
    if distributed["workers_connected"] or distributed["jobs_dispatched"]:
        lines.append(f"distributed       : "
                     f"{distributed['workers_connected']} worker(s) "
                     f"connected / {distributed['workers_lost']} lost / "
                     f"{distributed['workers_respawned']} respawned; "
                     f"{distributed['jobs_dispatched']} dispatched, "
                     f"{distributed['results']} results "
                     f"({distributed['results_fenced']} fenced), "
                     f"{distributed['requeues']} requeue(s), "
                     f"{distributed['heartbeat_timeouts']} heartbeat "
                     f"timeout(s), {distributed['local_fallbacks']} local "
                     f"fallback(s)")

    serving = summary["serving"]
    if serving["fleet_runs"]:
        rate = serving["decisions_per_s"]
        rate_text = f"{rate:,.0f} decisions/s" if rate is not None else "n/a"
        batch = (serving["decisions"] / serving["ticks"]
                 if serving["ticks"] else 0.0)
        lines.append(f"serving           : {serving['fleet_runs']} fleet "
                     f"run(s), {serving['sessions']} sessions, "
                     f"{serving['decisions']} decisions in "
                     f"{serving['ticks']} ticks "
                     f"(mean batch {batch:.1f}), {rate_text}")

    if summary["designs"]:
        lines.append("slowest designs   :")
        for entry in summary["designs"][:top]:
            lines.append(f"  {entry['environment']}/{entry['design']:<24} "
                         f"{entry['wall_s']:>9.3f} s over "
                         f"{entry['jobs']} job(s)")

    if summary["series"]:
        parts = [f"{name} ({stats['points']} points)"
                 for name, stats in sorted(summary["series"].items())]
        lines.append("training series   : " + ", ".join(parts))

    return "\n".join(lines)
