"""Pre-check filters: compilation check and normalization check (§2.2).

Both checks operate on raw code blocks:

* the **compilation check** compiles the code in the sandbox and performs a
  trial run on synthetic inputs — any exception rejects the design;
* the **normalization check** fuzzes a state function with random inputs drawn
  from wide but realistic ranges and rejects the design if any output feature
  exceeds a threshold ``T`` (100 in the paper) in absolute value.

The :class:`FilterPipeline` applies them in order to a
:class:`~repro.core.design.CandidatePool` and records per-stage statistics
(the quantities reported in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..abr.env import HISTORY_LENGTH, Observation
from ..abr.networks import ActorCriticNetwork
from ..abr.state import StateFunction
from ..abr.video import STANDARD_LADDER_KBPS
from .. import nn
from .codegen import CodeBlockError, load_network_builder, load_state_function
from .design import Design, DesignKind, DesignStatus

__all__ = [
    "random_observation",
    "CheckResult",
    "CompilationCheck",
    "NormalizationCheck",
    "FilterPipeline",
    "FilterReport",
]

#: Threshold on the absolute value of any state feature (the paper's T).
DEFAULT_NORMALIZATION_THRESHOLD = 100.0


def random_observation(rng: np.random.Generator,
                       ladder_kbps: Tuple[int, ...] = STANDARD_LADDER_KBPS,
                       history_length: int = HISTORY_LENGTH) -> Observation:
    """Draw a random but plausible observation for fuzzing state functions.

    Ranges intentionally cover both low-bandwidth (FCC/Starlink) and
    high-bandwidth (4G/5G) regimes so that unnormalized features are exposed
    regardless of the target environment.
    """
    ladder = np.asarray(ladder_kbps, dtype=np.float64)
    bitrate_history = rng.choice(ladder, size=history_length)
    throughput_history = rng.uniform(0.05, 120.0, size=history_length)
    download_history = rng.uniform(0.05, 30.0, size=history_length)
    buffer_history = rng.uniform(0.0, 60.0, size=history_length)
    chunk_duration = 4.0
    next_sizes = ladder * 1000.0 * chunk_duration / 8.0
    next_sizes = next_sizes * rng.uniform(0.5, 1.8, size=len(ladder))
    total_chunks = int(rng.integers(32, 120))
    remaining = int(rng.integers(1, total_chunks + 1))
    return Observation(
        bitrate_kbps_history=bitrate_history.astype(float),
        throughput_mbps_history=throughput_history,
        download_time_s_history=download_history,
        buffer_s_history=buffer_history,
        next_chunk_sizes_bytes=next_sizes,
        buffer_s=float(buffer_history[-1]),
        remaining_chunks=remaining,
        total_chunks=total_chunks,
        last_bitrate_index=int(rng.integers(len(ladder))),
        bitrate_ladder_kbps=ladder,
        chunk_duration_s=chunk_duration,
    )


@dataclass
class CheckResult:
    """Outcome of running one check on one design."""

    passed: bool
    reason: str = ""


class CompilationCheck:
    """Trial-run check: the code must compile, execute and honour its contract."""

    def __init__(self, num_trial_inputs: int = 3, seed: int = 0,
                 num_actions: int = len(STANDARD_LADDER_KBPS)) -> None:
        if num_trial_inputs < 1:
            raise ValueError("at least one trial input is required")
        self.num_trial_inputs = num_trial_inputs
        self.seed = seed
        self.num_actions = num_actions

    # ------------------------------------------------------------------ #
    def check(self, design: Design) -> CheckResult:
        if design.kind == DesignKind.STATE:
            return self._check_state(design.code)
        return self._check_network(design.code)

    def _check_state(self, code: str) -> CheckResult:
        try:
            state_function = load_state_function(code)
        except CodeBlockError as exc:
            return CheckResult(False, str(exc))
        rng = np.random.default_rng(self.seed)
        try:
            for _ in range(self.num_trial_inputs):
                state_function.reset_shape()
                state_function(random_observation(rng))
        except Exception as exc:  # noqa: BLE001 - any failure rejects the design
            return CheckResult(False, f"trial run failed: {exc!r}")
        return CheckResult(True)

    def _check_network(self, code: str) -> CheckResult:
        try:
            builder = load_network_builder(code)
        except CodeBlockError as exc:
            return CheckResult(False, str(exc))
        rng = np.random.default_rng(self.seed)
        try:
            # Build for the canonical Pensieve state shape and for a flat state,
            # then run a forward pass on a small batch for each.
            for shape in ((6, HISTORY_LENGTH), (12,)):
                network = builder(shape, self.num_actions,
                                  rng=np.random.default_rng(self.seed))
                if not isinstance(network, ActorCriticNetwork):
                    return CheckResult(
                        False, "build_network did not return an ActorCriticNetwork")
                batch = nn.tensor(rng.normal(size=(2, *shape)))
                logits, value = network.forward(batch)
                if logits.shape != (2, self.num_actions):
                    return CheckResult(
                        False, f"policy logits have shape {logits.shape}, "
                               f"expected (2, {self.num_actions})")
                if value.shape != (2,):
                    return CheckResult(
                        False, f"value output has shape {value.shape}, expected (2,)")
                if not (np.all(np.isfinite(logits.numpy()))
                        and np.all(np.isfinite(value.numpy()))):
                    return CheckResult(False, "network produced non-finite outputs")
        except Exception as exc:  # noqa: BLE001
            return CheckResult(False, f"trial forward pass failed: {exc!r}")
        return CheckResult(True)


class NormalizationCheck:
    """Fuzzing check: no state feature may exceed ``threshold`` in magnitude."""

    def __init__(self, threshold: float = DEFAULT_NORMALIZATION_THRESHOLD,
                 num_fuzz_inputs: int = 10, seed: int = 1) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if num_fuzz_inputs < 1:
            raise ValueError("at least one fuzz input is required")
        self.threshold = threshold
        self.num_fuzz_inputs = num_fuzz_inputs
        self.seed = seed

    def check(self, design: Design) -> CheckResult:
        if design.kind != DesignKind.STATE:
            # The paper applies the normalization check only to state designs.
            return CheckResult(True, "not applicable to network designs")
        try:
            state_function = load_state_function(design.code)
        except CodeBlockError as exc:
            return CheckResult(False, str(exc))
        rng = np.random.default_rng(self.seed)
        worst = 0.0
        try:
            for _ in range(self.num_fuzz_inputs):
                state_function.reset_shape()
                state = state_function(random_observation(rng))
                worst = max(worst, float(np.abs(state).max()))
                if worst > self.threshold:
                    return CheckResult(
                        False,
                        f"feature magnitude {worst:.1f} exceeds threshold "
                        f"{self.threshold:.0f}")
        except Exception as exc:  # noqa: BLE001
            return CheckResult(False, f"fuzzing failed: {exc!r}")
        return CheckResult(True, f"max observed magnitude {worst:.2f}")


@dataclass
class FilterReport:
    """Aggregate statistics of a filtering pass (Table 2 quantities)."""

    total: int = 0
    compilable: int = 0
    well_normalized: int = 0
    rejection_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def compilable_fraction(self) -> float:
        return self.compilable / self.total if self.total else 0.0

    @property
    def well_normalized_fraction(self) -> float:
        return self.well_normalized / self.total if self.total else 0.0

    def _note_rejection(self, stage: str) -> None:
        self.rejection_reasons[stage] = self.rejection_reasons.get(stage, 0) + 1


class FilterPipeline:
    """Applies the pre-checks in order and updates design statuses."""

    def __init__(self, compilation_check: Optional[CompilationCheck] = None,
                 normalization_check: Optional[NormalizationCheck] = None) -> None:
        self.compilation_check = compilation_check or CompilationCheck()
        self.normalization_check = normalization_check or NormalizationCheck()

    def apply(self, designs: Iterable[Design]) -> FilterReport:
        """Run both checks over ``designs``, mutating their statuses."""
        report = FilterReport()
        for design in designs:
            report.total += 1
            compilation = self.compilation_check.check(design)
            if not compilation.passed:
                design.mark_rejected(DesignStatus.REJECTED_COMPILATION,
                                     compilation.reason)
                report._note_rejection("compilation")
                continue
            report.compilable += 1
            normalization = self.normalization_check.check(design)
            if not normalization.passed:
                design.mark_rejected(DesignStatus.REJECTED_NORMALIZATION,
                                     normalization.reason)
                report._note_rejection("normalization")
                continue
            report.well_normalized += 1
            design.status = DesignStatus.PENDING_EVALUATION
        return report
