"""Pre-check filters: static audit, compilation check and normalization check.

The checks operate on raw code blocks, in order:

* the **audit check** statically analyzes the code — no execution — with the
  design auditor (:mod:`repro.analysis.staticcheck`), rejecting sandbox
  escapes, nondeterminism, unbounded loops, input mutation, statically
  visible normalization defects and contract violations before any ``exec``;
  it also attaches warnings and the lowerability verdict to the design;
* the **compilation check** (§2.2) compiles the code in the sandbox and
  performs a trial run on synthetic inputs — any exception rejects the
  design;
* the **normalization check** fuzzes a state function with random inputs drawn
  from wide but realistic ranges and rejects the design if any output feature
  exceeds a threshold ``T`` (100 in the paper) in absolute value.

The :class:`FilterPipeline` applies them in order to a
:class:`~repro.core.design.CandidatePool` and records per-stage statistics
(the quantities reported in Table 2).  An audit rejection is folded into the
same two Table 2 buckets the dynamic checks report — a statically detected
normalization defect still counts as "compilable but badly normalized", and
everything else as "not compilable" — so audit-first filtering reports the
same ``compilable``/``well normalized`` fractions the dynamic pipeline
measures on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..abr.env import HISTORY_LENGTH, Observation
from ..abr.networks import ActorCriticNetwork
from ..abr.state import StateFunction
from ..abr.video import STANDARD_LADDER_KBPS
from .. import nn
from .codegen import CodeBlockError, load_network_builder, load_state_function
from .design import Design, DesignKind, DesignStatus

__all__ = [
    "random_observation",
    "CheckResult",
    "AuditCheck",
    "CompilationCheck",
    "NormalizationCheck",
    "FilterPipeline",
    "FilterReport",
]

#: Threshold on the absolute value of any state feature (the paper's T).
DEFAULT_NORMALIZATION_THRESHOLD = 100.0


def random_observation(rng: np.random.Generator,
                       ladder_kbps: Tuple[int, ...] = STANDARD_LADDER_KBPS,
                       history_length: int = HISTORY_LENGTH) -> Observation:
    """Draw a random but plausible observation for fuzzing state functions.

    Ranges intentionally cover both low-bandwidth (FCC/Starlink) and
    high-bandwidth (4G/5G) regimes so that unnormalized features are exposed
    regardless of the target environment.
    """
    ladder = np.asarray(ladder_kbps, dtype=np.float64)
    bitrate_history = rng.choice(ladder, size=history_length)
    throughput_history = rng.uniform(0.05, 120.0, size=history_length)
    download_history = rng.uniform(0.05, 30.0, size=history_length)
    buffer_history = rng.uniform(0.0, 60.0, size=history_length)
    chunk_duration = 4.0
    next_sizes = ladder * 1000.0 * chunk_duration / 8.0
    next_sizes = next_sizes * rng.uniform(0.5, 1.8, size=len(ladder))
    total_chunks = int(rng.integers(32, 120))
    remaining = int(rng.integers(1, total_chunks + 1))
    return Observation(
        bitrate_kbps_history=bitrate_history.astype(float),
        throughput_mbps_history=throughput_history,
        download_time_s_history=download_history,
        buffer_s_history=buffer_history,
        next_chunk_sizes_bytes=next_sizes,
        buffer_s=float(buffer_history[-1]),
        remaining_chunks=remaining,
        total_chunks=total_chunks,
        last_bitrate_index=int(rng.integers(len(ladder))),
        bitrate_ladder_kbps=ladder,
        chunk_duration_s=chunk_duration,
    )


@dataclass
class CheckResult:
    """Outcome of running one check on one design."""

    passed: bool
    reason: str = ""


class AuditCheck:
    """Static pre-check: run the design auditor before anything executes.

    Wraps :class:`~repro.analysis.staticcheck.auditor.DesignAuditor` (lazily
    imported — :mod:`repro.analysis` pulls in the experiment layer, which
    must not load whenever ``core.filters`` does).  Besides the pass/reject
    decision, :meth:`annotate` records structured findings and the
    lowerability verdict on the design, so accepted designs carry their
    warnings and predicted execution engine into the pool.
    """

    def __init__(self, reject_on_warnings: bool = False) -> None:
        self.reject_on_warnings = reject_on_warnings
        self._auditor = None

    def _get_auditor(self):
        if self._auditor is None:
            from ..analysis.staticcheck.auditor import DesignAuditor
            self._auditor = DesignAuditor(
                reject_on_warnings=self.reject_on_warnings)
        return self._auditor

    # ------------------------------------------------------------------ #
    def check(self, design: Design) -> CheckResult:
        passed, report = self._get_auditor().check(design)
        self.annotate(design, report)
        if passed:
            if report.warnings:
                return CheckResult(True, report.warnings[0].render())
            return CheckResult(True)
        reasons = "; ".join(f.render() for f in report.errors[:3])
        return CheckResult(False, f"static audit: {reasons}")

    @staticmethod
    def annotate(design: Design, report) -> None:
        design.audit_findings = [f.to_dict() for f in report.findings]
        if report.lowerability is not None:
            design.lowerability = report.lowerability.verdict
            design.metadata["lowerability_reason"] = report.lowerability.reason

    @staticmethod
    def rejection_bucket(design: Design) -> str:
        """The Table 2 bucket an audit-rejected ``design`` falls into."""
        from ..analysis.staticcheck.findings import rejection_bucket
        buckets = {rejection_bucket(str(f.get("rule", "")))
                   for f in design.audit_findings
                   if f.get("severity") == "error"}
        if not buckets:
            return "compilation"
        return "compilation" if "compilation" in buckets else "normalization"


class CompilationCheck:
    """Trial-run check: the code must compile, execute and honour its contract."""

    def __init__(self, num_trial_inputs: int = 3, seed: int = 0,
                 num_actions: int = len(STANDARD_LADDER_KBPS)) -> None:
        if num_trial_inputs < 1:
            raise ValueError("at least one trial input is required")
        self.num_trial_inputs = num_trial_inputs
        self.seed = seed
        self.num_actions = num_actions

    # ------------------------------------------------------------------ #
    def check(self, design: Design) -> CheckResult:
        if design.kind == DesignKind.STATE:
            return self._check_state(design.code)
        return self._check_network(design.code)

    def _check_state(self, code: str) -> CheckResult:
        try:
            state_function = load_state_function(code)
        except CodeBlockError as exc:
            return CheckResult(False, str(exc))
        rng = np.random.default_rng(self.seed)
        try:
            for _ in range(self.num_trial_inputs):
                state_function.reset_shape()
                state_function(random_observation(rng))
        except Exception as exc:  # noqa: BLE001 - any failure rejects the design
            return CheckResult(False, f"trial run failed: {exc!r}")
        return CheckResult(True)

    def _check_network(self, code: str) -> CheckResult:
        try:
            builder = load_network_builder(code)
        except CodeBlockError as exc:
            return CheckResult(False, str(exc))
        rng = np.random.default_rng(self.seed)
        try:
            # Build for the canonical Pensieve state shape and for a flat state,
            # then run a forward pass on a small batch for each.
            for shape in ((6, HISTORY_LENGTH), (12,)):
                network = builder(shape, self.num_actions,
                                  rng=np.random.default_rng(self.seed))
                if not isinstance(network, ActorCriticNetwork):
                    return CheckResult(
                        False, "build_network did not return an ActorCriticNetwork")
                batch = nn.tensor(rng.normal(size=(2, *shape)))
                logits, value = network.forward(batch)
                if logits.shape != (2, self.num_actions):
                    return CheckResult(
                        False, f"policy logits have shape {logits.shape}, "
                               f"expected (2, {self.num_actions})")
                if value.shape != (2,):
                    return CheckResult(
                        False, f"value output has shape {value.shape}, expected (2,)")
                if not (np.all(np.isfinite(logits.numpy()))
                        and np.all(np.isfinite(value.numpy()))):
                    return CheckResult(False, "network produced non-finite outputs")
        except Exception as exc:  # noqa: BLE001
            return CheckResult(False, f"trial forward pass failed: {exc!r}")
        return CheckResult(True)


class NormalizationCheck:
    """Fuzzing check: no state feature may exceed ``threshold`` in magnitude."""

    def __init__(self, threshold: float = DEFAULT_NORMALIZATION_THRESHOLD,
                 num_fuzz_inputs: int = 10, seed: int = 1) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if num_fuzz_inputs < 1:
            raise ValueError("at least one fuzz input is required")
        self.threshold = threshold
        self.num_fuzz_inputs = num_fuzz_inputs
        self.seed = seed

    def check(self, design: Design) -> CheckResult:
        if design.kind != DesignKind.STATE:
            # The paper applies the normalization check only to state designs.
            return CheckResult(True, "not applicable to network designs")
        try:
            state_function = load_state_function(design.code)
        except CodeBlockError as exc:
            return CheckResult(False, str(exc))
        rng = np.random.default_rng(self.seed)
        worst = 0.0
        try:
            for _ in range(self.num_fuzz_inputs):
                state_function.reset_shape()
                state = state_function(random_observation(rng))
                worst = max(worst, float(np.abs(state).max()))
                if worst > self.threshold:
                    return CheckResult(
                        False,
                        f"feature magnitude {worst:.1f} exceeds threshold "
                        f"{self.threshold:.0f}")
        except Exception as exc:  # noqa: BLE001
            return CheckResult(False, f"fuzzing failed: {exc!r}")
        return CheckResult(True, f"max observed magnitude {worst:.2f}")


@dataclass
class FilterReport:
    """Aggregate statistics of a filtering pass (Table 2 quantities).

    ``compilable``/``well_normalized`` keep the paper's semantics regardless
    of *which* stage rejected a design: an audit rejection decrements the
    bucket its rule family maps onto (see module docstring), so the
    fractions are comparable with and without the static stage.
    ``rejected_by_audit`` additionally counts how many rejections the static
    stage caught before any code ran.
    """

    total: int = 0
    compilable: int = 0
    well_normalized: int = 0
    #: Designs rejected statically, before execution (subset of rejections).
    rejected_by_audit: int = 0
    rejection_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def compilable_fraction(self) -> float:
        return self.compilable / self.total if self.total else 0.0

    @property
    def well_normalized_fraction(self) -> float:
        return self.well_normalized / self.total if self.total else 0.0

    def _note_rejection(self, stage: str) -> None:
        self.rejection_reasons[stage] = self.rejection_reasons.get(stage, 0) + 1


class FilterPipeline:
    """Applies the pre-checks in order and updates design statuses.

    ``audit_check=None`` disables the static stage (the pre-PR-8 dynamic
    pipeline, kept for differential testing).
    """

    _DEFAULT_AUDIT = object()

    def __init__(self, compilation_check: Optional[CompilationCheck] = None,
                 normalization_check: Optional[NormalizationCheck] = None,
                 audit_check=_DEFAULT_AUDIT) -> None:
        self.audit_check: Optional[AuditCheck] = (
            AuditCheck() if audit_check is self._DEFAULT_AUDIT else audit_check)
        self.compilation_check = compilation_check or CompilationCheck()
        self.normalization_check = normalization_check or NormalizationCheck()

    def apply(self, designs: Iterable[Design]) -> FilterReport:
        """Run the checks over ``designs``, mutating their statuses."""
        report = FilterReport()
        for design in designs:
            report.total += 1
            if self.audit_check is not None:
                audit = self.audit_check.check(design)
                if not audit.passed:
                    design.mark_rejected(DesignStatus.REJECTED_AUDIT,
                                         audit.reason)
                    report.rejected_by_audit += 1
                    bucket = self.audit_check.rejection_bucket(design)
                    if bucket == "normalization":
                        # The design would have compiled; only the
                        # normalization bucket loses it.
                        report.compilable += 1
                    report._note_rejection(f"audit.{bucket}")
                    continue
            compilation = self.compilation_check.check(design)
            if not compilation.passed:
                design.mark_rejected(DesignStatus.REJECTED_COMPILATION,
                                     compilation.reason)
                report._note_rejection("compilation")
                continue
            report.compilable += 1
            normalization = self.normalization_check.check(design)
            if not normalization.passed:
                design.mark_rejected(DesignStatus.REJECTED_NORMALIZATION,
                                     normalization.reason)
                report._note_rejection("normalization")
                continue
            report.well_normalized += 1
            design.status = DesignStatus.PENDING_EVALUATION
        return report
