"""Prompt construction for design generation (§2.1 of the paper).

The paper identifies three prompting strategies that materially improve the
quality and diversity of generated designs:

1. **Chain of thought** — ask the model to analyse the existing code, list
   several improvement ideas in natural language, pick the most promising one
   and only then write code.
2. **Semantic renaming and annotation** — present the existing code with
   descriptive parameter names and comments explaining each input's meaning
   and units.
3. **Explicit normalization instructions** (state prompts only) — request that
   every feature stays within a small numeric range, because unnormalized
   features (e.g. chunk sizes in bytes) stall RL training.

This module renders those strategies into chat messages.  The same prompts are
sent to any backend implementing :class:`~repro.llm.base.LLMClient` — the real
API client or the offline synthetic generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..abr.networks import ORIGINAL_NETWORK_SOURCE
from ..abr.state import ORIGINAL_STATE_SOURCE, STATE_FUNCTION_PARAMETERS
from ..llm.base import ChatMessage

__all__ = [
    "PromptConfig",
    "PARAMETER_DESCRIPTIONS",
    "system_message",
    "build_state_prompt",
    "build_network_prompt",
]


#: Human-readable description of every state-function parameter, injected into
#: prompts so the model understands units and meanings (strategy 2).
PARAMETER_DESCRIPTIONS = {
    "bitrate_kbps_history": "bitrates selected for the previous chunks, in kbps (oldest first)",
    "throughput_mbps_history": "measured network throughput for the previous chunks, in Mbit/s",
    "download_time_s_history": "download time of each previous chunk, in seconds",
    "buffer_size_s_history": "playback buffer level after each previous chunk, in seconds",
    "next_chunk_sizes_bytes": "size of the next chunk at every available bitrate, in bytes",
    "remaining_chunk_count": "number of chunks left in the video",
    "total_chunk_count": "total number of chunks in the video",
    "bitrate_ladder_kbps": "the available bitrate ladder, ascending, in kbps",
}


@dataclass(frozen=True)
class PromptConfig:
    """Switches for the prompting strategies (used by the prompt ablation)."""

    use_chain_of_thought: bool = True
    describe_parameters: bool = True
    request_normalization: bool = True
    #: Optional description of the target network environment, e.g.
    #: "a LEO satellite network with 15-second handover interruptions".
    environment_hint: Optional[str] = None


def system_message() -> ChatMessage:
    """The system message shared by all generation prompts."""
    return ChatMessage(
        role="system",
        content=(
            "You are an expert in networked systems and reinforcement learning. "
            "You improve adaptive bitrate (ABR) streaming algorithms by rewriting "
            "individual Python functions. Always answer with a single complete, "
            "self-contained Python code block."
        ),
    )


def _parameter_glossary() -> str:
    lines = [f"- `{name}`: {PARAMETER_DESCRIPTIONS[name]}"
             for name in STATE_FUNCTION_PARAMETERS]
    return "\n".join(lines)


def _chain_of_thought_instruction() -> str:
    return (
        "First, analyse the existing implementation and briefly list at least "
        "three distinct ideas for improving it. Then select the most promising "
        "idea (or combination of ideas) and explain why. Only after that, write "
        "the final code."
    )


def build_state_prompt(config: Optional[PromptConfig] = None,
                       original_source: str = ORIGINAL_STATE_SOURCE) -> List[ChatMessage]:
    """Messages asking the model for an improved RL state representation."""
    config = config or PromptConfig()
    parts: List[str] = []
    parts.append(
        "Below is the current implementation of the RL state representation used "
        "by an ABR (adaptive bitrate) streaming algorithm. Improve the state design: "
        "propose an alternative `state_func` that may add, remove, transform or "
        "re-normalize features."
    )
    if config.environment_hint:
        parts.append(f"The target deployment environment is: {config.environment_hint}.")
    if config.describe_parameters:
        parts.append("The function parameters have the following meanings:\n"
                     + _parameter_glossary())
    if config.use_chain_of_thought:
        parts.append(_chain_of_thought_instruction())
    if config.request_normalization:
        parts.append(
            "Important: every feature in the returned state must be properly "
            "normalized — values should typically lie within [-10, 10]. Never use "
            "raw byte counts or raw kbps values as features."
        )
    parts.append(
        "Constraints: keep the function name `state_func` and its parameter list "
        "unchanged, return a 2-D NumPy array of shape (features, history_length), "
        "and only use numpy and scipy."
    )
    parts.append("Current implementation:\n```python\n" + original_source + "\n```")
    return [system_message(), ChatMessage(role="user", content="\n\n".join(parts))]


def build_network_prompt(config: Optional[PromptConfig] = None,
                         original_source: str = ORIGINAL_NETWORK_SOURCE,
                         ) -> List[ChatMessage]:
    """Messages asking the model for an improved actor-critic architecture."""
    config = config or PromptConfig()
    parts: List[str] = []
    parts.append(
        "Below is the current implementation of the actor-critic neural network "
        "architecture used by an ABR streaming algorithm trained with "
        "reinforcement learning. Improve the neural network design: propose an "
        "alternative `build_network` that may change layer types, widths, "
        "activation functions, or how the actor and critic share parameters."
    )
    if config.environment_hint:
        parts.append(f"The target deployment environment is: {config.environment_hint}.")
    if config.use_chain_of_thought:
        parts.append(_chain_of_thought_instruction())
    parts.append(
        "Constraints: keep the function name `build_network(state_shape, "
        "num_actions, rng=None)` and return an object from the provided "
        "`nn_library` (PensieveNetwork or GenericActorCritic) or a compatible "
        "actor-critic module. The returned model must map a batch of states to "
        "a (policy_logits, value) pair."
    )
    parts.append("Current implementation:\n```python\n" + original_source + "\n```")
    return [system_message(), ChatMessage(role="user", content="\n\n".join(parts))]
