"""Process-parallel execution of independent evaluation work items.

The §3.1 protocol is embarrassingly parallel: every (design, seed) training
session is an independent, deterministic function of its inputs.  This module
provides the one primitive the evaluation layer needs — an order-preserving
``parallel_map`` — plus the configuration dataclass that is plumbed from the
CLI (``--workers``) down to :class:`~repro.core.evaluation.TestScoreProtocol`.

Design constraints:

* **Determinism.** Results are returned in submission order, and each work
  item runs exactly the same code it would run serially, so a parallel sweep
  is bit-identical to the serial one regardless of scheduling.
* **Graceful degradation.** ``max_workers <= 1`` (the default) runs inline
  with zero overhead; if a process pool cannot be created (restricted
  sandboxes, missing semaphores) the map falls back to the serial path with a
  warning instead of failing the experiment.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

from ..log import get_logger
from . import telemetry

__all__ = ["ParallelConfig", "effective_workers", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")

logger = get_logger("parallel")

#: Environment variable consulted when ``max_workers`` is None.
WORKERS_ENV_VAR = "REPRO_WORKERS"


@dataclass(frozen=True)
class ParallelConfig:
    """How evaluation work items are executed.

    Attributes:
        max_workers: Process count for fan-out.  ``None`` reads
            :data:`WORKERS_ENV_VAR` (defaulting to 1); any value <= 1 runs
            serially in-process.
        chunk_threshold: Fan out only when there are at least this many work
            items; tiny sweeps are not worth the process start-up cost.
    """

    max_workers: Optional[int] = None
    chunk_threshold: int = 2

    def resolved_workers(self) -> int:
        return effective_workers(self.max_workers)


def effective_workers(max_workers: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else env var, else serial."""
    if max_workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "1")
        try:
            max_workers = int(raw)
        except ValueError:
            warnings.warn(f"ignoring non-integer {WORKERS_ENV_VAR}={raw!r}")
            max_workers = 1
    if max_workers < 0:
        max_workers = os.cpu_count() or 1
    return max(1, max_workers)


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 config: Optional[ParallelConfig] = None) -> List[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results preserve the order of ``items``.  ``fn`` and every item must be
    picklable when more than one worker is requested; the serial path has no
    such requirement.  Pool construction errors degrade to the serial path
    with a warning so experiments never die because of sandbox restrictions.
    """
    config = config or ParallelConfig()
    items = list(items)
    workers = config.resolved_workers()
    tel = telemetry.get_telemetry()
    attrs = ({"items": len(items), "workers": workers}
             if tel is not None else None)
    if workers <= 1 or len(items) < max(config.chunk_threshold, 2):
        with telemetry.span("parallel.map", attrs):
            return [fn(item) for item in items]
    workers = min(workers, len(items))
    if attrs is not None:
        attrs["workers"] = workers
    with telemetry.span("parallel.map", attrs):
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items))
        except (OSError, PermissionError, pickle.PicklingError,
                AttributeError) as exc:
            logger.warning("process pool unavailable (%r); "
                           "falling back to serial execution", exc)
            warnings.warn(
                f"process pool unavailable ({exc!r}); "
                f"falling back to serial execution")
            if tel is not None:
                tel.counter("parallel.serial_fallback")
            return [fn(item) for item in items]
