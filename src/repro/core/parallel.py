"""Process-parallel execution of independent evaluation work items.

The §3.1 protocol is embarrassingly parallel: every (design, seed) training
session is an independent, deterministic function of its inputs.  This module
provides the one primitive the evaluation layer needs — an order-preserving
``parallel_map`` — plus the configuration dataclass that is plumbed from the
CLI (``--workers``) down to :class:`~repro.core.evaluation.TestScoreProtocol`.

Design constraints:

* **Determinism.** Results are returned in submission order, and each work
  item runs exactly the same code it would run serially, so a parallel sweep
  is bit-identical to the serial one regardless of scheduling.
* **Graceful degradation.** ``max_workers <= 1`` (the default) runs inline
  with zero overhead; if a process pool cannot be created (restricted
  sandboxes, missing semaphores) the map falls back to the serial path with a
  warning instead of failing the experiment.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from ..log import get_logger
from . import telemetry

__all__ = ["ParallelConfig", "TaskOutcome", "effective_workers",
           "parallel_map", "run_resilient"]

T = TypeVar("T")
R = TypeVar("R")

logger = get_logger("parallel")

#: Environment variable consulted when ``max_workers`` is None.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Seconds between polls of the worker pool in the resilient driver.
_POLL_INTERVAL_S = 0.05


@dataclass(frozen=True)
class ParallelConfig:
    """How evaluation work items are executed.

    Attributes:
        max_workers: Process count for fan-out.  ``None`` reads
            :data:`WORKERS_ENV_VAR` (defaulting to 1); any value <= 1 runs
            serially in-process.
        chunk_threshold: Fan out only when there are at least this many work
            items; tiny sweeps are not worth the process start-up cost.
        max_retries: How many times :func:`run_resilient` re-runs a failing
            work item (raise, worker death, timeout) before quarantining it.
            0 fails fast on the first error.
        backoff_base_s: First retry delay; each further retry multiplies it
            by ``backoff_factor`` (exponential backoff).
        backoff_factor: Growth factor of the retry delay.
        job_timeout: Seconds one work item may run inside a pool worker
            before it is counted as failed and its worker recycled.  None
            disables the limit.  Only enforced under process fan-out — a
            serial in-process job cannot be preempted.
    """

    max_workers: Optional[int] = None
    chunk_threshold: int = 2
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    job_timeout: Optional[float] = None

    def resolved_workers(self) -> int:
        return effective_workers(self.max_workers)

    def backoff_s(self, failures: int) -> float:
        """Delay before the ``failures``-th retry (1-based)."""
        return self.backoff_base_s * (self.backoff_factor ** max(0, failures - 1))


@dataclass
class TaskOutcome:
    """Terminal state of one resilient work item.

    ``status`` is ``"ok"`` (``value`` holds the result), ``"quarantined"``
    (every attempt failed; ``error`` holds the last failure) or
    ``"interrupted"`` (a shutdown request arrived before the item could
    finish).
    """

    value: Any = None
    status: str = "ok"
    error: Optional[str] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def effective_workers(max_workers: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else env var, else serial."""
    if max_workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "1")
        try:
            max_workers = int(raw)
        except ValueError:
            warnings.warn(f"ignoring non-integer {WORKERS_ENV_VAR}={raw!r}")
            max_workers = 1
    if max_workers < 0:
        max_workers = os.cpu_count() or 1
    return max(1, max_workers)


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 config: Optional[ParallelConfig] = None) -> List[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results preserve the order of ``items``.  ``fn`` and every item must be
    picklable when more than one worker is requested; the serial path has no
    such requirement.  Pool construction errors degrade to the serial path
    with a warning so experiments never die because of sandbox restrictions.
    """
    config = config or ParallelConfig()
    items = list(items)
    workers = config.resolved_workers()
    tel = telemetry.get_telemetry()
    attrs = ({"items": len(items), "workers": workers}
             if tel is not None else None)
    if workers <= 1 or len(items) < max(config.chunk_threshold, 2):
        with telemetry.span("parallel.map", attrs):
            return [fn(item) for item in items]
    workers = min(workers, len(items))
    if attrs is not None:
        attrs["workers"] = workers
    with telemetry.span("parallel.map", attrs):
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items))
        except (OSError, PermissionError, pickle.PicklingError,
                AttributeError) as exc:
            logger.warning("process pool unavailable (%r); "
                           "falling back to serial execution", exc)
            warnings.warn(
                f"process pool unavailable ({exc!r}); "
                f"falling back to serial execution")
            if tel is not None:
                tel.counter("parallel.serial_fallback")
            return [fn(item) for item in items]


# --------------------------------------------------------------------------- #
# Resilient execution: retry/backoff, pool respawn, timeouts, quarantine.
# --------------------------------------------------------------------------- #
def run_resilient(fn: Callable[[T, int], R], items: Sequence[T],
                  config: Optional[ParallelConfig] = None,
                  should_stop: Optional[Callable[[], bool]] = None,
                  heartbeat: Optional[Callable[[], None]] = None,
                  initial_failures: Optional[Sequence[int]] = None,
                  ) -> List[TaskOutcome]:
    """Map ``fn(item, attempt)`` over ``items`` with failure isolation.

    The fault-tolerant sibling of :func:`parallel_map`, used by the campaign
    scheduler.  One raising, hanging or crashing work item no longer poisons
    the batch:

    * an item whose attempt raises is retried with exponential backoff up to
      ``config.max_retries`` times, then **quarantined** — the batch
      completes with a per-item :class:`TaskOutcome` instead of a traceback;
    * a worker death (``BrokenProcessPool``) charges an attempt to the items
      that were running, respawns the pool, and resubmits everything else
      uncharged;
    * an item exceeding ``config.job_timeout`` inside a worker is failed,
      its (possibly wedged) pool recycled, and the item retried;
    * ``should_stop`` (polled between attempts and pool ticks) requests a
      graceful shutdown: running work is drained, unstarted work is marked
      ``"interrupted"``, and whatever completed is returned.

    ``fn`` receives the zero-based attempt index alongside the item so
    deterministic fault plans can key off it.  Outcomes preserve submission
    order, and retried attempts run exactly the code a first attempt runs,
    so recovered results are bit-identical to undisturbed ones.

    ``initial_failures`` seeds each item's attempt counter (same length as
    ``items``) — used when another executor hands a partially-failed batch
    over (the remote transport's local fallback), so retry budgets and
    fault-plan occurrence indices continue instead of restarting.
    """
    config = config or ParallelConfig()
    items = list(items)
    workers = config.resolved_workers()
    tel = telemetry.get_telemetry()
    attrs = ({"items": len(items), "workers": workers}
             if tel is not None else None)
    if workers <= 1 or len(items) < max(config.chunk_threshold, 2):
        with telemetry.span("parallel.map", attrs):
            return _run_serial(fn, items, config, should_stop, heartbeat,
                               initial_failures)
    workers = min(workers, len(items))
    if attrs is not None:
        attrs["workers"] = workers
    with telemetry.span("parallel.map", attrs):
        driver = _ResilientDriver(fn, items, config, workers,
                                  should_stop=should_stop,
                                  heartbeat=heartbeat,
                                  initial_failures=initial_failures)
        try:
            return driver.run()
        except (OSError, PermissionError, pickle.PicklingError,
                AttributeError) as exc:
            logger.warning("process pool unavailable (%r); "
                           "falling back to serial execution", exc)
            warnings.warn(
                f"process pool unavailable ({exc!r}); "
                f"falling back to serial execution")
            if tel is not None:
                tel.counter("parallel.serial_fallback")
            return _run_serial(fn, items, config, should_stop, heartbeat,
                               initial_failures)


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_serial(fn: Callable[[T, int], R], items: Sequence[T],
                config: ParallelConfig,
                should_stop: Optional[Callable[[], bool]],
                heartbeat: Optional[Callable[[], None]] = None,
                initial_failures: Optional[Sequence[int]] = None,
                ) -> List[TaskOutcome]:
    """In-process execution with the same retry/quarantine semantics.

    ``heartbeat`` fires between items and attempts — the finest granularity
    available without preemption, which bounds lease staleness to one
    item's runtime.
    """
    outcomes: List[TaskOutcome] = []
    interrupted = False
    for index, item in enumerate(items):
        if heartbeat is not None:
            heartbeat()
        if interrupted or (should_stop is not None and should_stop()):
            outcomes.append(TaskOutcome(status="interrupted", attempts=0,
                                        error="shutdown requested"))
            interrupted = True
            continue
        attempt = initial_failures[index] if initial_failures else 0
        while True:
            try:
                value = fn(item, attempt)
            except KeyboardInterrupt:
                # ^C (or SIGTERM translated by the scheduler) mid-job: the
                # current item is lost, the rest is drained as interrupted,
                # and the caller persists whatever completed.
                outcomes.append(TaskOutcome(status="interrupted",
                                            attempts=attempt + 1,
                                            error="interrupted mid-job"))
                interrupted = True
                break
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                attempt += 1
                logger.warning("work item %d failed (attempt %d/%d): %s",
                               index, attempt, config.max_retries + 1,
                               _describe(exc))
                if should_stop is not None and should_stop():
                    outcomes.append(TaskOutcome(status="interrupted",
                                                attempts=attempt,
                                                error=_describe(exc)))
                    interrupted = True
                    break
                if attempt > config.max_retries:
                    outcomes.append(TaskOutcome(status="quarantined",
                                                attempts=attempt,
                                                error=_describe(exc)))
                    break
                time.sleep(config.backoff_s(attempt))
                if heartbeat is not None:
                    heartbeat()
            else:
                outcomes.append(TaskOutcome(value=value,
                                            attempts=attempt + 1))
                break
    return outcomes


class _ResilientDriver:
    """Pool-backed engine behind :func:`run_resilient`.

    Tracks per-item attempt counts and backoff deadlines, stamps when each
    future actually starts running (the only honest base for a job timeout
    and for charging pool crashes to the right items), and rebuilds the
    executor whenever it breaks or wedges.
    """

    def __init__(self, fn: Callable[[T, int], R], items: List[T],
                 config: ParallelConfig, workers: int,
                 should_stop: Optional[Callable[[], bool]] = None,
                 heartbeat: Optional[Callable[[], None]] = None,
                 initial_failures: Optional[Sequence[int]] = None) -> None:
        self.fn = fn
        self.items = items
        self.config = config
        self.workers = workers
        self.should_stop = should_stop or (lambda: False)
        self.heartbeat = heartbeat or (lambda: None)
        self.outcomes: List[Optional[TaskOutcome]] = [None] * len(items)
        self.failures = (list(initial_failures) if initial_failures
                         else [0] * len(items))
        self.ready_at = [0.0] * len(items)
        self.queue: List[int] = list(range(len(items)))
        self.pool: Optional[ProcessPoolExecutor] = None
        self.futures: Dict[Any, int] = {}
        self.started: Dict[Any, float] = {}

    # ------------------------------------------------------------------ #
    def run(self) -> List[TaskOutcome]:
        try:
            while self.queue or self.futures:
                if self.should_stop():
                    self._drain()
                    break
                self._submit_ready()
                self._tick()
                self.heartbeat()
        except KeyboardInterrupt:
            self._drain()
        finally:
            self._shutdown_pool()
        for index, outcome in enumerate(self.outcomes):
            if outcome is None:
                self.outcomes[index] = TaskOutcome(
                    status="interrupted", attempts=self.failures[index],
                    error="shutdown requested")
        return self.outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(max_workers=self.workers)
        return self.pool

    def _shutdown_pool(self, recycle: bool = False) -> None:
        pool = self.pool
        self.pool = None
        self.futures.clear()
        self.started.clear()
        if pool is None:
            return
        try:
            pool.shutdown(wait=not recycle, cancel_futures=True)
        except TypeError:  # pragma: no cover - cancel_futures needs py3.9
            pool.shutdown(wait=not recycle)
        if recycle:
            # A wedged worker would otherwise run to completion in the
            # abandoned pool; terminate what we can (best effort, the
            # executor offers no public kill switch).
            # shutdown() may have already nulled the internals dict.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except OSError:  # pragma: no cover - already gone
                    pass

    def _submit_ready(self) -> None:
        now = time.monotonic()
        pool = self._ensure_pool()
        free = self.workers - len(self.futures)
        remaining: List[int] = []
        for index in self.queue:
            if free > 0 and self.ready_at[index] <= now:
                future = pool.submit(self.fn, self.items[index],
                                     self.failures[index])
                self.futures[future] = index
                free -= 1
            else:
                remaining.append(index)
        self.queue = remaining

    def _tick(self) -> None:
        if not self.futures:
            # Everything unfinished is backing off; sleep until the
            # earliest item is ready again.
            if self.queue:
                now = time.monotonic()
                wake = min(self.ready_at[index] for index in self.queue)
                time.sleep(min(max(wake - now, 0.0), 0.25)
                           or _POLL_INTERVAL_S)
            return
        done, not_done = wait(list(self.futures), timeout=_POLL_INTERVAL_S,
                              return_when=FIRST_COMPLETED)
        now = time.monotonic()
        for future in not_done:
            if future not in self.started and future.running():
                self.started[future] = now
        for future in done:
            index = self.futures.pop(future)
            self.started.pop(future, None)
            try:
                value = future.result()
            except BrokenProcessPool:
                self._handle_pool_break(index)
                return
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                self._record_failure(index, _describe(exc))
            else:
                self.outcomes[index] = TaskOutcome(
                    value=value, attempts=self.failures[index] + 1)
        self._check_timeouts(now)

    def _check_timeouts(self, now: float) -> None:
        timeout = self.config.job_timeout
        if timeout is None:
            return
        expired = [future for future, start in self.started.items()
                   if future in self.futures and now - start > timeout]
        if not expired:
            return
        for future in expired:
            index = self.futures.pop(future)
            self.started.pop(future, None)
            self._record_failure(
                index, f"TimeoutError: job exceeded {timeout:.1f}s")
        # The workers behind the expired futures are wedged; everything
        # still in flight is resubmitted (uncharged) to a fresh pool.
        self._requeue_inflight(charge=None)
        self._shutdown_pool(recycle=True)
        telemetry.counter("parallel.pool_recycled")

    def _handle_pool_break(self, crashed_index: int) -> None:
        """A worker died.  Charge the items that were running, respawn."""
        self._record_failure(crashed_index,
                             "BrokenProcessPool: worker process died")
        running = {self.futures[future] for future in list(self.started)
                   if future in self.futures}
        self._requeue_inflight(charge=running)
        self._shutdown_pool(recycle=True)
        telemetry.counter("parallel.pool_recycled")
        logger.warning("worker pool died; respawning (%d item(s) resubmitted)",
                       len(self.queue))

    def _requeue_inflight(self, charge: Optional[set]) -> None:
        for future, index in list(self.futures.items()):
            if future.done() and not future.cancelled():
                # The item finished just as the pool broke/wedged: harvest
                # its result instead of charging or re-running it.
                try:
                    value = future.result()
                except Exception:  # noqa: BLE001 - fell with the pool
                    pass
                else:
                    self.outcomes[index] = TaskOutcome(
                        value=value, attempts=self.failures[index] + 1)
                    continue
            future.cancel()
            if charge is not None and index in charge:
                self._record_failure(
                    index, "BrokenProcessPool: worker process died")
            elif self.outcomes[index] is None:
                self.queue.append(index)
        self.futures.clear()
        self.started.clear()
        self.queue.sort()

    def _record_failure(self, index: int, error: str) -> None:
        self.failures[index] += 1
        attempts = self.failures[index]
        logger.warning("work item %d failed (attempt %d/%d): %s", index,
                       attempts, self.config.max_retries + 1, error)
        if attempts > self.config.max_retries:
            self.outcomes[index] = TaskOutcome(status="quarantined",
                                               attempts=attempts, error=error)
        else:
            self.ready_at[index] = (time.monotonic()
                                    + self.config.backoff_s(attempts))
            self.queue.append(index)
            self.queue.sort()

    def _drain(self) -> None:
        """Graceful shutdown: finish running work, mark the rest interrupted."""
        for index in self.queue:
            if self.outcomes[index] is None:
                self.outcomes[index] = TaskOutcome(
                    status="interrupted", attempts=self.failures[index],
                    error="shutdown requested")
        self.queue = []
        if not self.futures:
            return
        grace = self.config.job_timeout or 60.0
        done, not_done = wait(list(self.futures), timeout=grace)
        for future in done:
            index = self.futures[future]
            try:
                self.outcomes[index] = TaskOutcome(
                    value=future.result(), attempts=self.failures[index] + 1)
            except Exception as exc:  # noqa: BLE001 - drain is best effort
                self.outcomes[index] = TaskOutcome(
                    status="interrupted", attempts=self.failures[index] + 1,
                    error=_describe(exc))
        for future in not_done:
            index = self.futures[future]
            self.outcomes[index] = TaskOutcome(
                status="interrupted", attempts=self.failures[index],
                error="shutdown requested while running")
        self.futures.clear()
        self.started.clear()
