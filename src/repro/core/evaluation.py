"""Training and evaluation of candidate designs (§3.1 protocol).

This module implements:

* :func:`instantiate_agent` — turn a (state design, network design) pair into
  a runnable :class:`~repro.rl.agent.ABRAgent` (either side may be ``None``,
  meaning "use the original Pensieve component");
* :class:`DesignTrainer` — train one design in the chunk-level simulator,
  recording the per-episode training rewards and periodic checkpoint test
  scores, with optional early stopping;
* :class:`TestScoreProtocol` — the paper's scoring rule: five independent
  training sessions with different seeds, the average of the last ten
  checkpoint scores within each session, and the median across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..abr.env import SimulatorConfig, StreamingSession
from ..abr.networks import original_network_builder
from ..abr.qoe import LinearQoE, QoEMetric
from ..abr.state import StateFunction
from ..abr.video import Video
from ..rl.a2c import (A2CConfig, A2CTrainer, MultiSeedA2CTrainer,
                      TRAINING_METRIC_NAMES, evaluate_agent)
from ..rl.agent import ABRAgent
from ..traces.base import TraceSet
from .codegen import load_network_builder, load_state_function
from .design import Design, DesignKind, DesignStatus
from .early_stopping import RewardTrajectoryClassifier
from .parallel import ParallelConfig
from .results import ResultStore
from .scheduler import CampaignScheduler, EvaluationJob, JobResult, protocol_score

__all__ = [
    "EvaluationConfig",
    "TrainingRun",
    "instantiate_agent",
    "DesignTrainer",
    "TestScoreProtocol",
]


@dataclass(frozen=True)
class EvaluationConfig:
    """Training/evaluation schedule for one environment.

    The defaults are scaled-down versions of the published schedule (Table 1
    uses 40,000 epochs with checkpoints every 500); the ratio between
    ``checkpoint_interval`` and ``train_epochs`` and the "average the last 10
    checkpoints, median over 5 seeds" aggregation are preserved.
    """

    train_epochs: int = 200
    checkpoint_interval: int = 20
    last_k_checkpoints: int = 10
    num_seeds: int = 5
    a2c: A2CConfig = field(default_factory=A2CConfig)
    simulator: SimulatorConfig = field(default_factory=SimulatorConfig)
    #: Evaluate checkpoints greedily (argmax policy) as Pensieve does.
    greedy_evaluation: bool = True
    #: Step all test traces in lockstep with one batched policy forward per
    #: chunk during checkpoint evaluation (greedy, noise-free only).
    batched_evaluation: bool = True
    #: Train all seeds of a design simultaneously with stacked per-seed
    #: weights and batched fused updates (the multi-seed lockstep engine).
    #: The campaign scheduler runs one design's whole seed batch inside one
    #: worker, so lockstep applies both serially and under process fan-out.
    #: Requires a network with fused updates — the original Pensieve
    #: architecture or any generated design the kernel compiler
    #: (:mod:`repro.nn.compile`) can lower — and no early-stopping
    #: classifier; anything else falls back to the per-seed path.
    #: Seed-for-seed results are identical either way (tested).
    lockstep_training: bool = True

    def scaled(self, factor: float) -> "EvaluationConfig":
        """Return a copy with the training schedule scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            train_epochs=max(1, int(round(self.train_epochs * factor))),
            checkpoint_interval=max(1, int(round(self.checkpoint_interval * factor))),
        )


@dataclass
class TrainingRun:
    """Record of one training session of one design."""

    seed: int
    reward_history: List[float]
    checkpoint_epochs: List[int]
    checkpoint_scores: List[float]
    early_stopped: bool = False
    #: The ``last_k_checkpoints`` of the config this run was trained under;
    #: None falls back to averaging every checkpoint.
    last_k_checkpoints: Optional[int] = None
    #: Per-checkpoint training metrics (entropy, actor/critic loss, gradient
    #: norm — see :data:`~repro.rl.a2c.TRAINING_METRIC_NAMES`), each list
    #: aligned with ``checkpoint_epochs``.  Persisted in store records so a
    #: warm-store replay keeps the original run's training curves; None for
    #: records written before the telemetry layer existed.
    checkpoint_metrics: Optional[Dict[str, List[float]]] = None

    @property
    def final_score(self) -> float:
        """Average of the last-k checkpoint scores (k from the config)."""
        if not self.checkpoint_scores:
            return float("-inf")
        if self.last_k_checkpoints is not None:
            return self.smoothed_score(self.last_k_checkpoints)
        return float(np.mean(self.checkpoint_scores))

    def smoothed_score(self, last_k: int) -> float:
        if not self.checkpoint_scores:
            return float("-inf")
        if last_k < 1:
            raise ValueError("last_k must be at least 1")
        return float(np.mean(self.checkpoint_scores[-last_k:]))


def instantiate_agent(state_design: Optional[Design],
                      network_design: Optional[Design],
                      video: Video,
                      train_traces: TraceSet,
                      seed: int = 0) -> ABRAgent:
    """Build an agent from candidate designs (``None`` = original component)."""
    rng = np.random.default_rng(seed)
    if state_design is not None:
        if DesignKind(state_design.kind) != DesignKind.STATE:
            raise ValueError("state_design must be a STATE design")
        state_function = load_state_function(state_design.code,
                                             name=state_design.design_id)
    else:
        state_function = StateFunction.original()

    if network_design is not None:
        if DesignKind(network_design.kind) != DesignKind.NETWORK:
            raise ValueError("network_design must be a NETWORK design")
        builder = load_network_builder(network_design.code)
    else:
        builder = original_network_builder

    sample_session = StreamingSession(video, train_traces[0])
    sample_observation = sample_session.observe()
    return ABRAgent.from_builder(state_function, builder, sample_observation,
                                 video.num_bitrates, rng=rng)


class DesignTrainer:
    """Trains one design for one seed, with checkpointing and early stopping."""

    def __init__(self, video: Video, train_traces: TraceSet, test_traces: TraceSet,
                 config: Optional[EvaluationConfig] = None,
                 qoe: Optional[QoEMetric] = None) -> None:
        self.video = video
        self.train_traces = train_traces
        self.test_traces = test_traces
        self.config = config or EvaluationConfig()
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)

    # ------------------------------------------------------------------ #
    def run(self, state_design: Optional[Design], network_design: Optional[Design],
            seed: int,
            early_stopping: Optional[RewardTrajectoryClassifier] = None,
            early_stop_check_epoch: Optional[int] = None) -> TrainingRun:
        """Train the design for one seed and return the full training record.

        If ``early_stopping`` is provided, the classifier is consulted once the
        training-reward prefix reaches ``early_stop_check_epoch`` episodes (or
        the classifier's own prefix length); an unpromising design's training
        is truncated at that point.
        """
        cfg = self.config
        agent = instantiate_agent(state_design, network_design, self.video,
                                  self.train_traces, seed=seed)
        trainer = A2CTrainer(agent, self.video, self.train_traces, qoe=self.qoe,
                             config=cfg.a2c, simulator_config=cfg.simulator,
                             seed=seed)
        check_epoch = early_stop_check_epoch
        if early_stopping is not None and check_epoch is None:
            check_epoch = early_stopping.config.reward_prefix_length

        checkpoint_epochs: List[int] = []
        checkpoint_scores: List[float] = []
        metric_series: Dict[str, List[float]] = {
            name: [] for name in TRAINING_METRIC_NAMES}
        early_stopped = False

        for epoch in range(1, cfg.train_epochs + 1):
            trainer.train_epoch()
            if early_stopping is not None and epoch == check_epoch:
                if early_stopping.should_stop(trainer.reward_history):
                    early_stopped = True
                    break
            if epoch % cfg.checkpoint_interval == 0:
                score = evaluate_agent(agent, self.video, self.test_traces,
                                       qoe=self.qoe,
                                       simulator_config=cfg.simulator,
                                       greedy=cfg.greedy_evaluation,
                                       seed=seed,
                                       batched=cfg.batched_evaluation)
                checkpoint_epochs.append(epoch)
                checkpoint_scores.append(score)
                for name, value in trainer.checkpoint_metrics().items():
                    metric_series[name].append(value)

        return TrainingRun(
            seed=seed,
            reward_history=list(trainer.reward_history),
            checkpoint_epochs=checkpoint_epochs,
            checkpoint_scores=checkpoint_scores,
            early_stopped=early_stopped,
            last_k_checkpoints=cfg.last_k_checkpoints,
            checkpoint_metrics=metric_series,
        )

    # ------------------------------------------------------------------ #
    def run_seeds(self, state_design: Optional[Design],
                  network_design: Optional[Design],
                  seeds: Sequence[int],
                  early_stopping: Optional[RewardTrajectoryClassifier] = None,
                  ) -> List[TrainingRun]:
        """Train the design for every seed, in lockstep when possible.

        Dispatches to the multi-seed lockstep engine when
        ``config.lockstep_training`` is on, more than one seed is requested,
        no early-stopping classifier is attached (per-seed early stops would
        desynchronize the lockstep), and the instantiated networks support
        stacked fused updates.  Otherwise every seed runs through
        :meth:`run`.  Both paths produce identical records seed for seed.

        This is also the campaign scheduler's worker entry point: one
        scheduled job trains one design's whole seed batch here, inside a
        single worker process, so lockstep training composes with the
        across-design process fan-out instead of competing with it.
        """
        cfg = self.config
        if (cfg.lockstep_training and early_stopping is None
                and len(seeds) > 1):
            agents = [instantiate_agent(state_design, network_design,
                                        self.video, self.train_traces,
                                        seed=seed) for seed in seeds]
            if MultiSeedA2CTrainer.supports([a.network for a in agents]):
                return self._run_lockstep(agents, list(seeds))
        return [self.run(state_design, network_design, seed=seed,
                         early_stopping=early_stopping) for seed in seeds]

    def supports_lockstep(self, state_design: Optional[Design],
                          network_design: Optional[Design]) -> bool:
        """Whether :meth:`run_seeds` would train this design in lockstep.

        The campaign scheduler consults this before splitting a multi-seed
        job into per-seed work items: lockstep-capable jobs stay whole so
        the stacked engine applies inside their worker, while designs the
        kernel planner cannot lower gain worker-level seed parallelism
        instead.  Instantiation failures report False — the job itself will
        surface the real error when it runs.
        """
        if not self.config.lockstep_training:
            return False
        try:
            agent = instantiate_agent(state_design, network_design,
                                      self.video, self.train_traces, seed=0)
        except Exception:
            return False
        return MultiSeedA2CTrainer.supports([agent.network])

    def _run_lockstep(self, agents: Sequence[ABRAgent],
                      seeds: List[int]) -> List[TrainingRun]:
        """Train all seeds through :class:`MultiSeedA2CTrainer`.

        Mirrors the :meth:`run` schedule — same epochs, same checkpoint
        cadence, same evaluation calls — with every seed advanced together.
        """
        cfg = self.config
        trainer = MultiSeedA2CTrainer(agents, self.video, self.train_traces,
                                      qoe=self.qoe, config=cfg.a2c,
                                      simulator_config=cfg.simulator,
                                      seeds=seeds)
        checkpoint_epochs: List[int] = []
        checkpoint_scores: List[List[float]] = [[] for _ in seeds]
        metric_series: List[Dict[str, List[float]]] = [
            {name: [] for name in TRAINING_METRIC_NAMES} for _ in seeds]
        for epoch in range(1, cfg.train_epochs + 1):
            trainer.train_epoch()
            if epoch % cfg.checkpoint_interval == 0:
                scores = trainer.evaluate_checkpoint(
                    self.test_traces, greedy=cfg.greedy_evaluation,
                    batched=cfg.batched_evaluation)
                checkpoint_epochs.append(epoch)
                for per_seed, score in zip(checkpoint_scores, scores):
                    per_seed.append(score)
                for per_seed_metrics, metrics in zip(
                        metric_series, trainer.checkpoint_metrics()):
                    for name, value in metrics.items():
                        per_seed_metrics[name].append(value)
        return [TrainingRun(
                    seed=seed,
                    reward_history=list(rewards),
                    checkpoint_epochs=list(checkpoint_epochs),
                    checkpoint_scores=scores,
                    early_stopped=False,
                    last_k_checkpoints=cfg.last_k_checkpoints,
                    checkpoint_metrics=metrics,
                ) for seed, rewards, scores, metrics in zip(
                    seeds, trainer.reward_histories, checkpoint_scores,
                    metric_series)]


class TestScoreProtocol:
    """The paper's aggregation: median over seeds of last-k checkpoint means.

    Execution is owned entirely by the
    :class:`~repro.core.scheduler.CampaignScheduler`: every call builds
    (design pair, environment, seed batch) jobs and submits them in one
    batch.  Each job trains its seeds in lockstep inside one worker while
    distinct jobs fan out across the process pool, and results merge in
    submission order — so scores are bit-identical to the serial reference
    regardless of worker count.  With a result store attached, previously
    scored jobs are answered from disk.
    """

    #: Not a pytest test class, despite the (domain-specific) name.
    __test__ = False

    def __init__(self, trainer: DesignTrainer, seeds: Optional[Sequence[int]] = None,
                 parallel: Optional[ParallelConfig] = None,
                 store: Optional[ResultStore] = None,
                 scheduler: Optional[CampaignScheduler] = None,
                 environment: str = "") -> None:
        self.trainer = trainer
        config = trainer.config
        self.seeds = list(seeds) if seeds is not None else list(range(config.num_seeds))
        if not self.seeds:
            raise ValueError("at least one seed is required")
        self.scheduler = scheduler or CampaignScheduler(
            parallel=parallel or ParallelConfig(), store=store)
        self.environment = environment

    # ------------------------------------------------------------------ #
    def job(self, state_design: Optional[Design],
            network_design: Optional[Design],
            early_stopping: Optional[RewardTrajectoryClassifier] = None,
            ) -> EvaluationJob:
        """One scheduler job covering this protocol's full seed batch."""
        return EvaluationJob(trainer=self.trainer, state_design=state_design,
                             network_design=network_design,
                             seeds=tuple(self.seeds),
                             early_stopping=early_stopping,
                             environment=self.environment)

    def design_jobs(self, designs: Sequence[Design],
                    early_stopping: Optional[RewardTrajectoryClassifier] = None,
                    ) -> List[EvaluationJob]:
        """One job per design (paired with the original other component)."""
        return [self.job(*self._design_job(design), early_stopping=early_stopping)
                for design in designs]

    def _aggregate(self, runs: Sequence[TrainingRun]) -> float:
        return protocol_score(runs, self.trainer.config.last_k_checkpoints)

    def run(self, state_design: Optional[Design], network_design: Optional[Design],
            early_stopping: Optional[RewardTrajectoryClassifier] = None,
            ) -> Tuple[float, List[TrainingRun]]:
        """Train across all seeds; returns (test score, per-seed runs)."""
        result, = self.scheduler.run(
            [self.job(state_design, network_design, early_stopping)])
        return result.score, result.runs

    def run_many(self, jobs: Sequence[Tuple[Optional[Design], Optional[Design]]],
                 early_stopping: Optional[RewardTrajectoryClassifier] = None,
                 ) -> List[Tuple[float, List[TrainingRun]]]:
        """Evaluate several (state, network) pairs in one scheduled batch.

        All jobs are submitted to a single scheduler pass, which keeps every
        worker busy across the whole sweep; per-job results come back in
        submission order with seeds in protocol order, exactly as if each
        pair had been run serially.
        """
        scheduled = self.scheduler.run(
            [self.job(state_design, network_design, early_stopping)
             for state_design, network_design in jobs])
        return [(result.score, result.runs) for result in scheduled]

    @staticmethod
    def _design_job(design: Design) -> Tuple[Optional[Design], Optional[Design]]:
        kind = DesignKind(design.kind)
        state = design if kind == DesignKind.STATE else None
        network = design if kind == DesignKind.NETWORK else None
        return state, network

    @staticmethod
    def _record_design(design: Design, score: float,
                       runs: Sequence[TrainingRun]) -> float:
        """Apply a (score, runs) result to a design's bookkeeping fields."""
        # Record the first seed's training history on the design for the
        # early-stopping corpus and the training-curve figures.
        if runs:
            design.record_training(runs[0].reward_history,
                                   runs[0].checkpoint_scores)
            design.metadata["num_seeds"] = len(runs)
            design.metadata["early_stopped_seeds"] = sum(r.early_stopped for r in runs)
        if runs and all(run.early_stopped for run in runs):
            design.status = DesignStatus.EARLY_STOPPED
            design.metadata["prefix_reward_mean"] = float(
                np.mean(runs[0].reward_history)) if runs[0].reward_history else 0.0
            return float("-inf")
        design.finalize(score)
        return score

    @staticmethod
    def _record_failed(design: Design, result: JobResult) -> float:
        """Bookkeeping for a quarantined job: the design is marked FAILED.

        ``_record_design`` must not run here — its ``all(early_stopped)``
        check is vacuously true over the empty run list a fully failed job
        carries, which would mislabel the design as early-stopped.
        """
        design.status = DesignStatus.FAILED
        design.rejection_reason = result.error or "evaluation failed"
        design.metadata["evaluation_attempts"] = result.attempts
        return float("-inf")

    def record_results(self, designs: Sequence[Design],
                       results: Sequence[JobResult]) -> List[float]:
        """Apply one scheduled batch's results to the designs, in order.

        A quarantined result marks its design ``FAILED`` (scored ``-inf``)
        instead of feeding partial runs through the early-stopping
        bookkeeping.
        """
        return [self._record_design(design, result.score, result.runs)
                if result.ok else self._record_failed(design, result)
                for design, result in zip(designs, results)]

    def score_design(self, design: Design,
                     early_stopping: Optional[RewardTrajectoryClassifier] = None,
                     ) -> float:
        """Evaluate one design (paired with the original other component)."""
        state, network = self._design_job(design)
        score, runs = self.run(state, network, early_stopping=early_stopping)
        return self._record_design(design, score, runs)

    def score_designs_detailed(self, designs: Sequence[Design],
                               early_stopping: Optional[RewardTrajectoryClassifier] = None,
                               ) -> Tuple[List[float], List[JobResult]]:
        """Evaluate a design sweep and return (recorded scores, job results).

        One scheduler pass covers every design; each design gets the same
        bookkeeping :meth:`score_design` applies.  The
        :class:`~repro.core.scheduler.JobResult` list gives callers access
        to the per-seed runs (e.g. for training curves).
        """
        results = self.scheduler.run(
            self.design_jobs(designs, early_stopping=early_stopping))
        return self.record_results(designs, results), results

    def score_designs(self, designs: Sequence[Design],
                      early_stopping: Optional[RewardTrajectoryClassifier] = None,
                      ) -> List[float]:
        """Evaluate a design sweep as one flat (design, seed) fan-out.

        Equivalent to calling :meth:`score_design` on each design in order
        (same scores, same per-design bookkeeping), but all jobs share one
        scheduler pass so parallel workers stay saturated across designs.
        """
        scores, _ = self.score_designs_detailed(designs,
                                                early_stopping=early_stopping)
        return scores

    def score_original(self) -> float:
        """Evaluate the unmodified Pensieve design under the same protocol."""
        score, _ = self.run(None, None)
        return score
