"""Deterministic fault injection for campaign resilience testing.

The fault-tolerance contract of the scheduler/store stack — retries heal
transient failures, quarantine isolates persistent ones, leases serialize
concurrent stores, and recovered campaigns are bit-identical to fault-free
runs — is only worth stating if it can be *proven*.  This module provides the
probe: a seeded, picklable :class:`FaultPlan` that injects failures at named
sites in the execution path, deterministically enough that a test can assert
the exact recovery sequence.

Sites
-----

``job.exception``
    Raise :class:`InjectedFault` inside the worker entry point, before any
    training happens (a deterministic stand-in for a raising design).
``job.crash``
    Kill the worker process with ``os._exit`` — the parent sees a
    ``BrokenProcessPool`` and must respawn the pool.  Under serial execution
    (where dying would take the campaign down with it) the site degrades to
    an :class:`InjectedFault` marked as a crash surrogate.
``job.timeout``
    Sleep ``delay_s`` seconds inside the job so a configured ``job_timeout``
    expires (under serial execution the sleep simply delays the job).
``job.interrupt``
    Deliver ``SIGINT`` to the current process mid-job (parent/serial
    execution only) — exercising the scheduler's graceful-shutdown path with
    none of the timing flakiness of an external kill.
``store.torn_write``
    Corrupt the payload of a :meth:`ResultStore.put_run` before it reaches
    its final path, as a crash mid-write would.
``store.lease_hold``
    Plant a foreign lease (aged by ``delay_s`` seconds) on a key just before
    the store tries to claim it, forcing the contention or stale-takeover
    path.
``rpc.worker_crash``
    Kill a remote campaign worker (``repro worker``) with ``os._exit`` upon
    receiving a matching JOB — the coordinator must detect the lost
    connection, requeue the job and respawn the subprocess.
``rpc.conn_drop``
    Make a remote worker close its coordinator connection upon receiving a
    matching JOB and reconnect — the coordinator must requeue the in-flight
    job and accept the fresh HELLO.
``rpc.heartbeat_loss``
    Suppress a remote worker's heartbeats and stall it ``delay_s`` seconds
    before executing a matching job, so the coordinator's heartbeat deadline
    revokes the assignment; the worker then finishes anyway and its stale
    RESULT must be fenced by the assignment-epoch check.
``rpc.result_delay``
    Delay a remote worker's RESULT by ``delay_s`` seconds after computing it
    (heartbeats keep flowing) — shuffling network arrival order to prove the
    submission-order telemetry/result merge is arrival-order independent.

Determinism
-----------

A rule fires based only on *(site, key, occurrence)* — the occurrence index
is the job's attempt number (or the store's per-key operation count), never
wall-clock state — so the same plan produces the same fault sequence in any
process, and a rule with ``times=N`` fires for exactly the first ``N``
attempts and then lets the retry succeed.  ``probability`` draws from a hash
of ``(seed, site, key, occurrence)``, not a shared RNG stream, so worker
placement cannot change which faults fire.

The plan is installed process-globally (:func:`install_plan` /
:func:`inject`) and rides to pool workers inside the scheduler's task
payloads exactly like the engine-state tuple, so a worker observes the same
plan the parent does.
"""

from __future__ import annotations

import hashlib
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Tuple

from ..log import get_logger

__all__ = [
    "FAULT_SITES",
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "install_plan",
    "get_plan",
    "clear_plan",
    "inject",
    "perturb_job",
    "in_worker_process",
    "store_rule",
    "rpc_rule",
]

logger = get_logger("faults")

#: Every site the execution path consults.  Specs naming anything else are
#: rejected up front so a typo cannot silently disable a chaos run.
FAULT_SITES = frozenset({
    "job.exception",
    "job.crash",
    "job.timeout",
    "job.interrupt",
    "store.torn_write",
    "store.lease_hold",
    "rpc.worker_crash",
    "rpc.conn_drop",
    "rpc.heartbeat_loss",
    "rpc.result_delay",
})


class InjectedFault(RuntimeError):
    """Raised (or simulated) by a firing fault rule."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire ``site`` for matching keys, ``times`` times.

    Attributes:
        site: One of :data:`FAULT_SITES`.
        match: Substring matched against the fault point's key (the
            scheduler's job label, a store key …).  Empty or ``"*"`` matches
            everything.
        times: Fire for occurrence indices ``0 .. times-1`` (the attempt
            number for job sites, the per-key operation count for store
            sites); a negative value fires forever — the persistent failure
            that must end in quarantine.
        delay_s: Sleep length for ``job.timeout``; planted-lease age for
            ``store.lease_hold``.
        probability: Chance the rule fires for an otherwise-matching
            occurrence, drawn deterministically from the plan seed.
    """

    site: str
    match: str = ""
    times: int = 1
    delay_s: float = 0.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"expected one of {sorted(FAULT_SITES)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    def matches(self, key: str, occurrence: int) -> bool:
        if self.times >= 0 and occurrence >= self.times:
            return False
        if self.match and self.match != "*" and self.match not in key:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules, consulted at every injection site."""

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def should_fire(self, site: str, key: str,
                    occurrence: int) -> Optional[FaultRule]:
        """The first matching rule for this (site, key, occurrence), or None.

        Deterministic: depends only on the arguments and the plan seed,
        never on process identity, time, or shared RNG state.
        """
        for rule in self.rules:
            if rule.site != site or not rule.matches(key, occurrence):
                continue
            if rule.probability >= 1.0 or self._draw(site, key, occurrence) \
                    < rule.probability:
                return rule
        return None

    def _draw(self, site: str, key: str, occurrence: int) -> float:
        token = f"{self.seed}|{site}|{key}|{occurrence}".encode("utf-8")
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact CLI spec into a plan.

        Grammar: comma-separated elements, each either ``seed=N`` or
        ``site[:match[:times[:delay_s]]]`` — e.g.
        ``"job.exception:*:2,job.crash::1,store.torn_write:*:1,seed=7"``.
        An omitted or ``*`` match hits every key; ``times=-1`` fires
        forever.
        """
        rules = []
        seed = 0
        for element in spec.split(","):
            element = element.strip()
            if not element:
                continue
            if element.startswith("seed="):
                seed = int(element[len("seed="):])
                continue
            fields = element.split(":")
            if len(fields) > 4:
                raise ValueError(f"malformed fault element {element!r}")
            site = fields[0]
            match = fields[1] if len(fields) > 1 else ""
            times = int(fields[2]) if len(fields) > 2 and fields[2] else 1
            delay = float(fields[3]) if len(fields) > 3 and fields[3] else 0.0
            rules.append(FaultRule(site=site, match=match, times=times,
                                   delay_s=delay))
        return cls(rules=tuple(rules), seed=seed)


# --------------------------------------------------------------------------- #
# Process-global plan.  The scheduler copies the installed plan into worker
# payloads (like the engine-state tuple), and the worker entry point
# re-installs it before consulting any site.
# --------------------------------------------------------------------------- #

_PLAN: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the active fault plan, returning the previous one."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def get_plan() -> Optional[FaultPlan]:
    """The active fault plan, or None when no faults are injected."""
    return _PLAN


def clear_plan() -> None:
    install_plan(None)


@contextmanager
def inject(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Scope ``plan`` as the active fault plan for a ``with`` block."""
    previous = install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def in_worker_process() -> bool:
    """True inside a spawned/forked pool worker, False in the parent."""
    import multiprocessing

    return multiprocessing.parent_process() is not None


def perturb_job(key: str, attempt: int) -> None:
    """Consult the job-level sites for ``key`` at ``attempt``.

    Called by the scheduler's worker entry point before training starts.
    May raise :class:`InjectedFault`, sleep, kill the worker process, or
    deliver ``SIGINT`` to the parent, per the active plan.
    """
    plan = _PLAN
    if plan is None:
        return
    rule = plan.should_fire("job.timeout", key, attempt)
    if rule is not None:
        logger.debug("fault: sleeping %.2fs in %s (attempt %d)",
                     rule.delay_s, key, attempt)
        time.sleep(rule.delay_s)
    rule = plan.should_fire("job.interrupt", key, attempt)
    if rule is not None and not in_worker_process():
        logger.debug("fault: delivering SIGINT during %s (attempt %d)",
                     key, attempt)
        os.kill(os.getpid(), signal.SIGINT)
    rule = plan.should_fire("job.crash", key, attempt)
    if rule is not None:
        if in_worker_process():
            logger.debug("fault: killing worker pid %d in %s (attempt %d)",
                         os.getpid(), key, attempt)
            # Flush so the parent's log is not missing the line above, then
            # die the way a segfaulting or OOM-killed worker would.
            sys.stderr.flush()
            os._exit(66)
        raise InjectedFault(
            f"injected worker crash (serial surrogate) in {key} "
            f"attempt {attempt}")
    rule = plan.should_fire("job.exception", key, attempt)
    if rule is not None:
        raise InjectedFault(f"injected job exception in {key} "
                            f"attempt {attempt}")


def store_rule(site: str, key: str, occurrence: int) -> Optional[FaultRule]:
    """Consult a ``store.*`` site; the store applies the effect itself."""
    plan = _PLAN
    if plan is None:
        return None
    return plan.should_fire(site, key, occurrence)


def rpc_rule(site: str, key: str, occurrence: int) -> Optional[FaultRule]:
    """Consult an ``rpc.*`` site; the transport applies the effect itself.

    ``key`` is the work item's fault key (the scheduler's job label) and
    ``occurrence`` its attempt number, so remote chaos plans share the
    job-site determinism contract.
    """
    plan = _PLAN
    if plan is None:
        return None
    return plan.should_fire(site, key, occurrence)
