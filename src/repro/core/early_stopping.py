"""Early-stopping model: a 1D-CNN over early training rewards (§2.2).

Training RL designs to convergence is the dominant cost of the pipeline.  The
early-stopping model looks at the rewards from the first ``K`` training
episodes of a design and predicts whether the design could end up among the
top performers; if not, its training is terminated early.

The implementation follows the paper closely:

* the classifier is a small 1-D CNN over the (standardized) reward prefix;
* because labelling only the top 1% as positive produces extreme class
  imbalance, training uses **label smoothing**: the positive label is expanded
  to the top 20% during optimization;
* after training, the decision threshold is re-tuned against the *original*
  top-1% labels on the training split so that the false-negative rate is 0%
  (no top design is ever rejected) while the true-negative rate is maximized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import nn

__all__ = [
    "EarlyStoppingConfig",
    "prepare_reward_prefix",
    "top_fraction_labels",
    "tune_threshold_zero_fnr",
    "RewardTrajectoryClassifier",
    "EarlyStoppingDecision",
]


@dataclass(frozen=True)
class EarlyStoppingConfig:
    """Hyper-parameters of the early-stopping model."""

    #: Number of early training episodes whose rewards are used as input.
    reward_prefix_length: int = 10
    #: Fraction of designs considered "top performers" (positives), paper: 1%.
    top_fraction: float = 0.01
    #: Expanded positive fraction used during training (label smoothing), 20%.
    smoothed_fraction: float = 0.20
    #: 1D-CNN hyper-parameters.
    conv_channels: int = 16
    kernel_size: int = 3
    hidden_units: int = 32
    #: Optimization.
    training_epochs: int = 300
    learning_rate: float = 5e-3
    batch_size: int = 32
    seed: int = 0
    #: Safety margin subtracted from the tuned threshold so borderline designs
    #: on unseen data are kept rather than stopped.
    threshold_margin: float = 1e-6


def prepare_reward_prefix(rewards: Sequence[float], length: int) -> np.ndarray:
    """Trim or pad a reward trajectory to exactly ``length`` entries.

    Trajectories shorter than ``length`` are padded by repeating the last
    observed reward (a design evaluated for fewer episodes keeps its latest
    performance level); empty trajectories become all-zeros.
    """
    array = np.asarray(list(rewards), dtype=np.float64)
    if array.size == 0:
        return np.zeros(length)
    if array.size >= length:
        return array[:length].copy()
    pad = np.full(length - array.size, array[-1])
    return np.concatenate([array, pad])


def top_fraction_labels(final_scores: Sequence[float], fraction: float) -> np.ndarray:
    """Binary labels marking the top ``fraction`` of ``final_scores`` as 1.

    At least one design is always labelled positive.
    """
    scores = np.asarray(final_scores, dtype=np.float64)
    if scores.size == 0:
        return np.zeros(0, dtype=np.int64)
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    k = max(1, int(round(fraction * scores.size)))
    order = np.argsort(scores)[::-1]
    labels = np.zeros(scores.size, dtype=np.int64)
    labels[order[:k]] = 1
    return labels


def tune_threshold_zero_fnr(scores: np.ndarray, labels: np.ndarray,
                            margin: float = 1e-6) -> float:
    """Largest threshold that keeps every positive (0% false-negative rate).

    The paper tunes the classification threshold on the training split so that
    no top-performing design is rejected while as many suboptimal designs as
    possible are stopped; that threshold is exactly the minimum score among
    positives (minus a tiny margin).
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    positives = scores[labels == 1]
    if positives.size == 0:
        return float("-inf")
    return float(positives.min() - margin)


@dataclass
class EarlyStoppingDecision:
    """Decision for one design."""

    score: float
    threshold: float

    @property
    def stop(self) -> bool:
        """True if the design's training should be terminated early."""
        return self.score < self.threshold


class _RewardCNN(nn.Module):
    """1-D CNN binary classifier over reward prefixes."""

    def __init__(self, prefix_length: int, conv_channels: int, kernel_size: int,
                 hidden_units: int, rng: np.random.Generator) -> None:
        super().__init__()
        kernel = min(kernel_size, prefix_length)
        self.conv = nn.Conv1D(1, conv_channels, kernel, activation="relu", rng=rng)
        conv_positions = prefix_length - kernel + 1
        self.hidden = nn.Dense(conv_channels * conv_positions, hidden_units,
                               activation="relu", rng=rng)
        self.out = nn.Dense(hidden_units, 1, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        batch = x.shape[0]
        features = self.conv(x).reshape(batch, -1)
        logits = self.out(self.hidden(features)).reshape(batch)
        return logits.sigmoid()


class RewardTrajectoryClassifier:
    """The paper's "Reward Only" early-stopping model."""

    def __init__(self, config: Optional[EarlyStoppingConfig] = None) -> None:
        self.config = config or EarlyStoppingConfig()
        self._model: Optional[_RewardCNN] = None
        self._mean = 0.0
        self._std = 1.0
        self.threshold: Optional[float] = None

    # ------------------------------------------------------------------ #
    def _to_matrix(self, reward_prefixes: Sequence[Sequence[float]]) -> np.ndarray:
        length = self.config.reward_prefix_length
        return np.stack([prepare_reward_prefix(r, length) for r in reward_prefixes])

    def _standardize(self, matrix: np.ndarray, fit: bool = False) -> np.ndarray:
        if fit:
            self._mean = float(matrix.mean())
            self._std = float(matrix.std()) or 1.0
        return (matrix - self._mean) / self._std

    # ------------------------------------------------------------------ #
    def fit(self, reward_prefixes: Sequence[Sequence[float]],
            final_scores: Sequence[float]) -> "RewardTrajectoryClassifier":
        """Train the classifier and tune its decision threshold."""
        if len(reward_prefixes) != len(final_scores):
            raise ValueError("reward prefixes and final scores must align")
        if len(reward_prefixes) < 4:
            raise ValueError("need at least 4 designs to fit the classifier")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        matrix = self._standardize(self._to_matrix(reward_prefixes), fit=True)
        smoothed_labels = top_fraction_labels(final_scores, cfg.smoothed_fraction)
        strict_labels = top_fraction_labels(final_scores, cfg.top_fraction)

        model = _RewardCNN(cfg.reward_prefix_length, cfg.conv_channels,
                           cfg.kernel_size, cfg.hidden_units, rng)
        optimizer = nn.Adam(model.parameters(), lr=cfg.learning_rate)
        inputs = matrix[:, None, :]
        n = inputs.shape[0]
        targets = smoothed_labels.astype(np.float64)

        for _ in range(cfg.training_epochs):
            order = rng.permutation(n)
            for start in range(0, n, cfg.batch_size):
                batch_idx = order[start:start + cfg.batch_size]
                batch_x = nn.tensor(inputs[batch_idx])
                batch_y = nn.tensor(targets[batch_idx])
                predictions = model(batch_x)
                loss = nn.binary_cross_entropy(predictions, batch_y)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

        self._model = model
        # Revert to the strict top-1% labels and tune the threshold for 0% FNR.
        scores = self.predict_scores(reward_prefixes)
        self.threshold = tune_threshold_zero_fnr(scores, strict_labels,
                                                 margin=cfg.threshold_margin)
        return self

    # ------------------------------------------------------------------ #
    def predict_scores(self, reward_prefixes: Sequence[Sequence[float]]) -> np.ndarray:
        """Classifier scores in [0, 1]; higher means more promising."""
        if self._model is None:
            raise RuntimeError("classifier has not been fitted")
        matrix = self._standardize(self._to_matrix(reward_prefixes))
        with nn.no_grad():
            outputs = self._model(nn.tensor(matrix[:, None, :]))
        return outputs.numpy().copy()

    def decide(self, reward_prefix: Sequence[float]) -> EarlyStoppingDecision:
        """Early-stopping decision for one design's reward prefix."""
        if self.threshold is None:
            raise RuntimeError("classifier has not been fitted")
        score = float(self.predict_scores([reward_prefix])[0])
        return EarlyStoppingDecision(score=score, threshold=self.threshold)

    def should_stop(self, reward_prefix: Sequence[float]) -> bool:
        """True when training of this design should be terminated early."""
        return self.decide(reward_prefix).stop

    # ------------------------------------------------------------------ #
    def evaluate(self, reward_prefixes: Sequence[Sequence[float]],
                 final_scores: Sequence[float]) -> dict:
        """False/true negative rates against the strict top-1% labels."""
        if self.threshold is None:
            # Guard explicitly: an unfitted threshold would otherwise reach
            # classification_rates and fail with a confusing TypeError on
            # ``scores >= None``.
            raise RuntimeError("classifier has not been fitted")
        labels = top_fraction_labels(final_scores, self.config.top_fraction)
        scores = self.predict_scores(reward_prefixes)
        return classification_rates(scores, labels, self.threshold)


def classification_rates(scores: np.ndarray, labels: np.ndarray,
                         threshold: float) -> dict:
    """Compute false-negative and true-negative rates at ``threshold``."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    predicted_positive = scores >= threshold
    positives = labels == 1
    negatives = labels == 0
    n_pos = int(positives.sum())
    n_neg = int(negatives.sum())
    false_negatives = int(np.sum(positives & ~predicted_positive))
    true_negatives = int(np.sum(negatives & ~predicted_positive))
    return {
        "false_negative_rate": false_negatives / n_pos if n_pos else 0.0,
        "true_negative_rate": true_negatives / n_neg if n_neg else 0.0,
        "num_positives": n_pos,
        "num_negatives": n_neg,
    }
