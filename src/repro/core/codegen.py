"""Sandboxed compilation and execution of LLM-generated code blocks.

Generated designs arrive as Python source strings.  This module turns them
into callables:

* :func:`load_state_function` — compiles a ``state_func`` code block and wraps
  it in a :class:`~repro.abr.state.StateFunction`;
* :func:`load_network_builder` — compiles a ``build_network`` code block and
  returns a builder callable.

Execution happens inside a restricted namespace: generated code can use NumPy,
SciPy, ``math``/``statistics`` from the standard library and — for network
code — the ``nn_library`` facade over :mod:`repro.abr.networks` and
:mod:`repro.nn`.  Imports of anything else (os, subprocess, sockets, ...)
are rejected.  The sandbox is a safety and reproducibility measure, not a
hard security boundary, mirroring how the paper executed generated code inside
the Pensieve code base.
"""

from __future__ import annotations

import builtins
import math
import statistics
import types
from typing import Callable, Dict, Optional

import numpy as np

from ..abr import networks as abr_networks
from ..abr.networks import NETWORK_BUILDER_NAME
from ..abr.state import STATE_FUNCTION_NAME, StateFunction
from .. import nn as nn_package

__all__ = [
    "CodeBlockError",
    "ALLOWED_IMPORT_ROOTS",
    "compile_code_block",
    "load_state_function",
    "load_network_builder",
]


class CodeBlockError(Exception):
    """Raised when a generated code block cannot be compiled or executed."""


#: Top-level packages generated code is allowed to import.
ALLOWED_IMPORT_ROOTS = frozenset({
    "numpy", "scipy", "math", "statistics", "collections", "itertools",
    "functools", "random", "typing", "dataclasses",
})


def _restricted_import(name: str, globals=None, locals=None, fromlist=(), level=0):
    root = name.split(".")[0]
    if root not in ALLOWED_IMPORT_ROOTS:
        raise CodeBlockError(
            f"import of {name!r} is not allowed in generated code "
            f"(allowed roots: {sorted(ALLOWED_IMPORT_ROOTS)})")
    return __import__(name, globals, locals, fromlist, level)


class _NNLibraryFacade(types.SimpleNamespace):
    """The ``nn_library`` module exposed to generated network code."""


def _make_nn_library() -> _NNLibraryFacade:
    return _NNLibraryFacade(
        PensieveNetwork=abr_networks.PensieveNetwork,
        GenericActorCritic=abr_networks.GenericActorCritic,
        ActorCriticNetwork=abr_networks.ActorCriticNetwork,
        nn=nn_package,
    )


def _sandbox_globals(extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    safe_builtins = {
        name: getattr(builtins, name)
        for name in (
            "abs", "all", "any", "bool", "dict", "enumerate", "filter", "float",
            "int", "len", "list", "map", "max", "min", "print", "range",
            "reversed", "round", "set", "sorted", "str", "sum", "tuple", "zip",
            "isinstance", "issubclass", "getattr", "hasattr", "setattr",
            "Exception", "ValueError", "TypeError", "IndexError", "KeyError",
            "RuntimeError", "ZeroDivisionError", "ArithmeticError",
            "StopIteration", "NotImplementedError", "object", "super", "type",
            "staticmethod", "classmethod", "property", "slice", "divmod", "pow",
            "repr", "format", "iter", "next", "frozenset", "complex", "bytes",
            "True", "False", "None",
        )
        if hasattr(builtins, name)
    }
    safe_builtins["__import__"] = _restricted_import
    sandbox: Dict[str, object] = {
        "__builtins__": safe_builtins,
        "__name__": "generated_design",
        "np": np,
        "numpy": np,
        "math": math,
        "statistics": statistics,
    }
    if extra:
        sandbox.update(extra)
    return sandbox


def compile_code_block(code: str, expected_name: str,
                       extra_globals: Optional[Dict[str, object]] = None,
                       ) -> Callable:
    """Compile ``code`` and return the callable named ``expected_name``.

    Raises:
        CodeBlockError: on syntax errors, execution errors, a missing
            definition, or a definition that is not callable.
    """
    if not code or not code.strip():
        raise CodeBlockError("empty code block")
    try:
        compiled = compile(code, filename="<generated-design>", mode="exec")
    except SyntaxError as exc:
        raise CodeBlockError(f"syntax error: {exc}") from exc

    namespace = _sandbox_globals(extra_globals)
    try:
        exec(compiled, namespace)  # noqa: S102 - sandboxed by design
    except CodeBlockError:
        raise
    except Exception as exc:
        raise CodeBlockError(f"execution of code block failed: {exc!r}") from exc

    if expected_name not in namespace:
        raise CodeBlockError(f"code block does not define {expected_name!r}")
    candidate = namespace[expected_name]
    if not callable(candidate):
        raise CodeBlockError(f"{expected_name!r} is defined but not callable")
    return candidate


def load_state_function(code: str, name: str = "generated-state") -> StateFunction:
    """Compile a state-function code block into a :class:`StateFunction`."""
    func = compile_code_block(code, STATE_FUNCTION_NAME)
    return StateFunction(func, name=name)


def load_network_builder(code: str) -> Callable:
    """Compile a network-builder code block into a builder callable.

    The returned callable has the signature
    ``build_network(state_shape, num_actions, rng=None)``.
    """
    return compile_code_block(code, NETWORK_BUILDER_NAME,
                              extra_globals={"nn_library": _make_nn_library(),
                                             "nn": nn_package})
