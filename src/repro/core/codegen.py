"""Sandboxed compilation and execution of LLM-generated code blocks.

Generated designs arrive as Python source strings.  This module turns them
into callables:

* :func:`load_state_function` — compiles a ``state_func`` code block and wraps
  it in a :class:`~repro.abr.state.StateFunction`;
* :func:`load_network_builder` — compiles a ``build_network`` code block and
  returns a builder callable.

Execution happens inside a restricted namespace: generated code can use NumPy,
SciPy, ``math``/``statistics`` from the standard library and — for network
code — the ``nn_library`` facade over :mod:`repro.abr.networks` and
:mod:`repro.nn`.  Imports of anything else (os, subprocess, sockets, ...)
are rejected.  The sandbox is a safety and reproducibility measure, not a
hard security boundary, mirroring how the paper executed generated code inside
the Pensieve code base.

Two hardening layers complement the static design auditor
(:mod:`repro.analysis.staticcheck`), which rejects escape attempts before any
``exec`` happens:

* ``getattr``/``setattr``/``hasattr`` are wrapped to refuse attribute names
  that are not literal strings at call time or that start with ``_`` —
  closing the ``getattr(obj, '__class__')`` route around the auditor's
  static dunder rule (plain ``obj.__class__`` syntax can only be rejected
  statically, which the auditor does).
* ``import random`` hands generated code a **seeded** stand-in for the
  module (:class:`_SeededRandom`, seed :data:`GENERATED_RANDOM_SEED`), so a
  design that draws from ``random`` still evaluates deterministically and
  the content-addressed result store stays sound.  ``random.Random(seed)``
  and ``random.seed(...)`` keep working; every module-level draw comes from
  the injected seeded instance.
"""

from __future__ import annotations

import builtins
import math
import random as _random_module
import statistics
import types
from typing import Callable, Dict, Optional

import numpy as np

from ..abr import networks as abr_networks
from ..abr.networks import NETWORK_BUILDER_NAME
from ..abr.state import STATE_FUNCTION_NAME, StateFunction
from .. import nn as nn_package

__all__ = [
    "CodeBlockError",
    "ALLOWED_IMPORT_ROOTS",
    "SAFE_BUILTIN_NAMES",
    "SANDBOX_GLOBAL_NAMES",
    "NETWORK_GLOBAL_NAMES",
    "NN_LIBRARY_ATTRIBUTES",
    "GENERATED_RANDOM_SEED",
    "compile_code_block",
    "load_state_function",
    "load_network_builder",
]


class CodeBlockError(Exception):
    """Raised when a generated code block cannot be compiled or executed."""


#: Top-level packages generated code is allowed to import.
ALLOWED_IMPORT_ROOTS = frozenset({
    "numpy", "scipy", "math", "statistics", "collections", "itertools",
    "functools", "random", "typing", "dataclasses",
})

#: Builtins exposed to generated code.  ``getattr``/``setattr``/``hasattr``
#: appear here but are *wrapped* (see :func:`_safe_getattr`) so they reject
#: underscore-prefixed names at runtime.  The static auditor
#: (:mod:`repro.analysis.staticcheck`) treats this tuple as the set of
#: resolvable builtin names.
SAFE_BUILTIN_NAMES = (
    "abs", "all", "any", "bool", "dict", "enumerate", "filter", "float",
    "int", "len", "list", "map", "max", "min", "print", "range",
    "reversed", "round", "set", "sorted", "str", "sum", "tuple", "zip",
    "isinstance", "issubclass", "getattr", "hasattr", "setattr",
    "Exception", "ValueError", "TypeError", "IndexError", "KeyError",
    "RuntimeError", "ZeroDivisionError", "ArithmeticError",
    "StopIteration", "NotImplementedError", "object", "super", "type",
    "staticmethod", "classmethod", "property", "slice", "divmod", "pow",
    "repr", "format", "iter", "next", "frozenset", "complex", "bytes",
    "True", "False", "None",
)

#: Names injected into every sandbox namespace (state and network code).
SANDBOX_GLOBAL_NAMES = ("np", "numpy", "math", "statistics",
                        "__name__", "__builtins__")

#: Additional names injected for network-builder code blocks.
NETWORK_GLOBAL_NAMES = ("nn_library", "nn")

#: Attributes the ``nn_library`` facade exposes to generated network code.
NN_LIBRARY_ATTRIBUTES = ("PensieveNetwork", "GenericActorCritic",
                         "ActorCriticNetwork", "nn")

#: Seed of the ``random`` stand-in handed to generated code on import.
GENERATED_RANDOM_SEED = 20240527


class _SeededRandom(types.SimpleNamespace):
    """Deterministic stand-in bound by ``import random`` in the sandbox.

    Exposes the public API of a seeded :class:`random.Random` instance as
    bound methods (``random``/``randint``/``choice``/...), so module-level
    draws in generated code are reproducible.  ``Random`` is re-exported so
    ``random.Random(seed)`` still constructs explicitly seeded generators.
    The backing instance itself is never reachable: only its public bound
    methods are copied onto the namespace, and any other attribute lookup
    raises :class:`CodeBlockError`.
    """

    def __init__(self, seed: int = GENERATED_RANDOM_SEED) -> None:
        instance = _random_module.Random(seed)
        public = {name: getattr(instance, name)
                  for name in dir(instance) if not name.startswith("_")}
        super().__init__(Random=_random_module.Random, **public)

    def __getattr__(self, name: str):
        raise CodeBlockError(
            f"access to random.{name} is not allowed in generated code")


def _restricted_import(name: str, globals=None, locals=None, fromlist=(), level=0):
    root = name.split(".")[0]
    if root not in ALLOWED_IMPORT_ROOTS:
        raise CodeBlockError(
            f"import of {name!r} is not allowed in generated code "
            f"(allowed roots: {sorted(ALLOWED_IMPORT_ROOTS)})")
    if root == "random":
        # Reproducibility: module-level draws come from a seeded instance.
        return _SeededRandom()
    return __import__(name, globals, locals, fromlist, level)


def _guard_attribute_name(function: str, name: object) -> str:
    """Validate the attribute-name argument of getattr/setattr/hasattr."""
    if not isinstance(name, str):
        raise CodeBlockError(
            f"{function} with a non-string attribute name is not allowed "
            "in generated code")
    if name.startswith("_"):
        raise CodeBlockError(
            f"{function}({name!r}) is not allowed in generated code: "
            "underscore-prefixed attributes are off limits")
    return name


def _safe_getattr(obj, name, *default):
    return getattr(obj, _guard_attribute_name("getattr", name), *default)


def _safe_setattr(obj, name, value):
    setattr(obj, _guard_attribute_name("setattr", name), value)


def _safe_hasattr(obj, name):
    return hasattr(obj, _guard_attribute_name("hasattr", name))


class _NNLibraryFacade(types.SimpleNamespace):
    """The ``nn_library`` module exposed to generated network code."""


def _make_nn_library() -> _NNLibraryFacade:
    return _NNLibraryFacade(
        PensieveNetwork=abr_networks.PensieveNetwork,
        GenericActorCritic=abr_networks.GenericActorCritic,
        ActorCriticNetwork=abr_networks.ActorCriticNetwork,
        nn=nn_package,
    )


def _sandbox_globals(extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    safe_builtins = {
        name: getattr(builtins, name)
        for name in SAFE_BUILTIN_NAMES
        if hasattr(builtins, name)
    }
    # Attribute-access builtins are wrapped: underscore-prefixed and
    # non-literal names raise CodeBlockError instead of escaping the sandbox.
    safe_builtins["getattr"] = _safe_getattr
    safe_builtins["setattr"] = _safe_setattr
    safe_builtins["hasattr"] = _safe_hasattr
    safe_builtins["__import__"] = _restricted_import
    sandbox: Dict[str, object] = {
        "__builtins__": safe_builtins,
        "__name__": "generated_design",
        "np": np,
        "numpy": np,
        "math": math,
        "statistics": statistics,
    }
    if extra:
        sandbox.update(extra)
    return sandbox


def compile_code_block(code: str, expected_name: str,
                       extra_globals: Optional[Dict[str, object]] = None,
                       ) -> Callable:
    """Compile ``code`` and return the callable named ``expected_name``.

    Raises:
        CodeBlockError: on syntax errors, execution errors, a missing
            definition, or a definition that is not callable.
    """
    if not code or not code.strip():
        raise CodeBlockError("empty code block")
    try:
        compiled = compile(code, filename="<generated-design>", mode="exec")
    except SyntaxError as exc:
        raise CodeBlockError(f"syntax error: {exc}") from exc

    namespace = _sandbox_globals(extra_globals)
    try:
        exec(compiled, namespace)  # noqa: S102 - sandboxed by design
    except CodeBlockError:
        raise
    except Exception as exc:
        raise CodeBlockError(f"execution of code block failed: {exc!r}") from exc

    if expected_name not in namespace:
        raise CodeBlockError(f"code block does not define {expected_name!r}")
    candidate = namespace[expected_name]
    if not callable(candidate):
        raise CodeBlockError(f"{expected_name!r} is defined but not callable")
    return candidate


def load_state_function(code: str, name: str = "generated-state") -> StateFunction:
    """Compile a state-function code block into a :class:`StateFunction`."""
    func = compile_code_block(code, STATE_FUNCTION_NAME)
    return StateFunction(func, name=name)


def load_network_builder(code: str) -> Callable:
    """Compile a network-builder code block into a builder callable.

    The returned callable has the signature
    ``build_network(state_shape, num_actions, rng=None)``.
    """
    return compile_code_block(code, NETWORK_BUILDER_NAME,
                              extra_globals={"nn_library": _make_nn_library(),
                                             "nn": nn_package})
