"""The end-to-end Nada pipeline (Figure 1 of the paper).

Stages:

1. **Autonomous coding** — prompt an LLM for a pool of candidate designs
   (state representations and/or network architectures).
2. **Pre-checks** — compilation check and normalization check.
3. **Bootstrap training** — a small subset of surviving designs is trained
   without early stopping to build the labelled corpus for the early-stopping
   classifier.
4. **Filtered evaluation** — the remaining designs are trained with the
   early-stopping classifier consulted after the first K episodes.
5. **Selection** — the best design (per the §3.1 test-score protocol) is
   reported alongside the original design's score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..abr.qoe import LinearQoE, QoEMetric
from ..abr.video import Video, synthetic_video
from ..llm.base import LLMClient
from ..llm.synthetic import SyntheticLLM
from ..traces.base import TraceSet
from ..traces.registry import ENVIRONMENTS, build_dataset
from .design import CandidatePool, Design, DesignKind, DesignStatus
from .early_stopping import EarlyStoppingConfig, RewardTrajectoryClassifier
from .evaluation import DesignTrainer, EvaluationConfig, TestScoreProtocol
from .filters import FilterPipeline, FilterReport
from .generation import DesignGenerator, GenerationConfig
from .parallel import ParallelConfig
from .prompts import PromptConfig

__all__ = ["NadaConfig", "NadaResult", "NadaPipeline"]


@dataclass
class NadaConfig:
    """Configuration of one Nada campaign."""

    #: Which component to redesign: "state", "network", or "both".
    target: str = "state"
    #: Number of candidate designs to generate per component.
    num_designs: int = 20
    #: LLM backend; a profile name ("gpt-3.5"/"gpt-4") builds a SyntheticLLM.
    llm: str = "gpt-4"
    #: Prompting strategy switches.
    prompt: PromptConfig = field(default_factory=PromptConfig)
    #: Training/evaluation schedule.
    evaluation: EvaluationConfig = field(default_factory=EvaluationConfig)
    #: Early stopping: disabled entirely when False.
    use_early_stopping: bool = True
    early_stopping: EarlyStoppingConfig = field(default_factory=EarlyStoppingConfig)
    #: Fraction of surviving designs trained fully to bootstrap the classifier.
    bootstrap_fraction: float = 0.3
    #: Minimum number of bootstrap designs regardless of the fraction.
    min_bootstrap_designs: int = 5
    #: Base random seed for generation and training.
    seed: int = 0
    #: Worker processes for the (design, seed) evaluation fan-out; None reads
    #: the REPRO_WORKERS environment variable, <= 1 runs serially.
    workers: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.target not in ("state", "network", "both"):
            raise ValueError("target must be 'state', 'network' or 'both'")
        if self.num_designs < 1:
            raise ValueError("num_designs must be positive")
        if not 0.0 < self.bootstrap_fraction <= 1.0:
            raise ValueError("bootstrap_fraction must be in (0, 1]")


@dataclass
class NadaResult:
    """Everything a Nada campaign produces."""

    pool: CandidatePool
    filter_report: FilterReport
    original_score: float
    best_design: Optional[Design]
    best_score: Optional[float]
    #: Designs whose training was cut short by the early-stopping model.
    early_stopped_designs: List[Design] = field(default_factory=list)
    #: Number of designs trained fully (bootstrap + survivors).
    fully_trained: int = 0

    @property
    def improvement(self) -> Optional[float]:
        """Relative improvement of the best design over the original (e.g. 0.13 = 13%)."""
        if self.best_score is None or not np.isfinite(self.original_score):
            return None
        baseline = abs(self.original_score)
        if baseline < 1e-12:
            return None
        return (self.best_score - self.original_score) / baseline

    def summary(self) -> str:
        lines = [
            f"designs generated : {self.filter_report.total}",
            f"compilable        : {self.filter_report.compilable} "
            f"({self.filter_report.compilable_fraction:.1%})",
            f"well normalized   : {self.filter_report.well_normalized} "
            f"({self.filter_report.well_normalized_fraction:.1%})",
            f"fully trained     : {self.fully_trained}",
            f"early stopped     : {len(self.early_stopped_designs)}",
            f"original score    : {self.original_score:.3f}",
        ]
        if self.best_design is not None and self.best_score is not None:
            improvement = self.improvement
            impr_text = f" ({improvement:+.1%})" if improvement is not None else ""
            lines.append(f"best design       : {self.best_design.design_id}")
            lines.append(f"best score        : {self.best_score:.3f}{impr_text}")
        else:
            lines.append("best design       : none survived evaluation")
        return "\n".join(lines)


class NadaPipeline:
    """Orchestrates generation, filtering and evaluation for one environment."""

    def __init__(self, video: Video, train_traces: TraceSet, test_traces: TraceSet,
                 config: Optional[NadaConfig] = None,
                 qoe: Optional[QoEMetric] = None,
                 llm_client: Optional[LLMClient] = None) -> None:
        self.video = video
        self.train_traces = train_traces
        self.test_traces = test_traces
        self.config = config or NadaConfig()
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.llm_client = llm_client or SyntheticLLM(self.config.llm,
                                                     seed=self.config.seed)
        self._trainer = DesignTrainer(video, train_traces, test_traces,
                                      config=self.config.evaluation, qoe=self.qoe)
        self._protocol = TestScoreProtocol(
            self._trainer,
            parallel=ParallelConfig(max_workers=self.config.workers))

    # ------------------------------------------------------------------ #
    @classmethod
    def for_environment(cls, environment: str, config: Optional[NadaConfig] = None,
                        dataset_scale: float = 0.05, num_chunks: int = 24,
                        seed: int = 0,
                        llm_client: Optional[LLMClient] = None) -> "NadaPipeline":
        """Convenience constructor: build traces and video for a named environment."""
        spec = ENVIRONMENTS[environment.lower()]
        train, test = build_dataset(environment, seed=seed, scale=dataset_scale)
        video = synthetic_video(spec.bitrate_ladder, num_chunks=num_chunks, seed=seed)
        return cls(video, train, test, config=config, llm_client=llm_client)

    # ------------------------------------------------------------------ #
    def run(self) -> NadaResult:
        """Execute the full pipeline and return its result."""
        cfg = self.config
        pool = CandidatePool()
        generator = DesignGenerator(
            self.llm_client,
            GenerationConfig(prompt=cfg.prompt, base_seed=cfg.seed))

        kinds: List[DesignKind] = []
        if cfg.target in ("state", "both"):
            kinds.append(DesignKind.STATE)
        if cfg.target in ("network", "both"):
            kinds.append(DesignKind.NETWORK)
        for kind in kinds:
            generator.populate_pool(pool, kind, cfg.num_designs)

        # Stage 2: pre-checks.
        filter_report = FilterPipeline().apply(pool)
        survivors = pool.surviving_prechecks()

        # Stage 0 (reference): the original design's score.
        original_score = self._protocol.score_original()

        early_stopper: Optional[RewardTrajectoryClassifier] = None
        fully_trained = 0
        rng = np.random.default_rng(cfg.seed)

        if survivors:
            order = rng.permutation(len(survivors))
            survivors = [survivors[i] for i in order]

        if cfg.use_early_stopping and survivors:
            bootstrap_count = max(cfg.min_bootstrap_designs,
                                  int(round(cfg.bootstrap_fraction * len(survivors))))
            bootstrap_count = min(bootstrap_count, len(survivors))
            bootstrap, remainder = (survivors[:bootstrap_count],
                                    survivors[bootstrap_count:])
            # Stage 3: bootstrap full training to build the labelled corpus.
            # One flat (design, seed) fan-out keeps all workers busy.
            self._protocol.score_designs(bootstrap)
            fully_trained += len(bootstrap)
            corpus = [d for d in bootstrap if d.reward_history and d.test_score is not None]
            if len(corpus) >= 4:
                early_stopper = RewardTrajectoryClassifier(cfg.early_stopping)
                early_stopper.fit([d.reward_history for d in corpus],
                                  [d.test_score for d in corpus])
            # Stage 4: evaluate the rest with early stopping.
            self._protocol.score_designs(remainder, early_stopping=early_stopper)
            fully_trained += sum(design.status != DesignStatus.EARLY_STOPPED
                                 for design in remainder)
        else:
            self._protocol.score_designs(survivors)
            fully_trained += len(survivors)

        early_stopped = pool.with_status(DesignStatus.EARLY_STOPPED)
        best = pool.best()
        return NadaResult(
            pool=pool,
            filter_report=filter_report,
            original_score=original_score,
            best_design=best,
            best_score=best.test_score if best is not None else None,
            early_stopped_designs=early_stopped,
            fully_trained=fully_trained,
        )

    # ------------------------------------------------------------------ #
    def evaluate_combination(self, state_design: Optional[Design],
                             network_design: Optional[Design]) -> float:
        """Score a specific (state, network) combination (Table 5 grid)."""
        score, _ = self._protocol.run(state_design, network_design)
        return score
