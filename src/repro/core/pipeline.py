"""The end-to-end Nada pipeline (Figure 1 of the paper) and campaign driver.

Stages:

1. **Autonomous coding** — prompt an LLM for a pool of candidate designs
   (state representations and/or network architectures).
2. **Pre-checks** — compilation check and normalization check.
3. **Bootstrap training** — a small subset of surviving designs is trained
   without early stopping to build the labelled corpus for the early-stopping
   classifier.
4. **Filtered evaluation** — the remaining designs are trained with the
   early-stopping classifier consulted after the first K episodes.
5. **Selection** — the best design (per the §3.1 test-score protocol) is
   reported alongside the original design's score.

All training executes through the
:class:`~repro.core.scheduler.CampaignScheduler`: each stage is expressed as
a batch of (design, environment, seed-batch) jobs, so one pipeline and a
multi-environment campaign (:class:`NadaCampaign`) run on the same
substrate.  A campaign interleaves every environment's stage-1 jobs into a
single scheduler pass (and likewise for stage 2), which keeps all workers
busy across environments, shares one result store, and keeps scores
bit-identical to running each environment serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..abr.qoe import LinearQoE, QoEMetric
from ..abr.video import Video, synthetic_video
from ..llm.base import LLMClient
from ..llm.synthetic import SyntheticLLM
from ..traces.base import TraceSet
from ..traces.registry import ENVIRONMENTS, build_dataset, list_environments
from . import telemetry
from .design import CandidatePool, Design, DesignKind, DesignStatus
from .early_stopping import EarlyStoppingConfig, RewardTrajectoryClassifier
from .evaluation import DesignTrainer, EvaluationConfig, TestScoreProtocol
from .filters import FilterPipeline, FilterReport
from .generation import DesignGenerator, GenerationConfig
from .parallel import ParallelConfig
from .prompts import PromptConfig
from .results import ResultStore
from .scheduler import CampaignScheduler, EvaluationJob, JobResult

__all__ = ["NadaConfig", "NadaResult", "NadaPipeline",
           "CampaignResult", "NadaCampaign"]


@dataclass
class NadaConfig:
    """Configuration of one Nada campaign."""

    #: Which component to redesign: "state", "network", or "both".
    target: str = "state"
    #: Number of candidate designs to generate per component.
    num_designs: int = 20
    #: LLM backend; a profile name ("gpt-3.5"/"gpt-4") builds a SyntheticLLM.
    llm: str = "gpt-4"
    #: Prompting strategy switches.
    prompt: PromptConfig = field(default_factory=PromptConfig)
    #: Training/evaluation schedule.
    evaluation: EvaluationConfig = field(default_factory=EvaluationConfig)
    #: Early stopping: disabled entirely when False.
    use_early_stopping: bool = True
    early_stopping: EarlyStoppingConfig = field(default_factory=EarlyStoppingConfig)
    #: Fraction of surviving designs trained fully to bootstrap the classifier.
    bootstrap_fraction: float = 0.3
    #: Minimum number of bootstrap designs regardless of the fraction.
    min_bootstrap_designs: int = 5
    #: Base random seed for generation and training.
    seed: int = 0
    #: Worker processes for the scheduler's across-design job fan-out; None
    #: reads the REPRO_WORKERS environment variable, <= 1 runs serially.
    #: Each job still trains its seed batch in lockstep inside its worker.
    workers: Optional[int] = 1
    #: Retries for a job that raises, times out or loses its worker before
    #: it is quarantined (the campaign then completes without it).
    max_retries: int = 2
    #: Seconds one job may run inside a pool worker before being failed and
    #: retried; None disables the limit (only enforced under fan-out).
    job_timeout: Optional[float] = None
    #: Directory of the persistent result store; None disables persistence.
    #: With a store, repeated campaigns skip already-scored (design,
    #: environment, seed) work and interrupted campaigns resume.
    store_dir: Optional[str] = None
    #: Directory for structured telemetry (spans, counters, training-metric
    #: series); None leaves telemetry in whatever state the process has.
    #: Events are flushed as JSON lines and summarized by ``repro report``.
    telemetry_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.target not in ("state", "network", "both"):
            raise ValueError("target must be 'state', 'network' or 'both'")
        if self.num_designs < 1:
            raise ValueError("num_designs must be positive")
        if not 0.0 < self.bootstrap_fraction <= 1.0:
            raise ValueError("bootstrap_fraction must be in (0, 1]")


@dataclass
class NadaResult:
    """Everything a Nada campaign produces."""

    pool: CandidatePool
    filter_report: FilterReport
    original_score: float
    best_design: Optional[Design]
    best_score: Optional[float]
    #: Designs whose training was cut short by the early-stopping model.
    early_stopped_designs: List[Design] = field(default_factory=list)
    #: Number of designs trained fully (bootstrap + survivors).
    fully_trained: int = 0
    #: Designs whose evaluation was quarantined after exhausting retries.
    failed_designs: int = 0

    @property
    def improvement(self) -> Optional[float]:
        """Relative improvement of the best design over the original (e.g. 0.13 = 13%)."""
        if self.best_score is None or not np.isfinite(self.original_score):
            return None
        baseline = abs(self.original_score)
        if baseline < 1e-12:
            return None
        return (self.best_score - self.original_score) / baseline

    def summary(self) -> str:
        lines = [
            f"designs generated : {self.filter_report.total}",
            f"compilable        : {self.filter_report.compilable} "
            f"({self.filter_report.compilable_fraction:.1%})",
            f"well normalized   : {self.filter_report.well_normalized} "
            f"({self.filter_report.well_normalized_fraction:.1%})",
            f"fully trained     : {self.fully_trained}",
            f"early stopped     : {len(self.early_stopped_designs)}",
            f"original score    : {self.original_score:.3f}",
        ]
        if self.failed_designs:
            # Only surfaced when something actually failed, keeping the
            # fault-free summary byte-identical to earlier releases.
            lines.insert(5, f"failed (quarantined): {self.failed_designs}")
        if self.filter_report.rejected_by_audit:
            # Likewise only surfaced when the static audit rejected something.
            lines.insert(1, f"rejected by audit : "
                            f"{self.filter_report.rejected_by_audit}")
        if self.best_design is not None and self.best_score is not None:
            improvement = self.improvement
            impr_text = f" ({improvement:+.1%})" if improvement is not None else ""
            lines.append(f"best design       : {self.best_design.design_id}")
            lines.append(f"best score        : {self.best_score:.3f}{impr_text}")
        else:
            lines.append("best design       : none survived evaluation")
        return "\n".join(lines)


@dataclass
class _PipelineStages:
    """Mutable campaign state threaded through one pipeline's stages."""

    pool: CandidatePool
    filter_report: FilterReport
    #: Designs trained fully up front (everything, when early stopping is off).
    bootstrap: List[Design]
    #: Designs evaluated afterwards under the fitted classifier.
    remainder: List[Design]
    original_score: float = float("nan")
    early_stopper: Optional[RewardTrajectoryClassifier] = None
    fully_trained: int = 0


class NadaPipeline:
    """Orchestrates generation, filtering and evaluation for one environment."""

    def __init__(self, video: Video, train_traces: TraceSet, test_traces: TraceSet,
                 config: Optional[NadaConfig] = None,
                 qoe: Optional[QoEMetric] = None,
                 llm_client: Optional[LLMClient] = None,
                 scheduler: Optional[CampaignScheduler] = None,
                 store: Optional[ResultStore] = None,
                 environment: str = "") -> None:
        self.video = video
        self.train_traces = train_traces
        self.test_traces = test_traces
        self.config = config or NadaConfig()
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.llm_client = llm_client or SyntheticLLM(self.config.llm,
                                                     seed=self.config.seed)
        self.environment = environment
        if self.config.telemetry_dir:
            telemetry.enable(self.config.telemetry_dir)
        if scheduler is None:
            if store is None and self.config.store_dir:
                store = ResultStore(self.config.store_dir)
            scheduler = CampaignScheduler(
                parallel=ParallelConfig(max_workers=self.config.workers,
                                        max_retries=self.config.max_retries,
                                        job_timeout=self.config.job_timeout),
                store=store)
        self._scheduler = scheduler
        self._trainer = DesignTrainer(video, train_traces, test_traces,
                                      config=self.config.evaluation, qoe=self.qoe)
        self._protocol = TestScoreProtocol(self._trainer,
                                           scheduler=self._scheduler,
                                           environment=environment)

    @property
    def scheduler(self) -> CampaignScheduler:
        """The work-graph layer this pipeline's training executes on."""
        return self._scheduler

    # ------------------------------------------------------------------ #
    @classmethod
    def for_environment(cls, environment: str, config: Optional[NadaConfig] = None,
                        dataset_scale: float = 0.05, num_chunks: int = 24,
                        seed: int = 0,
                        llm_client: Optional[LLMClient] = None,
                        schedule_scale: Optional[float] = None,
                        scheduler: Optional[CampaignScheduler] = None,
                        store: Optional[ResultStore] = None) -> "NadaPipeline":
        """Convenience constructor: build traces and video for a named environment.

        With ``schedule_scale`` set, the environment's published Table 1
        training schedule (``EnvironmentSpec.train_epochs`` /
        ``test_interval``) is applied — scaled by the factor — as the
        evaluation schedule, overriding whatever the config carried; the
        entropy-anneal horizon is re-derived from the scaled epoch budget as
        the CLI does.  Leave it ``None`` to keep the config's explicit
        schedule.
        """
        key = environment.lower()
        spec = ENVIRONMENTS[key]
        config = config if config is not None else NadaConfig()
        if schedule_scale is not None:
            epochs, interval = spec.evaluation_schedule(schedule_scale)
            config = replace(config, evaluation=replace(
                config.evaluation, train_epochs=epochs,
                checkpoint_interval=interval,
                a2c=replace(config.evaluation.a2c,
                            entropy_anneal_epochs=max(epochs // 2, 1))))
        train, test = build_dataset(environment, seed=seed, scale=dataset_scale)
        video = synthetic_video(spec.bitrate_ladder, num_chunks=num_chunks, seed=seed)
        return cls(video, train, test, config=config, llm_client=llm_client,
                   scheduler=scheduler, store=store, environment=key)

    # ------------------------------------------------------------------ #
    # The pipeline as a staged work graph.  ``run`` executes the stages
    # back-to-back; ``NadaCampaign`` interleaves the same stages across
    # several environments so each scheduler pass sees every ready job.
    # ------------------------------------------------------------------ #
    def _prepare(self) -> _PipelineStages:
        """Stages 1-2 (generation + pre-checks) and the bootstrap split."""
        cfg = self.config
        pool = CandidatePool()
        generator = DesignGenerator(
            self.llm_client,
            GenerationConfig(prompt=cfg.prompt, base_seed=cfg.seed))

        kinds: List[DesignKind] = []
        if cfg.target in ("state", "both"):
            kinds.append(DesignKind.STATE)
        if cfg.target in ("network", "both"):
            kinds.append(DesignKind.NETWORK)
        for kind in kinds:
            generator.populate_pool(pool, kind, cfg.num_designs)

        filter_report = FilterPipeline().apply(pool)
        survivors = pool.surviving_prechecks()
        rng = np.random.default_rng(cfg.seed)
        if survivors:
            order = rng.permutation(len(survivors))
            survivors = [survivors[i] for i in order]

        if cfg.use_early_stopping and survivors:
            bootstrap_count = max(cfg.min_bootstrap_designs,
                                  int(round(cfg.bootstrap_fraction * len(survivors))))
            bootstrap_count = min(bootstrap_count, len(survivors))
            bootstrap, remainder = (survivors[:bootstrap_count],
                                    survivors[bootstrap_count:])
        else:
            bootstrap, remainder = survivors, []
        return _PipelineStages(pool=pool, filter_report=filter_report,
                               bootstrap=bootstrap, remainder=remainder)

    def _stage_one_jobs(self, stages: _PipelineStages) -> List[EvaluationJob]:
        """Reference score + full bootstrap training, as one job batch."""
        return ([self._protocol.job(None, None)]
                + self._protocol.design_jobs(stages.bootstrap))

    def _apply_stage_one(self, stages: _PipelineStages,
                         results: Sequence[JobResult]) -> None:
        cfg = self.config
        stages.original_score = results[0].score
        self._protocol.record_results(stages.bootstrap, results[1:])
        stages.fully_trained += sum(1 for result in results[1:] if result.ok)
        if cfg.use_early_stopping:
            corpus = [d for d in stages.bootstrap
                      if d.reward_history and d.test_score is not None]
            if len(corpus) >= 4:
                stages.early_stopper = RewardTrajectoryClassifier(cfg.early_stopping)
                stages.early_stopper.fit([d.reward_history for d in corpus],
                                         [d.test_score for d in corpus])

    def _stage_two_jobs(self, stages: _PipelineStages) -> List[EvaluationJob]:
        """Filtered evaluation of the remaining designs (may be empty)."""
        return self._protocol.design_jobs(stages.remainder,
                                          early_stopping=stages.early_stopper)

    def _apply_stage_two(self, stages: _PipelineStages,
                         results: Sequence[JobResult]) -> None:
        self._protocol.record_results(stages.remainder, results)
        stages.fully_trained += sum(design.status == DesignStatus.EVALUATED
                                    for design in stages.remainder)

    def _result(self, stages: _PipelineStages) -> NadaResult:
        early_stopped = stages.pool.with_status(DesignStatus.EARLY_STOPPED)
        failed = stages.pool.with_status(DesignStatus.FAILED)
        best = stages.pool.best()
        return NadaResult(
            pool=stages.pool,
            filter_report=stages.filter_report,
            original_score=stages.original_score,
            best_design=best,
            best_score=best.test_score if best is not None else None,
            early_stopped_designs=early_stopped,
            fully_trained=stages.fully_trained,
            failed_designs=len(failed),
        )

    def run(self) -> NadaResult:
        """Execute the full pipeline and return its result."""
        attrs = {"environment": self.environment}
        with telemetry.span("pipeline.run", attrs):
            with telemetry.span("pipeline.prepare", attrs):
                stages = self._prepare()
            with telemetry.span("pipeline.stage1", attrs):
                self._apply_stage_one(
                    stages, self._scheduler.run(self._stage_one_jobs(stages)))
            stage_two = self._stage_two_jobs(stages)
            if stage_two:
                with telemetry.span("pipeline.stage2", attrs):
                    self._apply_stage_two(stages,
                                          self._scheduler.run(stage_two))
            result = self._result(stages)
        sink = telemetry.get_telemetry()
        if sink is not None and sink.directory:
            sink.flush()
        return result

    # ------------------------------------------------------------------ #
    def evaluate_combination(self, state_design: Optional[Design],
                             network_design: Optional[Design]) -> float:
        """Score a specific (state, network) combination (Table 5 grid)."""
        score, _ = self._protocol.run(state_design, network_design)
        return score


# --------------------------------------------------------------------------- #
# Multi-environment campaigns
# --------------------------------------------------------------------------- #
@dataclass
class CampaignResult:
    """Per-environment results of one multi-environment campaign."""

    results: Dict[str, NadaResult]

    def __getitem__(self, environment: str) -> NadaResult:
        return self.results[environment]

    @property
    def environments(self) -> List[str]:
        return list(self.results)

    def summary(self) -> str:
        blocks = []
        for name, result in self.results.items():
            spec = ENVIRONMENTS.get(name)
            title = spec.display_name if spec is not None else name
            blocks.append(f"=== {title} ===\n{result.summary()}")
        return "\n\n".join(blocks)


class NadaCampaign:
    """Runs the Nada pipeline across several environments on one scheduler.

    This is the paper's headline experiment as a first-class scenario: the
    full trace registry (fcc / starlink / 4g / 5g, or any subset) swept
    through a single scheduled work-graph.  Every environment's stage-1 jobs
    (reference score + bootstrap training) are submitted in one scheduler
    pass, then each environment fits its early-stopping classifier, then all
    stage-2 jobs (filtered evaluation) go out as a second pass — so workers
    stay saturated across environments and the shared result store
    deduplicates repeated work.  Scores are bit-identical to running each
    environment's pipeline on its own (tested).
    """

    def __init__(self, pipelines: Mapping[str, NadaPipeline],
                 scheduler: Optional[CampaignScheduler] = None) -> None:
        if not pipelines:
            raise ValueError("a campaign needs at least one environment")
        self.pipelines = dict(pipelines)
        first = next(iter(self.pipelines.values()))
        self.scheduler = scheduler or first.scheduler

    # ------------------------------------------------------------------ #
    @classmethod
    def for_environments(cls, environments: Optional[Sequence[str]] = None,
                         config: Optional[NadaConfig] = None,
                         dataset_scale: float = 0.05, num_chunks: int = 24,
                         seed: int = 0,
                         schedule_scale: Optional[float] = None,
                         store: Optional[ResultStore] = None) -> "NadaCampaign":
        """Build one pipeline per named environment, all on one scheduler.

        ``environments`` defaults to the full trace registry in Table 1
        order.  With ``schedule_scale`` set, each environment trains under
        its own published schedule scaled by that factor (satisfying the
        registry's per-environment Table 1 settings); otherwise every
        environment uses the config's schedule.
        """
        names = [name.lower() for name in (environments or list_environments())]
        config = config if config is not None else NadaConfig()
        if store is None and config.store_dir:
            store = ResultStore(config.store_dir)
        scheduler = CampaignScheduler(
            parallel=ParallelConfig(max_workers=config.workers,
                                    max_retries=config.max_retries,
                                    job_timeout=config.job_timeout),
            store=store)
        pipelines = {
            name: NadaPipeline.for_environment(
                name, config=config, dataset_scale=dataset_scale,
                num_chunks=num_chunks, seed=seed,
                schedule_scale=schedule_scale, scheduler=scheduler)
            for name in names
        }
        return cls(pipelines, scheduler=scheduler)

    # ------------------------------------------------------------------ #
    def run(self) -> CampaignResult:
        """Execute the campaign work-graph and return per-environment results."""
        attrs = {"environments": ",".join(self.pipelines)}
        with telemetry.span("campaign.run", attrs):
            with telemetry.span("campaign.prepare", attrs):
                stages = {name: pipeline._prepare()
                          for name, pipeline in self.pipelines.items()}

            # Stage 1 across every environment, one scheduler pass.
            with telemetry.span("campaign.stage1", attrs):
                batches = {name: self.pipelines[name]
                           ._stage_one_jobs(stages[name])
                           for name in self.pipelines}
                self._run_batches(batches,
                                  lambda name, results: self.pipelines[name]
                                  ._apply_stage_one(stages[name], results))

            # Stage 2 (filtered evaluation) across every environment.
            with telemetry.span("campaign.stage2", attrs):
                batches = {name: self.pipelines[name]
                           ._stage_two_jobs(stages[name])
                           for name in self.pipelines}
                self._run_batches(batches,
                                  lambda name, results: self.pipelines[name]
                                  ._apply_stage_two(stages[name], results))

            result = CampaignResult(
                {name: self.pipelines[name]._result(stages[name])
                 for name in self.pipelines})
        sink = telemetry.get_telemetry()
        if sink is not None and sink.directory:
            sink.flush()
        return result

    def _run_batches(self, batches: Dict[str, List[EvaluationJob]],
                     apply) -> None:
        """Submit every environment's batch as one pass, then slice back."""
        flat = [job for jobs in batches.values() for job in jobs]
        if not flat:
            return
        results = self.scheduler.run(flat)
        offset = 0
        for name, jobs in batches.items():
            apply(name, results[offset:offset + len(jobs)])
            offset += len(jobs)
