"""The Nada framework core: design generation, filtering, early stopping,
evaluation and the end-to-end pipeline."""

from .codegen import (
    ALLOWED_IMPORT_ROOTS,
    CodeBlockError,
    compile_code_block,
    load_network_builder,
    load_state_function,
)
from .design import CandidatePool, Design, DesignKind, DesignStatus
from .early_stopping import (
    EarlyStoppingConfig,
    EarlyStoppingDecision,
    RewardTrajectoryClassifier,
    classification_rates,
    prepare_reward_prefix,
    top_fraction_labels,
    tune_threshold_zero_fnr,
)
from .evaluation import (
    DesignTrainer,
    EvaluationConfig,
    TestScoreProtocol,
    TrainingRun,
    instantiate_agent,
)
from .filters import (
    CheckResult,
    CompilationCheck,
    FilterPipeline,
    FilterReport,
    NormalizationCheck,
    random_observation,
)
from .distributed import (NoWorkersError, RemoteConfig, RemoteExecutor,
                          run_worker)
from .faults import (FaultPlan, FaultRule, InjectedFault, clear_plan,
                     inject, install_plan)
from .generation import DesignGenerator, GenerationConfig
from .parallel import (ParallelConfig, TaskOutcome, effective_workers,
                       parallel_map, run_resilient)
from .pipeline import (CampaignResult, NadaCampaign, NadaConfig, NadaPipeline,
                       NadaResult)
from .results import (Lease, ResultStore, context_fingerprint,
                      design_fingerprint, result_key)
from .scheduler import (CampaignScheduler, EvaluationJob, JobResult,
                        protocol_score)
from . import telemetry
from .telemetry import Telemetry, TelemetryEvent
from .predictors import (
    DesignSampleFeatures,
    EarlyStopPredictor,
    HeuristicLastPredictor,
    HeuristicMaxPredictor,
    PREDICTOR_REGISTRY,
    PredictorEvaluation,
    RewardOnlyPredictor,
    TextOnlyPredictor,
    TextRewardPredictor,
    cross_validate_predictors,
    evaluate_predictor,
    make_predictor,
)
from .prompts import (
    PARAMETER_DESCRIPTIONS,
    PromptConfig,
    build_network_prompt,
    build_state_prompt,
    system_message,
)

__all__ = [
    # design
    "Design", "DesignKind", "DesignStatus", "CandidatePool",
    # codegen
    "CodeBlockError", "compile_code_block", "load_state_function",
    "load_network_builder", "ALLOWED_IMPORT_ROOTS",
    # prompts
    "PromptConfig", "build_state_prompt", "build_network_prompt",
    "system_message", "PARAMETER_DESCRIPTIONS",
    # generation
    "DesignGenerator", "GenerationConfig",
    # filters
    "CompilationCheck", "NormalizationCheck", "FilterPipeline", "FilterReport",
    "CheckResult", "random_observation",
    # early stopping
    "EarlyStoppingConfig", "RewardTrajectoryClassifier", "EarlyStoppingDecision",
    "prepare_reward_prefix", "top_fraction_labels", "tune_threshold_zero_fnr",
    "classification_rates",
    # predictors
    "DesignSampleFeatures", "EarlyStopPredictor", "RewardOnlyPredictor",
    "TextOnlyPredictor", "TextRewardPredictor", "HeuristicMaxPredictor",
    "HeuristicLastPredictor", "PREDICTOR_REGISTRY", "make_predictor",
    "PredictorEvaluation", "evaluate_predictor", "cross_validate_predictors",
    # evaluation
    "EvaluationConfig", "TrainingRun", "instantiate_agent", "DesignTrainer",
    "TestScoreProtocol",
    # parallel
    "ParallelConfig", "TaskOutcome", "parallel_map", "run_resilient",
    "effective_workers",
    # faults
    "FaultPlan", "FaultRule", "InjectedFault", "install_plan", "clear_plan",
    "inject",
    # scheduler + result store
    "CampaignScheduler", "EvaluationJob", "JobResult", "protocol_score",
    "ResultStore", "Lease", "design_fingerprint", "context_fingerprint",
    "result_key",
    # distributed transport
    "NoWorkersError", "RemoteConfig", "RemoteExecutor", "run_worker",
    # telemetry
    "telemetry", "Telemetry", "TelemetryEvent",
    # pipeline
    "NadaConfig", "NadaResult", "NadaPipeline",
    "NadaCampaign", "CampaignResult",
]
