"""Distributed campaign transport: pull-based remote workers over TCP.

PR 7 landed the *coordination* half of multi-host campaigns — verified-CAS
:class:`~repro.core.results.ResultStore` puts and ``pid@host`` leases make N
processes sharing one store execute each (context, design, seed) exactly
once.  This module is the *transport* half: a coordinator/worker executor
that plugs in behind :meth:`CampaignScheduler.run` (``--backend remote``)
so the processes doing the work no longer need to share a filesystem-level
scheduler at all — they pull jobs over a socket.

Protocol (JSON lines over TCP, one message per line)::

    worker → coordinator   HELLO     {protocol, worker}
    coordinator → worker   WELCOME   {protocol, heartbeat_s, idle_s}
                           REJECT    {reason}           (version mismatch)
    worker → coordinator   LEASE     {}                 (give me work)
    coordinator → worker   JOB       {job, epoch, attempt, key, payload}
                           IDLE      {retry_s}          (nothing ready)
                           BYE       {}                 (shutting down)
    worker → coordinator   HEARTBEAT {job, epoch}       (on an interval)
    worker → coordinator   RESULT    {job, epoch, ok, payload | error}
    worker → coordinator   BYE       {}

Payloads are pickled and base64-armoured — workers are subprocesses this
process launched (``repro worker --connect host:port``), not an untrusted
surface.  Jobs are *pulled*: a fast worker simply leases more often, which
is work-stealing with no extra machinery.  Results are slotted back into
submission order, so the scheduler's order-preserving telemetry merge (the
PR 6 contract: serial and N-worker event streams identical modulo
timestamps/pids) holds regardless of network arrival order.

Failure semantics — every path is injectable via :mod:`repro.core.faults`
(``rpc.conn_drop``, ``rpc.worker_crash``, ``rpc.heartbeat_loss``,
``rpc.result_delay``):

* A worker whose connection drops or whose process dies has its in-flight
  job requeued, charged one attempt under the usual retry/backoff budget.
* A worker that stops heartbeating past ``heartbeat_timeout_s`` is treated
  as dead: its assignment is revoked and requeued, but the socket is left
  open — if the worker was merely wedged, its eventual stale RESULT arrives
  carrying the *old* assignment epoch and is **fenced** (counted, dropped),
  never merged.  Exactly-once of the persisted record is enforced a second
  time at the store: :meth:`ResultStore.put_run` drops a put whose lease
  was stolen while the job was away (lease epochs, ``fenced_puts``).
* Worker subprocesses that exit are respawned (up to
  ``max_respawns``) while work remains.
* If the worker pool empties and nobody reconnects within
  ``worker_deadline_s``, the batch degrades per ``fallback``: ``"local"``
  executes the unfinished items in-process (carrying over their attempt
  counts), ``"fail"`` raises :class:`NoWorkersError` so the campaign exits
  with a resume-from-store message instead of hanging.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, IO, List, Optional, Sequence, Tuple

from ..log import get_logger
from . import faults, telemetry
from .parallel import ParallelConfig, TaskOutcome, run_resilient

__all__ = [
    "PROTOCOL_VERSION",
    "NoWorkersError",
    "RemoteConfig",
    "RemoteExecutor",
    "run_worker",
]

logger = get_logger("distributed")

#: Bumped whenever a message gains or loses a required field.  A worker
#: whose version differs is rejected at HELLO instead of failing mid-job.
PROTOCOL_VERSION = 1


class NoWorkersError(RuntimeError):
    """Every remote worker is gone and ``fallback="fail"`` forbids local
    execution; completed work was persisted, resume from the store."""


@dataclass(frozen=True)
class RemoteConfig:
    """Transport tuning for :class:`RemoteExecutor`.

    Attributes:
        host: Interface the coordinator binds (and workers dial).
        port: Coordinator port; 0 lets the OS pick (read it back from
            :attr:`RemoteExecutor.address`).
        heartbeat_interval_s: How often an executing worker heartbeats.
        heartbeat_timeout_s: Silence beyond this revokes the assignment —
            the job requeues and any late RESULT from the old epoch is
            fenced.
        worker_deadline_s: How long the coordinator tolerates an *empty*
            worker pool mid-batch before degrading per ``fallback``.
        poll_interval_s: Coordinator supervision-loop tick.
        idle_retry_s: How long an idle worker waits between LEASE polls.
        fallback: ``"local"`` finishes an abandoned batch in-process;
            ``"fail"`` raises :class:`NoWorkersError` instead.
        max_respawns: Worker subprocesses respawned after unexpected exits
            (crashed workers count) before the pool is allowed to shrink.
    """

    host: str = "127.0.0.1"
    port: int = 0
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 10.0
    worker_deadline_s: float = 30.0
    poll_interval_s: float = 0.05
    idle_retry_s: float = 0.1
    fallback: str = "local"
    max_respawns: int = 4

    def __post_init__(self) -> None:
        if self.fallback not in ("local", "fail"):
            raise ValueError("fallback must be 'local' or 'fail'")


# --------------------------------------------------------------------------- #
# Wire helpers.
# --------------------------------------------------------------------------- #
def _encode(obj: Any) -> str:
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _decode(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def _send(wfile: IO[str], message: Dict[str, Any],
          lock: Optional[threading.Lock] = None) -> None:
    line = json.dumps(message) + "\n"
    if lock is not None:
        with lock:
            wfile.write(line)
            wfile.flush()
    else:
        wfile.write(line)
        wfile.flush()


def _recv(rfile: IO[str]) -> Optional[Dict[str, Any]]:
    line = rfile.readline()
    if not line:
        return None
    return json.loads(line)


def _item_fault_key(item: Any, index: int) -> str:
    """The key rpc fault rules match against for one work item."""
    key_fn = getattr(item, "fault_key", None)
    if callable(key_fn):
        try:
            return str(key_fn())
        except Exception:  # noqa: BLE001 - fault keys must never break dispatch
            pass
    return f"item{index}"


# --------------------------------------------------------------------------- #
# Coordinator.
# --------------------------------------------------------------------------- #
class _WorkerConn:
    """Coordinator-side state for one connected worker."""

    __slots__ = ("name", "conn", "rfile", "wfile", "last_seen", "alive")

    def __init__(self, name: str, conn: socket.socket,
                 rfile: IO[str], wfile: IO[str]) -> None:
        self.name = name
        self.conn = conn
        self.rfile = rfile
        self.wfile = wfile
        self.last_seen = time.monotonic()
        self.alive = True


class _Batch:
    """One :meth:`RemoteExecutor.run` call's shared dispatch state."""

    def __init__(self, fn: Callable[..., Any], items: List[Any],
                 config: ParallelConfig) -> None:
        self.fn = fn
        self.items = items
        self.config = config
        self.outcomes: List[Optional[TaskOutcome]] = [None] * len(items)
        self.failures = [0] * len(items)
        self.ready_at = [0.0] * len(items)
        self.epochs = [0] * len(items)
        self.queue: List[int] = list(range(len(items)))
        #: index -> (worker name, assignment epoch) for in-flight jobs.
        self.running: Dict[int, Tuple[str, int]] = {}
        self.dispatched = 0
        self.fenced = 0
        self.requeued = 0
        self.heartbeat_timeouts = 0
        self.fallback_local = 0
        #: Indices in RESULT-acceptance order (tests assert arrival shuffles
        #: do not leak into the submission-order merge).
        self.result_order: List[int] = []

    def done(self) -> bool:
        return all(outcome is not None for outcome in self.outcomes)


class RemoteExecutor:
    """Coordinator: serves pulled jobs to ``repro worker`` subprocesses.

    Duck-types the one method the scheduler needs —
    ``run(fn, items, config, should_stop=None, heartbeat=None)`` returning
    submission-ordered :class:`TaskOutcome`s — so it drops in where
    :func:`run_resilient` runs today.
    """

    def __init__(self, config: Optional[RemoteConfig] = None) -> None:
        self.config = config or RemoteConfig()
        self._lock = threading.Lock()
        self._workers: Dict[str, _WorkerConn] = {}
        self._procs: List[subprocess.Popen] = []
        self._worker_cmd: Optional[List[str]] = None
        self._worker_env: Optional[Dict[str, str]] = None
        self._batch: Optional[_Batch] = None
        self._closed = False
        self._respawns_left = self.config.max_respawns
        self._name_counter = 0
        #: Statistics of the most recent :meth:`run` call (tests/benches).
        self.last_stats: Dict[str, Any] = {}
        #: Cumulative connection accounting across the executor's lifetime.
        self.workers_connected = 0
        self.workers_lost = 0
        self.workers_respawned = 0
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((self.config.host, self.config.port))
        self._server.listen(64)
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True,
                                               name="repro-rpc-accept")
        self._accept_thread.start()
        logger.info("coordinator listening on %s:%d", *self.address)

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.getsockname()[:2]
        return str(host), int(port)

    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    # ------------------------------------------------------------------ #
    # Worker subprocess lifecycle.
    # ------------------------------------------------------------------ #
    def launch_workers(self, count: int,
                       extra_path: Optional[str] = None) -> None:
        """Spawn ``count`` ``repro worker`` subprocesses dialing us.

        ``extra_path`` is appended to the workers' ``PYTHONPATH`` (tests use
        it so functions defined in a test module unpickle worker-side).
        """
        host, port = self.address
        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        paths = [src_root]
        if extra_path:
            paths.append(str(extra_path))
        if env.get("PYTHONPATH"):
            paths.append(env["PYTHONPATH"])
        env["PYTHONPATH"] = os.pathsep.join(paths)
        self._worker_cmd = [sys.executable, "-m", "repro", "worker",
                            "--connect", f"{host}:{port}", "--quiet"]
        self._worker_env = env
        for _ in range(count):
            self._procs.append(subprocess.Popen(self._worker_cmd, env=env))
        logger.info("launched %d worker subprocess(es) against %s:%d",
                    count, host, port)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` workers completed HELLO, or timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.worker_count() >= count:
                return True
            time.sleep(0.02)
        return self.worker_count() >= count

    def _reap_and_respawn(self) -> None:
        """Restart worker subprocesses that exited while work remains."""
        exited = [proc for proc in self._procs if proc.poll() is not None]
        if not exited:
            return
        for proc in exited:
            self._procs.remove(proc)
            logger.warning("worker subprocess pid %d exited with code %s",
                           proc.pid, proc.returncode)
        if self._closed or self._worker_cmd is None:
            return
        with self._lock:
            work_remains = self._batch is not None and not self._batch.done()
        if not work_remains:
            return
        for _ in exited:
            if self._respawns_left <= 0:
                logger.warning("respawn budget exhausted; pool stays smaller")
                return
            self._respawns_left -= 1
            self._procs.append(subprocess.Popen(self._worker_cmd,
                                                env=self._worker_env))
            self.workers_respawned += 1
            telemetry.counter("rpc.worker_respawned")
            logger.info("respawned a worker subprocess (%d respawn(s) left)",
                        self._respawns_left)

    # ------------------------------------------------------------------ #
    # Connection handling (one thread per worker).
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return  # server socket closed
            threading.Thread(target=self._serve_conn, args=(conn,),
                             daemon=True, name="repro-rpc-worker").start()

    def _serve_conn(self, conn: socket.socket) -> None:
        rfile = conn.makefile("r", encoding="utf-8", newline="\n")
        wfile = conn.makefile("w", encoding="utf-8", newline="\n")
        worker: Optional[_WorkerConn] = None
        try:
            hello = _recv(rfile)
            if (not isinstance(hello, dict) or hello.get("type") != "HELLO"
                    or hello.get("protocol") != PROTOCOL_VERSION):
                got = hello.get("protocol") if isinstance(hello, dict) else None
                telemetry.counter("rpc.reject")
                logger.warning("rejecting worker: protocol %r != %d",
                               got, PROTOCOL_VERSION)
                _send(wfile, {"type": "REJECT",
                              "reason": f"protocol {got!r} unsupported; "
                                        f"coordinator speaks "
                                        f"{PROTOCOL_VERSION}"})
                return
            name = str(hello.get("worker") or "worker")
            with self._lock:
                self._name_counter += 1
                if name in self._workers:
                    name = f"{name}#{self._name_counter}"
                worker = _WorkerConn(name, conn, rfile, wfile)
                self._workers[name] = worker
                self.workers_connected += 1
            telemetry.counter("rpc.worker_connected")
            logger.info("worker %s connected", name)
            _send(wfile, {"type": "WELCOME", "protocol": PROTOCOL_VERSION,
                          "heartbeat_s": self.config.heartbeat_interval_s,
                          "idle_s": self.config.idle_retry_s})
            while True:
                message = _recv(rfile)
                if message is None or message.get("type") == "BYE":
                    return
                worker.last_seen = time.monotonic()
                kind = message.get("type")
                if kind == "LEASE":
                    _send(wfile, self._next_job(worker))
                elif kind == "RESULT":
                    self._take_result(worker, message)
                # HEARTBEAT only refreshes last_seen (already done above).
        except (OSError, ValueError, json.JSONDecodeError):
            pass  # dropped/garbled connection: cleanup below requeues
        finally:
            self._drop_worker(worker)
            try:
                conn.close()
            except OSError:
                pass

    def _next_job(self, worker: _WorkerConn) -> Dict[str, Any]:
        with self._lock:
            if self._closed:
                return {"type": "BYE"}
            batch = self._batch
            now = time.monotonic()
            if batch is not None:
                for slot, index in enumerate(batch.queue):
                    if batch.ready_at[index] <= now:
                        batch.queue.pop(slot)
                        batch.epochs[index] += 1
                        epoch = batch.epochs[index]
                        batch.running[index] = (worker.name, epoch)
                        batch.dispatched += 1
                        telemetry.counter("rpc.job_dispatched")
                        return {
                            "type": "JOB",
                            "job": index,
                            "epoch": epoch,
                            "attempt": batch.failures[index],
                            "key": _item_fault_key(batch.items[index], index),
                            "payload": _encode((batch.fn,
                                                batch.items[index])),
                        }
                retry = self.config.idle_retry_s
                if batch.queue:
                    soonest = min(batch.ready_at[i] for i in batch.queue)
                    retry = min(max(soonest - now, 0.01), retry)
            else:
                retry = self.config.idle_retry_s
        return {"type": "IDLE", "retry_s": retry}

    def _take_result(self, worker: _WorkerConn,
                     message: Dict[str, Any]) -> None:
        with self._lock:
            batch = self._batch
            index = int(message.get("job", -1))
            epoch = int(message.get("epoch", -1))
            if (batch is None or not 0 <= index < len(batch.items)
                    or batch.running.get(index) != (worker.name, epoch)):
                if batch is not None:
                    batch.fenced += 1
                telemetry.counter("rpc.result_fenced")
                logger.warning(
                    "fenced stale RESULT for job %d epoch %d from %s "
                    "(assignment revoked or re-dispatched)",
                    index, epoch, worker.name)
                return
            batch.running.pop(index)
            if message.get("ok"):
                try:
                    value = _decode(message["payload"])
                except Exception as exc:  # noqa: BLE001 - corrupt payload
                    self._charge_locked(batch, index,
                                        f"undecodable RESULT payload: {exc!r}")
                    return
                batch.outcomes[index] = TaskOutcome(
                    value=value, attempts=batch.failures[index] + 1)
                batch.result_order.append(index)
                telemetry.counter("rpc.result")
            else:
                self._charge_locked(batch, index,
                                    str(message.get("error")
                                        or "remote execution failed"))

    def _charge_locked(self, batch: _Batch, index: int, error: str) -> None:
        """Charge one failure to ``index``; requeue or quarantine.

        Caller holds ``self._lock``.
        """
        batch.failures[index] += 1
        attempts = batch.failures[index]
        logger.warning("remote work item %d failed (attempt %d/%d): %s",
                       index, attempts, batch.config.max_retries + 1, error)
        if attempts > batch.config.max_retries:
            batch.outcomes[index] = TaskOutcome(status="quarantined",
                                                attempts=attempts,
                                                error=error)
            batch.result_order.append(index)
        else:
            batch.ready_at[index] = (time.monotonic()
                                     + batch.config.backoff_s(attempts))
            batch.queue.append(index)
            batch.queue.sort()

    def _drop_worker(self, worker: Optional[_WorkerConn]) -> None:
        if worker is None:
            return
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            self._workers.pop(worker.name, None)
            self.workers_lost += 1
            batch = self._batch
            if batch is not None:
                for index, (name, _) in list(batch.running.items()):
                    if name != worker.name:
                        continue
                    batch.running.pop(index)
                    batch.requeued += 1
                    telemetry.counter("rpc.requeued")
                    self._charge_locked(
                        batch, index,
                        f"worker {worker.name} lost mid-job "
                        "(connection dropped or process died)")
        telemetry.counter("rpc.worker_lost")
        if self._closed:
            logger.info("worker %s disconnected at shutdown", worker.name)
        else:
            logger.warning("worker %s lost", worker.name)

    def _check_heartbeats(self) -> None:
        """Revoke assignments whose worker went silent; leave sockets open.

        A merely-wedged worker will eventually send a RESULT carrying the
        revoked epoch — that is the fencing path, and we *want* the message
        to arrive so it can be counted and dropped rather than racing a
        re-execution.
        """
        timeout = self.config.heartbeat_timeout_s
        now = time.monotonic()
        with self._lock:
            batch = self._batch
            if batch is None:
                return
            for index, (name, _) in list(batch.running.items()):
                worker = self._workers.get(name)
                if worker is None or now - worker.last_seen <= timeout:
                    continue
                batch.running.pop(index)
                batch.heartbeat_timeouts += 1
                batch.requeued += 1
                telemetry.counter("rpc.heartbeat_timeout")
                telemetry.counter("rpc.requeued")
                self._charge_locked(
                    batch, index,
                    f"worker {name} missed heartbeats for "
                    f"{now - worker.last_seen:.1f}s (deadline {timeout:.1f}s)")

    # ------------------------------------------------------------------ #
    # Batch execution.
    # ------------------------------------------------------------------ #
    def run(self, fn: Callable[..., Any], items: Sequence[Any],
            config: Optional[ParallelConfig] = None,
            should_stop: Optional[Callable[[], bool]] = None,
            heartbeat: Optional[Callable[[], None]] = None,
            ) -> List[TaskOutcome]:
        """Execute ``fn(item, attempt)`` for every item on the worker fleet.

        Blocks until every item has a terminal :class:`TaskOutcome` (ok /
        quarantined / interrupted), supervising heartbeats, respawns and
        pool-empty degradation from the calling thread.  ``heartbeat`` (the
        scheduler's store-lease refresher) is invoked on every supervision
        tick, so leases held for remote jobs stay visibly alive.
        """
        config = config or ParallelConfig()
        items = list(items)
        if not items:
            self.last_stats = {"dispatched": 0, "requeued": 0, "fenced": 0,
                               "heartbeat_timeouts": 0, "fallback_local": 0,
                               "result_order": []}
            return []
        batch = _Batch(fn, items, config)
        with self._lock:
            if self._batch is not None:
                raise RuntimeError("RemoteExecutor.run is not reentrant")
            if self._closed:
                raise RuntimeError("RemoteExecutor is closed")
            self._batch = batch
        empty_since: Optional[float] = None
        try:
            while True:
                with self._lock:
                    finished = batch.done()
                    alive = len(self._workers)
                if finished:
                    break
                if should_stop is not None and should_stop():
                    self._drain(batch)
                    break
                if heartbeat is not None:
                    heartbeat()
                self._reap_and_respawn()
                self._check_heartbeats()
                if alive == 0:
                    if empty_since is None:
                        empty_since = time.monotonic()
                    elif (time.monotonic() - empty_since
                          > self.config.worker_deadline_s):
                        self._degrade(batch, should_stop, heartbeat)
                        break
                else:
                    empty_since = None
                time.sleep(self.config.poll_interval_s)
        finally:
            with self._lock:
                self._batch = None
            self.last_stats = {
                "dispatched": batch.dispatched,
                "requeued": batch.requeued,
                "fenced": batch.fenced,
                "heartbeat_timeouts": batch.heartbeat_timeouts,
                "fallback_local": batch.fallback_local,
                "result_order": list(batch.result_order),
            }
        for index, outcome in enumerate(batch.outcomes):
            if outcome is None:
                batch.outcomes[index] = TaskOutcome(
                    status="interrupted", attempts=batch.failures[index],
                    error="shutdown requested")
        return batch.outcomes  # type: ignore[return-value]

    def _degrade(self, batch: _Batch,
                 should_stop: Optional[Callable[[], bool]],
                 heartbeat: Optional[Callable[[], None]]) -> None:
        """Pool empty past the deadline: finish locally or fail loudly."""
        with self._lock:
            # Anything still marked running sat on a worker that is gone;
            # revoke so a zombie reconnect cannot race the local execution.
            for index in list(batch.running):
                batch.running.pop(index)
                batch.requeued += 1
            pending = [index for index, outcome in enumerate(batch.outcomes)
                       if outcome is None]
            batch.queue = []
        if not pending:
            return
        if self.config.fallback == "fail":
            raise NoWorkersError(
                f"all remote workers lost and none reconnected within "
                f"{self.config.worker_deadline_s:.1f}s; {len(pending)} "
                f"item(s) unfinished — completed work is in the store, "
                f"re-run to resume")
        batch.fallback_local += 1
        telemetry.counter("rpc.fallback_local")
        logger.warning(
            "all remote workers lost for %.1fs; finishing %d item(s) "
            "locally", self.config.worker_deadline_s, len(pending))
        outcomes = run_resilient(
            batch.fn, [batch.items[index] for index in pending],
            batch.config, should_stop=should_stop, heartbeat=heartbeat,
            initial_failures=[batch.failures[index] for index in pending])
        with self._lock:
            for index, outcome in zip(pending, outcomes):
                if batch.outcomes[index] is None:
                    batch.outcomes[index] = outcome
                    batch.result_order.append(index)

    def _drain(self, batch: _Batch) -> None:
        """Graceful stop: wait briefly for in-flight work, then give up."""
        grace = batch.config.job_timeout or 60.0
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            with self._lock:
                if not batch.running:
                    return
                batch.queue = []
            time.sleep(self.config.poll_interval_s)

    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 5.0) -> None:
        """Tell workers to exit, reap subprocesses, close the socket."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
        self._procs.clear()
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            try:
                worker.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "RemoteExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Worker side (`repro worker --connect host:port`).
# --------------------------------------------------------------------------- #
def _connect(host: str, port: int, attempts: int,
             delay_s: float) -> Optional[socket.socket]:
    for attempt in range(attempts):
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if attempt == attempts - 1:
                return None
            time.sleep(delay_s)
    return None


def _heartbeat_loop(wfile: IO[str], wlock: threading.Lock, job: int,
                    epoch: int, interval_s: float,
                    stop: threading.Event) -> None:
    while not stop.wait(interval_s):
        try:
            _send(wfile, {"type": "HEARTBEAT", "job": job, "epoch": epoch},
                  wlock)
        except OSError:
            return


def _execute_job(message: Dict[str, Any], wfile: IO[str],
                 wlock: threading.Lock, heartbeat_s: float) -> str:
    """Run one JOB message; returns "done" or "drop" (simulate conn loss)."""
    job = int(message["job"])
    epoch = int(message["epoch"])
    attempt = int(message.get("attempt", 0))
    key = str(message.get("key", ""))
    fn, item = _decode(message["payload"])
    # The active fault plan rides inside the work item (like the scheduler's
    # engine-state tuple); install it — or clear a predecessor's — before
    # consulting any rpc site so injection is placement-independent.
    faults.install_plan(getattr(item, "fault_plan", None))
    if faults.rpc_rule("rpc.worker_crash", key, attempt) is not None:
        logger.warning("fault: worker pid %d crashing on %s (attempt %d)",
                       os.getpid(), key, attempt)
        sys.stderr.flush()
        os._exit(66)
    if faults.rpc_rule("rpc.conn_drop", key, attempt) is not None:
        logger.warning("fault: dropping coordinator connection on %s "
                       "(attempt %d)", key, attempt)
        return "drop"
    loss = faults.rpc_rule("rpc.heartbeat_loss", key, attempt)
    stop = threading.Event()
    beater: Optional[threading.Thread] = None
    if loss is None:
        beater = threading.Thread(
            target=_heartbeat_loop,
            args=(wfile, wlock, job, epoch, heartbeat_s, stop), daemon=True)
        beater.start()
    elif loss.delay_s > 0:
        # Go silent long enough for the coordinator's deadline to pass, so
        # the eventual RESULT below exercises the fencing path.
        logger.warning("fault: suppressing heartbeats and stalling %.1fs on "
                       "%s (attempt %d)", loss.delay_s, key, attempt)
        time.sleep(loss.delay_s)
    try:
        try:
            value = fn(item, attempt)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            reply: Dict[str, Any] = {"type": "RESULT", "job": job,
                                     "epoch": epoch, "ok": False,
                                     "error": f"{type(exc).__name__}: {exc}"}
        else:
            reply = {"type": "RESULT", "job": job, "epoch": epoch,
                     "ok": True, "payload": _encode(value)}
        delay = faults.rpc_rule("rpc.result_delay", key, attempt)
        if delay is not None and delay.delay_s > 0:
            # Heartbeats keep flowing (the thread outlives the compute), so
            # only the RESULT arrival order shuffles — not liveness.
            time.sleep(delay.delay_s)
        _send(wfile, reply, wlock)
    finally:
        stop.set()
        if beater is not None:
            beater.join(timeout=2.0)
    return "done"


def _serve_session(sock: socket.socket) -> str:
    """One connected session; returns "bye", "drop", "lost" or "reject"."""
    sock.settimeout(None)
    rfile = sock.makefile("r", encoding="utf-8", newline="\n")
    wfile = sock.makefile("w", encoding="utf-8", newline="\n")
    wlock = threading.Lock()
    _send(wfile, {"type": "HELLO", "protocol": PROTOCOL_VERSION,
                  "worker": f"{os.getpid()}@{socket.gethostname()}"}, wlock)
    welcome = _recv(rfile)
    if not isinstance(welcome, dict) or welcome.get("type") != "WELCOME":
        reason = (welcome or {}).get("reason") if isinstance(welcome, dict) \
            else None
        logger.error("coordinator rejected us: %s", reason or "no WELCOME")
        return "reject"
    heartbeat_s = float(welcome.get("heartbeat_s", 0.5))
    idle_s = float(welcome.get("idle_s", 0.1))
    while True:
        _send(wfile, {"type": "LEASE"}, wlock)
        message = _recv(rfile)
        if message is None:
            return "lost"
        kind = message.get("type")
        if kind == "BYE":
            return "bye"
        if kind == "IDLE":
            time.sleep(float(message.get("retry_s", idle_s)))
        elif kind == "JOB":
            if _execute_job(message, wfile, wlock, heartbeat_s) == "drop":
                return "drop"


def run_worker(host: str, port: int, connect_attempts: int = 20,
               connect_delay_s: float = 0.25) -> int:
    """Worker main loop: dial the coordinator, pull jobs until BYE.

    Reconnects after injected connection drops and after losing the
    coordinator (which may be between batches or restarting).  Returns a
    process exit code: 0 after an orderly BYE, 1 when the coordinator was
    never reachable, 2 on protocol rejection.
    """
    served_once = False
    while True:
        sock = _connect(host, port, connect_attempts, connect_delay_s)
        if sock is None:
            if served_once:
                logger.info("coordinator gone; exiting")
                return 0
            logger.error("could not reach coordinator at %s:%d", host, port)
            return 1
        try:
            outcome = _serve_session(sock)
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if outcome == "bye":
            return 0
        if outcome == "reject":
            return 2
        served_once = True
        # "drop" (injected) and "lost" both retry the dial loop.
