"""Persistent, content-addressed store of design-evaluation results.

Campaigns repeat work: the original design is re-scored for every comparison,
sweeps are re-run after interruptions, and the same (design, environment,
seed) training session is requested by several tables.  The
:class:`ResultStore` makes completed work a property of the substrate instead
of each caller — every finished :class:`~repro.core.evaluation.TrainingRun`
is written to disk under a key derived from *everything that can change its
outcome*, so a repeated campaign skips straight to cached results and an
interrupted one resumes where it stopped.

Key schema (one JSON file per record)::

    key = sha256(context fingerprint | design fingerprint | seed)

* **context fingerprint** — the evaluation context: environment label,
  tensor dtype, the fast-inference toggle, the
  :class:`~repro.core.evaluation.EvaluationConfig` (with its nested A2C and
  simulator configs), the video (bitrate ladder, chunk sizes, chunk
  duration) and the exact train/test trace arrays, and the QoE metric's
  class and parameters.  Changing any of these invalidates the cache.
  Engine toggles that are proven bit-identical by the equivalence tests
  (``lockstep_training``, ``batched_evaluation``) are deliberately
  *excluded*, so a campaign recorded under one execution engine can be
  replayed under any other — as are ``num_seeds`` and
  ``last_k_checkpoints``, which shape seed-list defaults and score
  aggregation but never a stored per-seed run.
* **design fingerprint** — sha256 over each component's kind and source code
  (``original`` for the unmodified Pensieve component).
* **seed** — the training seed.  The scheduler reads a job's cache
  all-or-nothing (a seed batch trains in lockstep, so a partial batch
  re-trains whole), but per-seed records let *overlapping* jobs share
  work: a later job asking for a subset of an already-scored seed batch
  hits record by record.

Records live at ``<root>/<key[:2]>/<key>.json`` with a human-readable
``meta`` block alongside the run payload.  Floats survive the JSON round
trip bit-exactly (Python serializes them via shortest round-trip repr), so
cached campaign scores are identical to freshly computed ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Iterable, Optional, Tuple, TYPE_CHECKING

import numpy as np

from .. import nn
from ..abr.networks import fast_inference_enabled
from ..log import get_logger
from . import telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .design import Design
    from .evaluation import DesignTrainer, EvaluationConfig, TrainingRun

__all__ = [
    "ResultStore",
    "design_fingerprint",
    "context_fingerprint",
    "result_key",
]

logger = get_logger("results")

#: Version prefix mixed into every key; bump when the record layout changes.
#: v2: the kernel-compiler toggle and numerics mode joined the context.
_SCHEMA_VERSION = "v2"

#: EvaluationConfig fields excluded from the key.  ``lockstep_training`` and
#: ``batched_evaluation`` are pure execution-engine choices whose outputs are
#: pinned bit-identical by the equivalence tests; ``num_seeds`` and
#: ``last_k_checkpoints`` only shape seed-list defaults and score
#: *aggregation*, never the per-seed training run a record stores — excluding
#: them lets a shorter protocol over the same design hit the records a longer
#: one wrote (the scheduler re-stamps ``last_k_checkpoints`` from the
#: requesting config on load).
_NON_RESULT_FIELDS = frozenset({"lockstep_training", "batched_evaluation",
                                "num_seeds", "last_k_checkpoints"})


def _sha256(parts: Iterable[bytes]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
        digest.update(b"\x00")
    return digest.hexdigest()


def _config_tokens(config: Any) -> bytes:
    """Stable byte encoding of a (possibly nested) config dataclass."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config = {name: value
                  for name, value in dataclasses.asdict(config).items()
                  if name not in _NON_RESULT_FIELDS}
    return json.dumps(config, sort_keys=True, default=str).encode("utf-8")


def _array_digest(array: np.ndarray) -> bytes:
    data = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
    return hashlib.sha256(data.tobytes()).digest()


def design_fingerprint(state_design: Optional["Design"],
                       network_design: Optional["Design"]) -> str:
    """Content address of a (state, network) design pair.

    ``None`` means the original Pensieve component; fingerprints depend only
    on each design's kind and source code, never on pool ids or metadata, so
    re-generated identical code hits the cache.
    """
    parts = []
    for label, design in (("state", state_design), ("network", network_design)):
        if design is None:
            parts.append(f"{label}:original".encode("utf-8"))
        else:
            code = hashlib.sha256(design.code.encode("utf-8")).hexdigest()
            parts.append(f"{label}:{design.kind.value}:{code}".encode("utf-8"))
    return _sha256(parts)


def context_fingerprint(trainer: "DesignTrainer", environment: str = "") -> str:
    """Fingerprint of everything in the evaluation context that shapes results.

    Covers the environment label, tensor dtype, evaluation/A2C/simulator
    configs, the video and the full train/test trace arrays, and the QoE
    metric — but not engine toggles proven bit-identical (see module docs).
    """
    video = trainer.video
    qoe = trainer.qoe
    parts = [
        _SCHEMA_VERSION.encode("utf-8"),
        environment.encode("utf-8"),
        str(nn.get_default_dtype()).encode("utf-8"),
        # The folded-inference path agrees with the graph forward only to
        # float round-off (~1e-12), not bit-identity, so it is key material.
        f"fast_inference={fast_inference_enabled()}".encode("utf-8"),
        # Likewise the kernel compiler (fused-vs-graph loss gradients agree
        # to round-off, not bitwise) and its numerics mode ("fast" re-blocks
        # gradient contractions and is only statistically equivalent).
        f"compile={nn.compilation_enabled()}".encode("utf-8"),
        f"numerics={nn.get_numerics()}".encode("utf-8"),
        _config_tokens(trainer.config),
        _config_tokens({
            "bitrates_kbps": list(video.bitrates_kbps),
            "chunk_duration_s": video.chunk_duration_s,
        }),
        _array_digest(video.chunk_sizes_bytes),
        _config_tokens({
            "qoe_class": type(qoe).__name__,
            "bitrates_kbps": list(qoe.bitrates_kbps),
            "rebuffer_penalty": qoe.rebuffer_penalty,
            "smoothness_penalty": qoe.smoothness_penalty,
        }),
    ]
    for trace_set in (trainer.train_traces, trainer.test_traces):
        for trace in trace_set:
            parts.append(_array_digest(trace.timestamps_s))
            parts.append(_array_digest(trace.throughputs_mbps))
    return _sha256(parts)


def result_key(context: str, designs: str, seed: int) -> str:
    """Compose the store key for one (context, design pair, seed) record."""
    return _sha256([context.encode("utf-8"), designs.encode("utf-8"),
                    str(int(seed)).encode("utf-8")])


class ResultStore:
    """JSON-on-disk store of per-seed :class:`TrainingRun` records.

    The store is append-only from the scheduler's point of view: records are
    written atomically (temp file + rename) and never mutated, so concurrent
    campaigns sharing one store directory cannot corrupt each other.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        #: Lookup statistics since construction (for reports and tests).
        self.hits = 0
        self.misses = 0
        #: Records peeked successfully but discarded because a later seed in
        #: the same all-or-nothing batch probe was absent.
        self.partial_probes = 0
        #: Records written since construction.
        self.puts = 0

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(name.endswith(".json") for name in files)
        return count

    # ------------------------------------------------------------------ #
    def get_run(self, key: str) -> Optional["TrainingRun"]:
        """Load one cached run, counting the lookup as a hit or miss."""
        run = self.peek_run(key)
        if run is None:
            self.misses += 1
            telemetry.counter("store.miss")
        else:
            self.hits += 1
            telemetry.counter("store.hit")
        return run

    def peek_run(self, key: str) -> Optional["TrainingRun"]:
        """Load one cached run without touching the hit/miss counters.

        The scheduler probes a job's whole seed batch all-or-nothing; it
        peeks each record and commits the counters only once the batch
        outcome is known, so partially present batches that retrain anyway
        never inflate the hit statistics.
        """
        from .evaluation import TrainingRun

        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        payload = record["run"]
        # ``checkpoint_metrics`` joined the payload with the telemetry layer;
        # it is additive and optional (records written before it load as
        # None), so the schema version — and hence every key — is unchanged.
        metrics = payload.get("checkpoint_metrics")
        if metrics is not None:
            metrics = {name: [float(v) for v in values]
                       for name, values in metrics.items()}
        return TrainingRun(
            seed=int(payload["seed"]),
            reward_history=[float(r) for r in payload["reward_history"]],
            checkpoint_epochs=[int(e) for e in payload["checkpoint_epochs"]],
            checkpoint_scores=[float(s) for s in payload["checkpoint_scores"]],
            early_stopped=bool(payload["early_stopped"]),
            last_k_checkpoints=payload["last_k_checkpoints"],
            checkpoint_metrics=metrics,
        )

    def put_run(self, key: str, run: "TrainingRun",
                meta: Optional[Dict[str, Any]] = None) -> None:
        """Persist one run atomically under ``key``."""
        record = {
            "schema": _SCHEMA_VERSION,
            "meta": meta or {},
            "run": {
                "seed": run.seed,
                "reward_history": list(run.reward_history),
                "checkpoint_epochs": list(run.checkpoint_epochs),
                "checkpoint_scores": list(run.checkpoint_scores),
                "early_stopped": run.early_stopped,
                "last_k_checkpoints": run.last_k_checkpoints,
            },
        }
        if run.checkpoint_metrics is not None:
            record["run"]["checkpoint_metrics"] = {
                name: list(values)
                for name, values in run.checkpoint_metrics.items()}
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=os.path.dirname(path), suffix=".tmp",
            delete=False, encoding="utf-8")
        try:
            with handle:
                json.dump(record, handle)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.puts += 1
        telemetry.counter("store.put")
        logger.debug("stored run for seed %d under %s…", run.seed, key[:12])

    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, int]:
        return {"records": len(self), "hits": self.hits, "misses": self.misses,
                "partial_probes": self.partial_probes, "puts": self.puts}
