"""Persistent, content-addressed store of design-evaluation results.

Campaigns repeat work: the original design is re-scored for every comparison,
sweeps are re-run after interruptions, and the same (design, environment,
seed) training session is requested by several tables.  The
:class:`ResultStore` makes completed work a property of the substrate instead
of each caller — every finished :class:`~repro.core.evaluation.TrainingRun`
is written to disk under a key derived from *everything that can change its
outcome*, so a repeated campaign skips straight to cached results and an
interrupted one resumes where it stopped.

Key schema (one JSON file per record)::

    key = sha256(context fingerprint | design fingerprint | seed)

* **context fingerprint** — the evaluation context: environment label,
  tensor dtype, the fast-inference toggle, the
  :class:`~repro.core.evaluation.EvaluationConfig` (with its nested A2C and
  simulator configs), the video (bitrate ladder, chunk sizes, chunk
  duration) and the exact train/test trace arrays, and the QoE metric's
  class and parameters.  Changing any of these invalidates the cache.
  Engine toggles that are proven bit-identical by the equivalence tests
  (``lockstep_training``, ``batched_evaluation``) are deliberately
  *excluded*, so a campaign recorded under one execution engine can be
  replayed under any other — as are ``num_seeds`` and
  ``last_k_checkpoints``, which shape seed-list defaults and score
  aggregation but never a stored per-seed run.
* **design fingerprint** — sha256 over each component's kind and source code
  (``original`` for the unmodified Pensieve component).
* **seed** — the training seed.  The scheduler reads a job's cache
  all-or-nothing (a seed batch trains in lockstep, so a partial batch
  re-trains whole), but per-seed records let *overlapping* jobs share
  work: a later job asking for a subset of an already-scored seed batch
  hits record by record.

Records live at ``<root>/<key[:2]>/<key>.json`` with a human-readable
``meta`` block alongside the run payload.  Floats survive the JSON round
trip bit-exactly (Python serializes them via shortest round-trip repr), so
cached campaign scores are identical to freshly computed ones.

Crash- and concurrency-safety (PR 7):

* **Verified compare-and-swap puts.**  A record is written to a temp file,
  read back and parsed before publication (healing torn writes the moment
  they happen), then *linked* into place — an atomic create-if-absent, so
  when N processes share one store the first writer wins and every later
  put of the same key is a counted no-op (``put_races``) instead of an
  overwrite.
* **Corrupt-record quarantine.**  A record that fails to parse — truncated
  JSON, a missing payload field — is renamed to ``<key>.json.corrupt`` and
  counted (``corrupt`` in :meth:`statistics`), so the key retrains exactly
  once and the evidence survives for debugging instead of being silently
  treated as a miss forever.
* **Leases.**  :meth:`claim` atomically creates ``<key>.lease`` carrying
  ``pid@host`` so concurrent campaigns sharing the store execute each key
  exactly once; the lease's mtime is its heartbeat (:meth:`refresh`), and a
  lease whose heartbeat is older than ``lease_timeout`` is considered
  abandoned and can be taken over by any other process (``lease_stolen``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import socket
import tempfile
import time
from typing import Any, Dict, Iterable, Optional, Tuple, TYPE_CHECKING

import numpy as np

from .. import nn
from ..abr.networks import fast_inference_enabled
from ..log import get_logger
from . import faults, telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .design import Design
    from .evaluation import DesignTrainer, EvaluationConfig, TrainingRun

__all__ = [
    "Lease",
    "ResultStore",
    "design_fingerprint",
    "context_fingerprint",
    "result_key",
]

logger = get_logger("results")

#: Version prefix mixed into every key; bump when the record layout changes.
#: v2: the kernel-compiler toggle and numerics mode joined the context.
_SCHEMA_VERSION = "v2"

#: EvaluationConfig fields excluded from the key.  ``lockstep_training`` and
#: ``batched_evaluation`` are pure execution-engine choices whose outputs are
#: pinned bit-identical by the equivalence tests; ``num_seeds`` and
#: ``last_k_checkpoints`` only shape seed-list defaults and score
#: *aggregation*, never the per-seed training run a record stores — excluding
#: them lets a shorter protocol over the same design hit the records a longer
#: one wrote (the scheduler re-stamps ``last_k_checkpoints`` from the
#: requesting config on load).
_NON_RESULT_FIELDS = frozenset({"lockstep_training", "batched_evaluation",
                                "num_seeds", "last_k_checkpoints"})


def _sha256(parts: Iterable[bytes]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
        digest.update(b"\x00")
    return digest.hexdigest()


def _config_tokens(config: Any) -> bytes:
    """Stable byte encoding of a (possibly nested) config dataclass."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config = {name: value
                  for name, value in dataclasses.asdict(config).items()
                  if name not in _NON_RESULT_FIELDS}
    return json.dumps(config, sort_keys=True, default=str).encode("utf-8")


def _array_digest(array: np.ndarray) -> bytes:
    data = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
    return hashlib.sha256(data.tobytes()).digest()


def design_fingerprint(state_design: Optional["Design"],
                       network_design: Optional["Design"]) -> str:
    """Content address of a (state, network) design pair.

    ``None`` means the original Pensieve component; fingerprints depend only
    on each design's kind and source code, never on pool ids or metadata, so
    re-generated identical code hits the cache.
    """
    parts = []
    for label, design in (("state", state_design), ("network", network_design)):
        if design is None:
            parts.append(f"{label}:original".encode("utf-8"))
        else:
            code = hashlib.sha256(design.code.encode("utf-8")).hexdigest()
            parts.append(f"{label}:{design.kind.value}:{code}".encode("utf-8"))
    return _sha256(parts)


def context_fingerprint(trainer: "DesignTrainer", environment: str = "") -> str:
    """Fingerprint of everything in the evaluation context that shapes results.

    Covers the environment label, tensor dtype, evaluation/A2C/simulator
    configs, the video and the full train/test trace arrays, and the QoE
    metric — but not engine toggles proven bit-identical (see module docs).
    """
    video = trainer.video
    qoe = trainer.qoe
    parts = [
        _SCHEMA_VERSION.encode("utf-8"),
        environment.encode("utf-8"),
        str(nn.get_default_dtype()).encode("utf-8"),
        # The folded-inference path agrees with the graph forward only to
        # float round-off (~1e-12), not bit-identity, so it is key material.
        f"fast_inference={fast_inference_enabled()}".encode("utf-8"),
        # Likewise the kernel compiler (fused-vs-graph loss gradients agree
        # to round-off, not bitwise) and its numerics mode ("fast" re-blocks
        # gradient contractions and is only statistically equivalent).
        f"compile={nn.compilation_enabled()}".encode("utf-8"),
        f"numerics={nn.get_numerics()}".encode("utf-8"),
        _config_tokens(trainer.config),
        _config_tokens({
            "bitrates_kbps": list(video.bitrates_kbps),
            "chunk_duration_s": video.chunk_duration_s,
        }),
        _array_digest(video.chunk_sizes_bytes),
        _config_tokens({
            "qoe_class": type(qoe).__name__,
            "bitrates_kbps": list(qoe.bitrates_kbps),
            "rebuffer_penalty": qoe.rebuffer_penalty,
            "smoothness_penalty": qoe.smoothness_penalty,
        }),
    ]
    for trace_set in (trainer.train_traces, trainer.test_traces):
        for trace in trace_set:
            parts.append(_array_digest(trace.timestamps_s))
            parts.append(_array_digest(trace.throughputs_mbps))
    return _sha256(parts)


def result_key(context: str, designs: str, seed: int) -> str:
    """Compose the store key for one (context, design pair, seed) record."""
    return _sha256([context.encode("utf-8"), designs.encode("utf-8"),
                    str(int(seed)).encode("utf-8")])


class Lease(object):
    """A held claim on one store key (see :meth:`ResultStore.claim`).

    ``epoch`` is a fencing token: it starts at 1 for a fresh claim and is
    incremented past the previous holder's epoch on every stale takeover,
    so a zombie process resurfacing with a lease that was stolen from it can
    be recognized (its owner no longer matches the lease file) and its put
    dropped instead of racing the takeover's re-execution.
    """

    __slots__ = ("key", "path", "owner", "epoch")

    def __init__(self, key: str, path: str, owner: str,
                 epoch: int = 1) -> None:
        self.key = key
        self.path = path
        self.owner = owner
        self.epoch = int(epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Lease({self.key[:12]}…, owner={self.owner}, "
                f"epoch={self.epoch})")


class ResultStore:
    """JSON-on-disk store of per-seed :class:`TrainingRun` records.

    The store is append-only from the scheduler's point of view: records are
    written atomically (temp file + verified hard-link publish) and never
    mutated, so concurrent campaigns sharing one store directory cannot
    corrupt each other; the lease layer additionally keeps them from
    *duplicating* each other (see the module docs).
    """

    #: How many times a verified write retries after detecting corruption.
    _WRITE_ATTEMPTS = 3

    def __init__(self, root: str, lease_timeout: float = 30.0) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        #: Seconds after which a lease with no heartbeat counts as abandoned.
        self.lease_timeout = float(lease_timeout)
        #: Lookup statistics since construction (for reports and tests).
        self.hits = 0
        self.misses = 0
        #: Records peeked successfully but discarded because a later seed in
        #: the same all-or-nothing batch probe was absent.
        self.partial_probes = 0
        #: Records written since construction.
        self.puts = 0
        #: Records found unreadable and quarantined to ``*.corrupt``.
        self.corrupt = 0
        #: Writes whose read-back verification failed (healed by retrying).
        self.torn_writes = 0
        #: Puts dropped because another process published the key first.
        self.put_races = 0
        #: Lease lifecycle counts.
        self.lease_acquired = 0
        self.lease_contended = 0
        self.lease_stolen = 0
        self.lease_released = 0
        #: Puts dropped because the caller's lease was stolen while the job
        #: was away (a zombie worker publishing after a takeover).
        self.fenced_puts = 0
        #: Per-(site, key) operation indices for deterministic fault rules.
        self._op_counts: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _lease_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.lease")

    def _occurrence(self, site: str, key: str) -> int:
        index = self._op_counts.get((site, key), 0)
        self._op_counts[(site, key)] = index + 1
        return index

    @property
    def owner_token(self) -> str:
        """This process's lease identity: ``pid@host``."""
        return f"{os.getpid()}@{socket.gethostname()}"

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(name.endswith(".json") for name in files)
        return count

    # ------------------------------------------------------------------ #
    def get_run(self, key: str) -> Optional["TrainingRun"]:
        """Load one cached run, counting the lookup as a hit or miss."""
        run = self.peek_run(key)
        if run is None:
            self.misses += 1
            telemetry.counter("store.miss")
        else:
            self.hits += 1
            telemetry.counter("store.hit")
        return run

    def peek_run(self, key: str) -> Optional["TrainingRun"]:
        """Load one cached run without touching the hit/miss counters.

        The scheduler probes a job's whole seed batch all-or-nothing; it
        peeks each record and commits the counters only once the batch
        outcome is known, so partially present batches that retrain anyway
        never inflate the hit statistics.
        """
        from .evaluation import TrainingRun

        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except OSError:
            # The file exists but could not be read (permissions, transient
            # I/O).  Not evidence of corruption — treat as a miss without
            # destroying anything.
            logger.warning("unreadable store record %s… treated as a miss",
                           key[:12])
            return None
        except json.JSONDecodeError:
            self._quarantine(key, path, "undecodable JSON")
            return None
        try:
            payload = record["run"]
            # ``checkpoint_metrics`` joined the payload with the telemetry
            # layer; it is additive and optional (records written before it
            # load as None), so the schema version — and hence every key —
            # is unchanged.
            metrics = payload.get("checkpoint_metrics")
            if metrics is not None:
                metrics = {name: [float(v) for v in values]
                           for name, values in metrics.items()}
            return TrainingRun(
                seed=int(payload["seed"]),
                reward_history=[float(r) for r in payload["reward_history"]],
                checkpoint_epochs=[int(e)
                                   for e in payload["checkpoint_epochs"]],
                checkpoint_scores=[float(s)
                                   for s in payload["checkpoint_scores"]],
                early_stopped=bool(payload["early_stopped"]),
                last_k_checkpoints=payload["last_k_checkpoints"],
                checkpoint_metrics=metrics,
            )
        except (KeyError, TypeError, ValueError, AttributeError):
            # Parsed as JSON but the payload is truncated or malformed.
            self._quarantine(key, path, "malformed payload")
            return None

    def _quarantine(self, key: str, path: str, reason: str) -> None:
        """Rename a bad record to ``*.corrupt`` and count it."""
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            return  # vanished or unwritable directory; nothing to preserve
        self.corrupt += 1
        telemetry.counter("store.corrupt")
        logger.warning("corrupt store record (%s) quarantined to %s.corrupt "
                       "— key %s… will be re-executed", reason,
                       os.path.basename(path), key[:12])

    def _encode_record(self, run: "TrainingRun",
                       meta: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        record = {
            "schema": _SCHEMA_VERSION,
            "meta": meta or {},
            "run": {
                "seed": run.seed,
                "reward_history": list(run.reward_history),
                "checkpoint_epochs": list(run.checkpoint_epochs),
                "checkpoint_scores": list(run.checkpoint_scores),
                "early_stopped": run.early_stopped,
                "last_k_checkpoints": run.last_k_checkpoints,
            },
        }
        if run.checkpoint_metrics is not None:
            record["run"]["checkpoint_metrics"] = {
                name: list(values)
                for name, values in run.checkpoint_metrics.items()}
        return record

    def put_run(self, key: str, run: "TrainingRun",
                meta: Optional[Dict[str, Any]] = None,
                lease: Optional[Lease] = None) -> bool:
        """Persist one run under ``key`` with a verified compare-and-swap.

        The record is written to a temp file, read back and parsed (a torn
        or corrupted write is detected immediately and retried up to
        ``_WRITE_ATTEMPTS`` times), then *hard-linked* into place — an
        atomic create-if-absent.  Returns True when this call published the
        record; False when another process already had (``put_races``), in
        which case the existing record is left untouched — first writer
        wins, so a key is never silently overwritten.

        When ``lease`` is given, the put is **fenced**: it is dropped
        (``fenced_puts``) unless the lease file still names ``lease.owner``
        — a caller whose lease went stale and was stolen while its job was
        away (a zombie worker) must not race the takeover's re-execution.
        """
        if lease is not None and self.lease_owner(key) != lease.owner:
            self.fenced_puts += 1
            telemetry.counter("store.put_fenced")
            logger.warning(
                "fenced put dropped for %s…: lease epoch %d owned by %s was "
                "stolen (now %s)", key[:12], lease.epoch, lease.owner,
                self.lease_owner(key))
            return False
        return self._publish_record(key, self._encode_record(run, meta))

    # ------------------------------------------------------------------ #
    # Generic JSON payload records (emulation results and other non-training
    # consumers) share the verified-CAS machinery of put_run/peek_run.
    # ------------------------------------------------------------------ #
    def put_payload(self, key: str, payload: Dict[str, Any],
                    meta: Optional[Dict[str, Any]] = None) -> bool:
        """Persist an arbitrary JSON-serializable payload under ``key``.

        Same verified compare-and-swap semantics as :meth:`put_run`; the
        record carries a ``payload`` block instead of a ``run`` block, so
        the two record kinds can never be confused on read-back.
        """
        if not isinstance(payload, dict):
            raise TypeError("payload must be a JSON-serializable dict")
        record = {"schema": _SCHEMA_VERSION, "meta": meta or {},
                  "payload": payload}
        return self._publish_record(key, record)

    def get_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """Load one payload record, counting the lookup as a hit or miss."""
        payload = self.peek_payload(key)
        if payload is None:
            self.misses += 1
            telemetry.counter("store.miss")
        else:
            self.hits += 1
            telemetry.counter("store.hit")
        return payload

    def peek_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """Load one payload record without touching the hit/miss counters."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except OSError:
            logger.warning("unreadable store record %s… treated as a miss",
                           key[:12])
            return None
        except json.JSONDecodeError:
            self._quarantine(key, path, "undecodable JSON")
            return None
        payload = record.get("payload") if isinstance(record, dict) else None
        if not isinstance(payload, dict):
            self._quarantine(key, path, "malformed payload")
            return None
        return payload

    def _publish_record(self, key: str, record: Dict[str, Any]) -> bool:
        """Verified CAS publish shared by :meth:`put_run`/:meth:`put_payload`."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        for _ in range(self._WRITE_ATTEMPTS):
            handle = tempfile.NamedTemporaryFile(
                "w", dir=os.path.dirname(path), suffix=".tmp",
                delete=False, encoding="utf-8")
            try:
                payload = json.dumps(record)
                torn = faults.store_rule(
                    "store.torn_write", key,
                    self._occurrence("store.torn_write", key))
                if torn is not None:
                    payload = payload[:max(1, len(payload) // 2)]
                with handle:
                    handle.write(payload)
                if not self._verify_record(handle.name, record):
                    self.torn_writes += 1
                    telemetry.counter("store.torn_write")
                    logger.warning("torn write detected for %s…; retrying",
                                   key[:12])
                    os.unlink(handle.name)
                    continue
                try:
                    os.link(handle.name, path)
                except FileExistsError:
                    self.put_races += 1
                    telemetry.counter("store.put_race")
                    logger.debug("record %s… already published elsewhere; "
                                 "dropping duplicate put", key[:12])
                    return False
                finally:
                    os.unlink(handle.name)
            except OSError:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
            self.puts += 1
            telemetry.counter("store.put")
            logger.debug("stored record under %s…", key[:12])
            return True
        raise OSError(f"could not persist record {key[:12]}… intact after "
                      f"{self._WRITE_ATTEMPTS} attempts")

    @staticmethod
    def _verify_record(path: str, expected: Dict[str, Any]) -> bool:
        """Read back a just-written record and confirm it parses unchanged."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle) == expected
        except (OSError, json.JSONDecodeError):
            return False

    # ------------------------------------------------------------------ #
    # Leases: one file per in-flight key, owner pid@host, heartbeat mtime.
    # ------------------------------------------------------------------ #
    def claim(self, key: str) -> Optional[Lease]:
        """Atomically claim ``key`` for execution by this process.

        Returns a :class:`Lease` when this process now owns the key, or
        None when a live lease is held elsewhere (``lease_contended``) —
        the caller should wait for the owner's record to appear.  A lease
        whose heartbeat mtime is older than ``lease_timeout`` belongs to a
        dead or wedged owner: exactly one claimant renames it aside
        (``lease_stolen``) and takes over.
        """
        path = self._lease_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        held = faults.store_rule("store.lease_hold", key,
                                 self._occurrence("store.lease_hold", key))
        if held is not None:
            self._plant_foreign_lease(path, age_s=held.delay_s)
        # Two passes: the second retries the O_EXCL create after a stale
        # lease was renamed aside (by us or by a racing claimant).
        epoch = 1
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(path)
                except OSError:
                    continue  # released or stolen between checks; retry
                if age <= self.lease_timeout:
                    self.lease_contended += 1
                    telemetry.counter("store.lease_contended")
                    return None
                # Fence the dead owner: our epoch must exceed whatever the
                # stale lease carried (read before the rename destroys it).
                epoch = max(epoch, self._lease_epoch(path) + 1)
                aside = f"{path}.stale.{os.getpid()}"
                try:
                    os.rename(path, aside)
                except OSError:
                    continue  # another claimant won the steal; retry create
                try:
                    os.unlink(aside)
                except OSError:
                    pass
                self.lease_stolen += 1
                telemetry.counter("store.lease_stolen")
                logger.warning("took over stale lease on %s… "
                               "(no heartbeat for %.1fs)", key[:12], age)
                continue
            owner = self.owner_token
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"owner": owner, "ts": time.time(),
                           "epoch": epoch}, handle)
            self.lease_acquired += 1
            telemetry.counter("store.lease_acquired")
            return Lease(key, path, owner, epoch)
        self.lease_contended += 1
        telemetry.counter("store.lease_contended")
        return None

    @staticmethod
    def _plant_foreign_lease(path: str, age_s: float) -> None:
        """Fault injection: make ``path`` look held by another process."""
        if os.path.exists(path):
            return
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"owner": "injected@nowhere", "ts": time.time() - age_s},
                      handle)
        then = time.time() - age_s
        os.utime(path, (then, then))

    def refresh(self, lease: Lease) -> None:
        """Heartbeat: bump the lease's mtime so it is never seen as stale."""
        try:
            os.utime(lease.path, None)
        except OSError:
            pass  # stolen or released; the CAS put stays safe regardless

    def release(self, lease: Lease) -> None:
        """Drop a held lease (only if still owned by this process)."""
        if self.lease_owner(lease.key) != lease.owner:
            return  # stolen after a stall; the thief owns it now
        try:
            os.unlink(lease.path)
        except OSError:
            return
        self.lease_released += 1
        telemetry.counter("store.lease_released")

    def lease_owner(self, key: str) -> Optional[str]:
        """The ``pid@host`` currently holding ``key``'s lease, if any."""
        try:
            with open(self._lease_path(key), "r", encoding="utf-8") as handle:
                return str(json.load(handle).get("owner"))
        except (OSError, json.JSONDecodeError):
            return None

    @staticmethod
    def _lease_epoch(path: str) -> int:
        """The fencing epoch in a lease file (0 for pre-epoch/garbled ones)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return int(json.load(handle).get("epoch", 0))
        except (OSError, ValueError, TypeError, json.JSONDecodeError):
            return 0

    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, int]:
        return {"records": len(self), "hits": self.hits, "misses": self.misses,
                "partial_probes": self.partial_probes, "puts": self.puts,
                "corrupt": self.corrupt, "torn_writes": self.torn_writes,
                "put_races": self.put_races,
                "lease_acquired": self.lease_acquired,
                "lease_contended": self.lease_contended,
                "lease_stolen": self.lease_stolen,
                "lease_released": self.lease_released,
                "fenced_puts": self.fenced_puts}
