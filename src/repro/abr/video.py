"""Video models: bitrate ladders and per-chunk size generation.

The paper adopts Pensieve's streaming configuration: 4-second chunks encoded
at the bitrate ladder {300, 750, 1200, 1850, 2850, 4300} kbps for the FCC and
Starlink evaluations, and an elevated ladder {1850, 2850, 4300, 12000, 24000,
53000} kbps (YouTube's recommended encoding settings) for the 4G and 5G
evaluations.  Because the original DASH encodes are not redistributable, chunk
sizes are modelled as variable-bitrate (VBR) encodes: each chunk's size is the
nominal ``bitrate x duration`` with seedable log-normal variation that is
*correlated across bitrates* within a chunk (the same scene complexity affects
every rendition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "BITRATE_LADDERS_KBPS",
    "STANDARD_LADDER_KBPS",
    "HIGH_LADDER_KBPS",
    "CHUNK_DURATION_S",
    "DEFAULT_CHUNK_COUNT",
    "Video",
    "synthetic_video",
]

#: Pensieve's original bitrate ladder (kbps), used for FCC and Starlink.
STANDARD_LADDER_KBPS: tuple[int, ...] = (300, 750, 1200, 1850, 2850, 4300)

#: Elevated ladder for high-bandwidth 4G/5G environments (YouTube settings).
HIGH_LADDER_KBPS: tuple[int, ...] = (1850, 2850, 4300, 12000, 24000, 53000)

BITRATE_LADDERS_KBPS = {
    "standard": STANDARD_LADDER_KBPS,
    "high": HIGH_LADDER_KBPS,
}

#: Pensieve streams 4-second chunks.
CHUNK_DURATION_S: float = 4.0

#: The reference video in Pensieve ("EnvivioDash3") has 48 chunks (~3.2 min).
DEFAULT_CHUNK_COUNT: int = 48


@dataclass
class Video:
    """A chunked video: one size per (chunk, bitrate) pair.

    Attributes:
        bitrates_kbps: The bitrate ladder, ascending.
        chunk_sizes_bytes: Array of shape ``(num_chunks, num_bitrates)``.
        chunk_duration_s: Playback duration of each chunk.
        name: Identifier for logs.
    """

    bitrates_kbps: Sequence[int]
    chunk_sizes_bytes: np.ndarray
    chunk_duration_s: float = CHUNK_DURATION_S
    name: str = "video"

    def __post_init__(self) -> None:
        self.bitrates_kbps = tuple(int(b) for b in self.bitrates_kbps)
        self.chunk_sizes_bytes = np.asarray(self.chunk_sizes_bytes, dtype=np.float64)
        if self.chunk_sizes_bytes.ndim != 2:
            raise ValueError("chunk_sizes_bytes must be 2-D (chunks x bitrates)")
        if self.chunk_sizes_bytes.shape[1] != len(self.bitrates_kbps):
            raise ValueError("chunk size columns must match the bitrate ladder length")
        if list(self.bitrates_kbps) != sorted(self.bitrates_kbps):
            raise ValueError("bitrate ladder must be ascending")
        if np.any(self.chunk_sizes_bytes <= 0):
            raise ValueError("chunk sizes must be positive")
        if self.chunk_duration_s <= 0:
            raise ValueError("chunk duration must be positive")

    # ------------------------------------------------------------------ #
    @property
    def num_chunks(self) -> int:
        return int(self.chunk_sizes_bytes.shape[0])

    @property
    def num_bitrates(self) -> int:
        return len(self.bitrates_kbps)

    @property
    def bitrates_mbps(self) -> np.ndarray:
        return np.asarray(self.bitrates_kbps, dtype=np.float64) / 1000.0

    @property
    def duration_s(self) -> float:
        return self.num_chunks * self.chunk_duration_s

    def chunk_size(self, chunk_index: int, bitrate_index: int) -> float:
        """Size in bytes of chunk ``chunk_index`` at quality ``bitrate_index``."""
        if not 0 <= chunk_index < self.num_chunks:
            raise IndexError(f"chunk index {chunk_index} out of range")
        if not 0 <= bitrate_index < self.num_bitrates:
            raise IndexError(f"bitrate index {bitrate_index} out of range")
        return float(self.chunk_sizes_bytes[chunk_index, bitrate_index])

    def next_chunk_sizes(self, chunk_index: int) -> np.ndarray:
        """Sizes of chunk ``chunk_index`` at every bitrate (bytes)."""
        if not 0 <= chunk_index < self.num_chunks:
            raise IndexError(f"chunk index {chunk_index} out of range")
        return self.chunk_sizes_bytes[chunk_index].copy()


def synthetic_video(
    ladder: str | Sequence[int] = "standard",
    num_chunks: int = DEFAULT_CHUNK_COUNT,
    chunk_duration_s: float = CHUNK_DURATION_S,
    vbr_sigma: float = 0.15,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> Video:
    """Create a synthetic VBR video for a given bitrate ladder.

    Each chunk draws a scene-complexity multiplier shared across bitrates, plus
    small per-bitrate jitter, so higher-quality renditions of a complex scene
    are consistently larger — matching how real DASH encodes behave.

    Args:
        ladder: "standard", "high", or an explicit ascending list of kbps.
        num_chunks: number of chunks in the video.
        chunk_duration_s: chunk playback duration.
        vbr_sigma: log-normal sigma of the per-chunk complexity multiplier.
        seed: RNG seed for reproducible chunk sizes.
        name: optional video name.
    """
    if isinstance(ladder, str):
        key = ladder.lower()
        if key not in BITRATE_LADDERS_KBPS:
            raise KeyError(f"unknown ladder {ladder!r}; known: {list(BITRATE_LADDERS_KBPS)}")
        bitrates = BITRATE_LADDERS_KBPS[key]
        ladder_name = key
    else:
        bitrates = tuple(int(b) for b in ladder)
        ladder_name = "custom"
    if num_chunks < 1:
        raise ValueError("a video needs at least one chunk")

    rng = np.random.default_rng(seed)
    nominal_bytes = np.asarray(bitrates, dtype=np.float64) * 1000.0 * chunk_duration_s / 8.0
    complexity = rng.lognormal(mean=0.0, sigma=vbr_sigma, size=(num_chunks, 1))
    jitter = rng.lognormal(mean=0.0, sigma=vbr_sigma / 3.0, size=(num_chunks, len(bitrates)))
    sizes = nominal_bytes[None, :] * complexity * jitter
    return Video(
        bitrates_kbps=bitrates,
        chunk_sizes_bytes=sizes,
        chunk_duration_s=chunk_duration_s,
        name=name or f"synthetic-{ladder_name}-{num_chunks}chunks",
    )
