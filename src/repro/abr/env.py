"""Chunk-level ABR streaming simulator (re-implementation of Pensieve's env).

The simulator replays a bandwidth trace and models the download of video
chunks one at a time:

* downloading a chunk walks the trace segment by segment, consuming
  ``bandwidth x time x payload_fraction`` bytes per segment until the chunk is
  complete, then adds one link RTT;
* the playback buffer drains in real time during the download; if it empties,
  the difference is recorded as rebuffering time;
* each finished chunk adds ``chunk_duration`` seconds of video to the buffer;
* when the buffer exceeds the client's maximum (60 s, as in dash.js/Pensieve)
  the client pauses requests until it drains below the threshold.

On top of the raw simulator, :class:`StreamingSession` maintains the
observation histories that RL state functions consume and can run a full
video through any ABR policy, returning per-chunk records and QoE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..traces.base import Trace
from .qoe import LinearQoE, QoEMetric
from .video import Video

__all__ = [
    "SimulatorConfig",
    "ChunkStepResult",
    "ChunkLevelSimulator",
    "Observation",
    "ChunkRecord",
    "SessionResult",
    "StreamingSession",
    "run_session",
]

#: Length of the history window exposed to state functions (Pensieve's S_LEN).
HISTORY_LENGTH = 8


@dataclass(frozen=True)
class SimulatorConfig:
    """Tunable constants of the chunk-level simulator (Pensieve defaults)."""

    link_rtt_s: float = 0.08
    #: Fraction of raw link bytes that are HTTP payload (header overhead).
    payload_fraction: float = 0.95
    #: Client buffer capacity; above this the player pauses requests.
    max_buffer_s: float = 60.0
    #: Granularity of the pause-and-drain loop when the buffer is full.
    drain_sleep_s: float = 0.5
    #: Multiplicative noise applied to each chunk's effective bandwidth,
    #: modelling cross traffic the trace does not capture (0 disables it).
    bandwidth_noise_std: float = 0.0


@dataclass
class ChunkStepResult:
    """Outcome of downloading one chunk."""

    chunk_index: int
    bitrate_index: int
    chunk_size_bytes: float
    download_time_s: float
    throughput_mbps: float
    rebuffer_s: float
    sleep_s: float
    buffer_s: float
    remaining_chunks: int
    done: bool


class ChunkLevelSimulator:
    """Trace-driven chunk download simulator.

    The simulator is deliberately stateful in the same way Pensieve's is: the
    position inside the bandwidth trace persists across chunks, so a slow
    period affects consecutive downloads.
    """

    def __init__(self, video: Video, trace: Trace,
                 config: Optional[SimulatorConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.video = video
        self.trace = trace
        self.config = config or SimulatorConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.reset()

    # ------------------------------------------------------------------ #
    def reset(self, trace: Optional[Trace] = None,
              start_offset_s: Optional[float] = None) -> None:
        """Reset playback state; optionally switch to a new trace."""
        if trace is not None:
            self.trace = trace
        if start_offset_s is None:
            start_offset_s = 0.0
        self._time_in_trace_s = float(start_offset_s % max(self.trace.duration_s, 1e-9))
        self._buffer_s = 0.0
        self._next_chunk = 0

    @property
    def buffer_s(self) -> float:
        return self._buffer_s

    @property
    def next_chunk_index(self) -> int:
        return self._next_chunk

    @property
    def remaining_chunks(self) -> int:
        return self.video.num_chunks - self._next_chunk

    @property
    def finished(self) -> bool:
        return self._next_chunk >= self.video.num_chunks

    # ------------------------------------------------------------------ #
    def step(self, bitrate_index: int) -> ChunkStepResult:
        """Download the next chunk at ``bitrate_index`` and advance playback."""
        if self.finished:
            raise RuntimeError("all chunks have already been downloaded; call reset()")
        if not 0 <= bitrate_index < self.video.num_bitrates:
            raise IndexError(f"bitrate index {bitrate_index} out of range")

        chunk_index = self._next_chunk
        chunk_bytes = self.video.chunk_size(chunk_index, bitrate_index)
        noise = 1.0
        if self.config.bandwidth_noise_std > 0:
            noise = float(np.clip(
                self._rng.normal(1.0, self.config.bandwidth_noise_std), 0.3, 1.7))

        download_time = self._download(chunk_bytes, noise)
        download_time += self.config.link_rtt_s

        # Buffer drains during the download; any shortfall is rebuffering.
        rebuffer = max(download_time - self._buffer_s, 0.0)
        self._buffer_s = max(self._buffer_s - download_time, 0.0)
        self._buffer_s += self.video.chunk_duration_s

        # If the buffer exceeds the player's capacity, the client pauses
        # before requesting the next chunk; the pause advances trace time.
        sleep = 0.0
        if self._buffer_s > self.config.max_buffer_s:
            excess = self._buffer_s - self.config.max_buffer_s
            sleep = np.ceil(excess / self.config.drain_sleep_s) * self.config.drain_sleep_s
            self._buffer_s -= sleep
            self._advance_trace_time(sleep)

        throughput_mbps = (chunk_bytes * 8.0 / 1e6) / max(download_time, 1e-9)
        self._next_chunk += 1
        return ChunkStepResult(
            chunk_index=chunk_index,
            bitrate_index=bitrate_index,
            chunk_size_bytes=chunk_bytes,
            download_time_s=download_time,
            throughput_mbps=throughput_mbps,
            rebuffer_s=rebuffer,
            sleep_s=sleep,
            buffer_s=self._buffer_s,
            remaining_chunks=self.remaining_chunks,
            done=self.finished,
        )

    # ------------------------------------------------------------------ #
    def _download(self, chunk_bytes: float, noise: float) -> float:
        """Walk the trace until ``chunk_bytes`` have been transferred."""
        remaining = chunk_bytes
        elapsed = 0.0
        # Hard cap to guarantee termination even on pathological traces.
        max_iterations = 10_000_000
        for _ in range(max_iterations):
            mbps = self.trace.throughput_at(self._time_in_trace_s) * noise
            bytes_per_s = max(mbps, 1e-6) * 1e6 / 8.0 * self.config.payload_fraction
            segment_remaining = self._time_to_next_sample()
            capacity = bytes_per_s * segment_remaining
            if capacity >= remaining:
                used = remaining / bytes_per_s
                elapsed += used
                self._advance_trace_time(used)
                return elapsed
            remaining -= capacity
            elapsed += segment_remaining
            self._advance_trace_time(segment_remaining)
        raise RuntimeError("chunk download did not converge")  # pragma: no cover

    def _time_to_next_sample(self) -> float:
        """Seconds until the trace's next bandwidth sample (cyclically)."""
        times = self.trace.timestamps_s
        wrapped = (self._time_in_trace_s - times[0]) % self.trace.duration_s + times[0]
        index = int(np.searchsorted(times, wrapped, side="right"))
        if index >= len(times):
            next_time = times[-1]
        else:
            next_time = times[index]
        gap = float(next_time - wrapped)
        return max(gap, 1e-3)

    def _advance_trace_time(self, delta_s: float) -> None:
        self._time_in_trace_s = (self._time_in_trace_s + delta_s) % max(
            self.trace.duration_s, 1e-9)


# --------------------------------------------------------------------------- #
# Observation and session layer
# --------------------------------------------------------------------------- #
@dataclass
class Observation:
    """Everything an ABR policy may observe before choosing the next bitrate.

    All histories are ordered oldest-first and have exactly
    :data:`HISTORY_LENGTH` entries (zero-padded at the front early in a
    session), which is the contract generated state functions rely on.
    """

    bitrate_kbps_history: np.ndarray
    throughput_mbps_history: np.ndarray
    download_time_s_history: np.ndarray
    buffer_s_history: np.ndarray
    next_chunk_sizes_bytes: np.ndarray
    buffer_s: float
    remaining_chunks: int
    total_chunks: int
    last_bitrate_index: int
    bitrate_ladder_kbps: np.ndarray
    chunk_duration_s: float

    def copy(self) -> "Observation":
        return Observation(
            bitrate_kbps_history=self.bitrate_kbps_history.copy(),
            throughput_mbps_history=self.throughput_mbps_history.copy(),
            download_time_s_history=self.download_time_s_history.copy(),
            buffer_s_history=self.buffer_s_history.copy(),
            next_chunk_sizes_bytes=self.next_chunk_sizes_bytes.copy(),
            buffer_s=self.buffer_s,
            remaining_chunks=self.remaining_chunks,
            total_chunks=self.total_chunks,
            last_bitrate_index=self.last_bitrate_index,
            bitrate_ladder_kbps=self.bitrate_ladder_kbps.copy(),
            chunk_duration_s=self.chunk_duration_s,
        )


@dataclass
class ChunkRecord:
    """Per-chunk log entry produced by a streaming session."""

    chunk_index: int
    bitrate_index: int
    bitrate_kbps: int
    download_time_s: float
    throughput_mbps: float
    rebuffer_s: float
    buffer_s: float
    reward: float


@dataclass
class SessionResult:
    """Summary of a full streaming session."""

    records: List[ChunkRecord]
    trace_name: str
    video_name: str

    @property
    def num_chunks(self) -> int:
        return len(self.records)

    @property
    def total_reward(self) -> float:
        return float(sum(r.reward for r in self.records))

    @property
    def mean_reward(self) -> float:
        return self.total_reward / max(self.num_chunks, 1)

    @property
    def total_rebuffer_s(self) -> float:
        return float(sum(r.rebuffer_s for r in self.records))

    @property
    def mean_bitrate_kbps(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.bitrate_kbps for r in self.records]))

    @property
    def bitrate_switches(self) -> int:
        return int(sum(1 for a, b in zip(self.records, self.records[1:])
                       if a.bitrate_index != b.bitrate_index))


Policy = Callable[[Observation], int]


class StreamingSession:
    """Runs a video playback through the simulator, one decision at a time.

    By default the wait for the very first chunk is treated as *startup delay*
    rather than rebuffering when computing the QoE reward (as dash.js and QoE
    studies do); pass ``charge_startup_rebuffering=True`` to penalize it like
    any other stall.
    """

    def __init__(self, video: Video, trace: Trace,
                 qoe: Optional[QoEMetric] = None,
                 config: Optional[SimulatorConfig] = None,
                 initial_bitrate_index: int = 0,
                 rng: Optional[np.random.Generator] = None,
                 start_offset_s: Optional[float] = None,
                 charge_startup_rebuffering: bool = False) -> None:
        self.video = video
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.simulator = ChunkLevelSimulator(video, trace, config=config, rng=rng)
        if start_offset_s is not None:
            self.simulator.reset(start_offset_s=start_offset_s)
        self.initial_bitrate_index = initial_bitrate_index
        self.charge_startup_rebuffering = charge_startup_rebuffering
        self._last_bitrate_index = initial_bitrate_index
        self._previous_bitrate_for_qoe: Optional[int] = None
        self._history_len = HISTORY_LENGTH
        self._bitrate_history = np.zeros(self._history_len)
        self._throughput_history = np.zeros(self._history_len)
        self._download_time_history = np.zeros(self._history_len)
        self._buffer_history = np.zeros(self._history_len)
        self.records: List[ChunkRecord] = []

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self.simulator.finished

    def observe(self) -> Observation:
        """Build the observation for the next bitrate decision."""
        if self.done:
            raise RuntimeError("session is finished")
        next_sizes = self.video.next_chunk_sizes(self.simulator.next_chunk_index)
        return Observation(
            bitrate_kbps_history=self._bitrate_history.copy(),
            throughput_mbps_history=self._throughput_history.copy(),
            download_time_s_history=self._download_time_history.copy(),
            buffer_s_history=self._buffer_history.copy(),
            next_chunk_sizes_bytes=next_sizes,
            buffer_s=self.simulator.buffer_s,
            remaining_chunks=self.simulator.remaining_chunks,
            total_chunks=self.video.num_chunks,
            last_bitrate_index=self._last_bitrate_index,
            bitrate_ladder_kbps=np.asarray(self.video.bitrates_kbps, dtype=np.float64),
            chunk_duration_s=self.video.chunk_duration_s,
        )

    def step(self, bitrate_index: int) -> tuple[ChunkRecord, bool]:
        """Download the next chunk at ``bitrate_index``; returns (record, done)."""
        is_first_chunk = self.simulator.next_chunk_index == 0
        result = self.simulator.step(bitrate_index)
        rebuffer_for_qoe = result.rebuffer_s
        if is_first_chunk and not self.charge_startup_rebuffering:
            # The wait before playback begins is startup delay, not a stall.
            rebuffer_for_qoe = 0.0
        reward = self.qoe.chunk_reward(bitrate_index, rebuffer_for_qoe,
                                       self._previous_bitrate_for_qoe)
        record = ChunkRecord(
            chunk_index=result.chunk_index,
            bitrate_index=bitrate_index,
            bitrate_kbps=self.video.bitrates_kbps[bitrate_index],
            download_time_s=result.download_time_s,
            throughput_mbps=result.throughput_mbps,
            rebuffer_s=result.rebuffer_s,
            buffer_s=result.buffer_s,
            reward=reward,
        )
        self.records.append(record)
        self._previous_bitrate_for_qoe = bitrate_index
        self._last_bitrate_index = bitrate_index
        self._push_history(self._bitrate_history, self.video.bitrates_kbps[bitrate_index])
        self._push_history(self._throughput_history, result.throughput_mbps)
        self._push_history(self._download_time_history, result.download_time_s)
        self._push_history(self._buffer_history, result.buffer_s)
        return record, result.done

    def result(self) -> SessionResult:
        return SessionResult(records=list(self.records),
                             trace_name=self.simulator.trace.name,
                             video_name=self.video.name)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _push_history(history: np.ndarray, value: float) -> None:
        history[:-1] = history[1:]
        history[-1] = value


def run_session(policy: Policy, video: Video, trace: Trace,
                qoe: Optional[QoEMetric] = None,
                config: Optional[SimulatorConfig] = None,
                rng: Optional[np.random.Generator] = None,
                start_offset_s: Optional[float] = None) -> SessionResult:
    """Stream the whole video with ``policy`` and return the session summary."""
    session = StreamingSession(video, trace, qoe=qoe, config=config, rng=rng,
                               start_offset_s=start_offset_s)
    while not session.done:
        observation = session.observe()
        action = int(policy(observation))
        session.step(action)
    return session.result()
