"""Chunk-level ABR streaming simulator (re-implementation of Pensieve's env).

The simulator replays a bandwidth trace and models the download of video
chunks one at a time:

* downloading a chunk walks the trace segment by segment, consuming
  ``bandwidth x time x payload_fraction`` bytes per segment until the chunk is
  complete, then adds one link RTT;
* the playback buffer drains in real time during the download; if it empties,
  the difference is recorded as rebuffering time;
* each finished chunk adds ``chunk_duration`` seconds of video to the buffer;
* when the buffer exceeds the client's maximum (60 s, as in dash.js/Pensieve)
  the client pauses requests until it drains below the threshold.

On top of the raw simulator, :class:`StreamingSession` maintains the
observation histories that RL state functions consume and can run a full
video through any ABR policy, returning per-chunk records and QoE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..traces.base import Trace
from .qoe import LinearQoE, QoEMetric
from .video import Video

__all__ = [
    "SimulatorConfig",
    "ChunkStepResult",
    "ChunkLevelSimulator",
    "Observation",
    "ChunkRecord",
    "SessionResult",
    "StreamingSession",
    "run_session",
]

#: Length of the history window exposed to state functions (Pensieve's S_LEN).
HISTORY_LENGTH = 8


#: Minimum effective throughput (Mbit/s) credited to any trace segment; this
#: floor guarantees every download terminates in bounded (simulated) time.
MIN_THROUGHPUT_MBPS = 1e-6


@dataclass(frozen=True)
class SimulatorConfig:
    """Tunable constants of the chunk-level simulator (Pensieve defaults)."""

    link_rtt_s: float = 0.08
    #: Fraction of raw link bytes that are HTTP payload (header overhead).
    payload_fraction: float = 0.95
    #: Client buffer capacity; above this the player pauses requests.
    max_buffer_s: float = 60.0
    #: Granularity of the pause-and-drain loop when the buffer is full.
    drain_sleep_s: float = 0.5
    #: Multiplicative noise applied to each chunk's effective bandwidth,
    #: modelling cross traffic the trace does not capture (0 disables it).
    bandwidth_noise_std: float = 0.0
    #: How chunk downloads are resolved against the trace: "prefix_sum"
    #: (default) binary-searches precomputed capacity prefix sums in
    #: O(log n); "segment_walk" replays the original per-segment loop.  The
    #: two agree to float round-off (see the equivalence tests).
    download_engine: str = "prefix_sum"


@dataclass
class ChunkStepResult:
    """Outcome of downloading one chunk."""

    chunk_index: int
    bitrate_index: int
    chunk_size_bytes: float
    download_time_s: float
    throughput_mbps: float
    rebuffer_s: float
    sleep_s: float
    buffer_s: float
    remaining_chunks: int
    done: bool


class ChunkLevelSimulator:
    """Trace-driven chunk download simulator.

    The simulator is deliberately stateful in the same way Pensieve's is: the
    position inside the bandwidth trace persists across chunks, so a slow
    period affects consecutive downloads.
    """

    def __init__(self, video: Video, trace: Trace,
                 config: Optional[SimulatorConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.video = video
        self.trace = trace
        self.config = config or SimulatorConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.reset()

    # ------------------------------------------------------------------ #
    def reset(self, trace: Optional[Trace] = None,
              start_offset_s: Optional[float] = None) -> None:
        """Reset playback state; optionally switch to a new trace."""
        if trace is not None:
            self.trace = trace
        if start_offset_s is None:
            start_offset_s = 0.0
        self._time_in_trace_s = float(start_offset_s % max(self.trace.duration_s, 1e-9))
        self._buffer_s = 0.0
        self._next_chunk = 0

    @property
    def buffer_s(self) -> float:
        return self._buffer_s

    @property
    def next_chunk_index(self) -> int:
        return self._next_chunk

    @property
    def remaining_chunks(self) -> int:
        return self.video.num_chunks - self._next_chunk

    @property
    def finished(self) -> bool:
        return self._next_chunk >= self.video.num_chunks

    # ------------------------------------------------------------------ #
    def step(self, bitrate_index: int) -> ChunkStepResult:
        """Download the next chunk at ``bitrate_index`` and advance playback."""
        if self.finished:
            raise RuntimeError("all chunks have already been downloaded; call reset()")
        if not 0 <= bitrate_index < self.video.num_bitrates:
            raise IndexError(f"bitrate index {bitrate_index} out of range")

        chunk_index = self._next_chunk
        chunk_bytes = self.video.chunk_size(chunk_index, bitrate_index)
        noise = 1.0
        if self.config.bandwidth_noise_std > 0:
            noise = float(np.clip(
                self._rng.normal(1.0, self.config.bandwidth_noise_std), 0.3, 1.7))

        download_time = self._download(chunk_bytes, noise)
        download_time += self.config.link_rtt_s

        # Buffer drains during the download; any shortfall is rebuffering.
        rebuffer = max(download_time - self._buffer_s, 0.0)
        self._buffer_s = max(self._buffer_s - download_time, 0.0)
        self._buffer_s += self.video.chunk_duration_s

        # If the buffer exceeds the player's capacity, the client pauses
        # before requesting the next chunk; the pause advances trace time.
        sleep = 0.0
        if self._buffer_s > self.config.max_buffer_s:
            excess = self._buffer_s - self.config.max_buffer_s
            sleep = np.ceil(excess / self.config.drain_sleep_s) * self.config.drain_sleep_s
            self._buffer_s -= sleep
            self._advance_trace_time(sleep)

        throughput_mbps = (chunk_bytes * 8.0 / 1e6) / max(download_time, 1e-9)
        self._next_chunk += 1
        return ChunkStepResult(
            chunk_index=chunk_index,
            bitrate_index=bitrate_index,
            chunk_size_bytes=chunk_bytes,
            download_time_s=download_time,
            throughput_mbps=throughput_mbps,
            rebuffer_s=rebuffer,
            sleep_s=sleep,
            buffer_s=self._buffer_s,
            remaining_chunks=self.remaining_chunks,
            done=self.finished,
        )

    # ------------------------------------------------------------------ #
    def _download(self, chunk_bytes: float, noise: float) -> float:
        """Resolve the transfer of ``chunk_bytes`` against the trace.

        Dispatches on ``config.download_engine``: the prefix-sum engine is the
        O(log n) fast path, the segment walk is the loop-based reference
        implementation the equivalence tests compare against.
        """
        engine = self.config.download_engine
        if engine == "prefix_sum":
            return self._download_prefix_sum(chunk_bytes, noise)
        if engine == "segment_walk":
            return self._download_segment_walk(chunk_bytes, noise)
        raise ValueError(f"unknown download engine {engine!r}")

    def _required_rate_seconds(self, chunk_bytes: float, noise: float) -> float:
        """Convert a chunk size to required Mbit of (floored) link capacity.

        The segment loop consumes ``max(mbps * noise, MIN) * 1e6/8 * payload``
        bytes per second; dividing the chunk size by the constant factor turns
        the problem into 'integrate the floored throughput until it reaches R'.
        """
        bytes_per_rate_second = 1e6 / 8.0 * self.config.payload_fraction
        return chunk_bytes / bytes_per_rate_second

    def _download_prefix_sum(self, chunk_bytes: float, noise: float) -> float:
        """Resolve a download via binary search on capacity prefix sums."""
        trace = self.trace
        times = trace.timestamps_s
        duration = trace.duration_s
        # max(r * noise, MIN) == noise * max(r, MIN / noise): the floor is
        # folded into the cached per-trace prefix, the noise into a scalar.
        floor = MIN_THROUGHPUT_MBPS / noise
        cumulative, rates = trace.capacity_prefix(floor)
        cycle_capacity = float(cumulative[-1]) * noise
        required = self._required_rate_seconds(chunk_bytes, noise)

        # Position within the replay cycle, relative to the first timestamp.
        rel = (self._time_in_trace_s - float(times[0])) % duration
        rel_times = trace.relative_times_s
        index = int(np.searchsorted(rel_times, rel, side="right")) - 1
        index = max(0, min(index, len(rates) - 1))
        consumed = (float(cumulative[index])
                    + float(rates[index]) * (rel - float(rel_times[index]))) * noise
        to_cycle_end = cycle_capacity - consumed

        if required <= to_cycle_end:
            whole_cycles = 0
            target = (consumed + required) / noise
            elapsed_base = -rel
        else:
            spill = required - to_cycle_end
            whole_cycles = int(spill // cycle_capacity)
            target = (spill - whole_cycles * cycle_capacity) / noise
            elapsed_base = (duration - rel) + whole_cycles * duration
            if target >= float(cumulative[-1]):
                # Float round-off pushed the remainder past one more cycle.
                target -= float(cumulative[-1])
                elapsed_base += duration

        j = int(np.searchsorted(cumulative, target, side="right")) - 1
        j = max(0, min(j, len(rates) - 1))
        finish = float(rel_times[j]) + (target - float(cumulative[j])) / float(rates[j])
        elapsed = elapsed_base + finish
        # Round-off guard: a download always takes positive time.
        elapsed = max(elapsed, 1e-12)
        self._advance_trace_time(elapsed)
        return elapsed

    #: Refuse to walk more than this many segments for a single chunk: a
    #: larger exact bound means the download is infeasible on any realistic
    #: timescale (the prefix-sum engine resolves the same download in O(log n)
    #: either way).
    MAX_WALK_ITERATIONS = 10_000_000

    def _download_segment_walk(self, chunk_bytes: float, noise: float) -> float:
        """Walk the trace segment by segment until the chunk is transferred.

        The iteration bound is exact rather than a magic constant: each pass
        over the replay cycle takes at most ``len(trace) - 1`` iterations and
        delivers at least the cycle's floored capacity, so the number of
        cycles needed is ``required / cycle_capacity``.  A bound beyond
        :data:`MAX_WALK_ITERATIONS` fails fast with a descriptive error
        instead of looping for minutes first.
        """
        remaining = chunk_bytes
        elapsed = 0.0
        floor = MIN_THROUGHPUT_MBPS / noise
        cumulative, _ = self.trace.capacity_prefix(floor)
        cycle_capacity = float(cumulative[-1]) * noise
        required = self._required_rate_seconds(chunk_bytes, noise)
        segments_per_cycle = max(len(self.trace) - 1, 1)
        cycles_needed = required / cycle_capacity
        max_iterations = int(np.ceil(cycles_needed + 2.0)) * segments_per_cycle
        if max_iterations > self.MAX_WALK_ITERATIONS:
            raise RuntimeError(
                f"download of {chunk_bytes:.0f} bytes on trace "
                f"{self.trace.name!r} would walk {max_iterations} segments "
                f"({cycles_needed:.0f} replay cycles of {cycle_capacity:.6g} "
                f"Mbit); the link is effectively dead — refusing to iterate "
                f"past {self.MAX_WALK_ITERATIONS}")
        for _ in range(max_iterations):
            raw_mbps, segment_remaining = self._segment_view()
            bytes_per_s = (max(raw_mbps * noise, MIN_THROUGHPUT_MBPS)
                           * 1e6 / 8.0 * self.config.payload_fraction)
            capacity = bytes_per_s * segment_remaining
            if capacity >= remaining:
                used = remaining / bytes_per_s
                elapsed += used
                self._advance_trace_time(used)
                return elapsed
            remaining -= capacity
            elapsed += segment_remaining
            self._advance_trace_time(segment_remaining)
        raise RuntimeError(
            f"download of {chunk_bytes:.0f} bytes did not terminate on trace "
            f"{self.trace.name!r} within {max_iterations} iterations "
            f"({segments_per_cycle} segments/cycle, {cycles_needed:.1f} cycles "
            f"of {cycle_capacity:.6g} Mbit needed)")

    def _segment_view(self) -> tuple:
        """Current segment's ``(throughput_mbps, seconds_to_next_sample)``.

        When modular arithmetic leaves the position a float round-off short of
        a sample boundary, the view snaps forward to the boundary so the walk
        integrates the trace exactly instead of charging phantom time at the
        previous segment's rate.
        """
        trace = self.trace
        times = trace.timestamps_s
        wrapped = (self._time_in_trace_s - times[0]) % trace.duration_s + times[0]
        index = int(np.searchsorted(times, wrapped, side="right")) - 1
        index = max(0, min(index, len(times) - 2))
        gap = float(times[index + 1] - wrapped)
        if gap <= 1e-9:
            # Effectively sitting on the next sample already.
            index += 1
            if index >= len(times) - 1:
                index = 0
            gap = float(times[index + 1] - times[index])
        return float(trace.throughputs_mbps[index]), gap

    def _advance_trace_time(self, delta_s: float) -> None:
        self._time_in_trace_s = (self._time_in_trace_s + delta_s) % max(
            self.trace.duration_s, 1e-9)


# --------------------------------------------------------------------------- #
# Observation and session layer
# --------------------------------------------------------------------------- #
@dataclass
class Observation:
    """Everything an ABR policy may observe before choosing the next bitrate.

    All histories are ordered oldest-first and have exactly
    :data:`HISTORY_LENGTH` entries (zero-padded at the front early in a
    session), which is the contract generated state functions rely on.
    """

    bitrate_kbps_history: np.ndarray
    throughput_mbps_history: np.ndarray
    download_time_s_history: np.ndarray
    buffer_s_history: np.ndarray
    next_chunk_sizes_bytes: np.ndarray
    buffer_s: float
    remaining_chunks: int
    total_chunks: int
    last_bitrate_index: int
    bitrate_ladder_kbps: np.ndarray
    chunk_duration_s: float

    def copy(self) -> "Observation":
        return Observation(
            bitrate_kbps_history=self.bitrate_kbps_history.copy(),
            throughput_mbps_history=self.throughput_mbps_history.copy(),
            download_time_s_history=self.download_time_s_history.copy(),
            buffer_s_history=self.buffer_s_history.copy(),
            next_chunk_sizes_bytes=self.next_chunk_sizes_bytes.copy(),
            buffer_s=self.buffer_s,
            remaining_chunks=self.remaining_chunks,
            total_chunks=self.total_chunks,
            last_bitrate_index=self.last_bitrate_index,
            bitrate_ladder_kbps=self.bitrate_ladder_kbps.copy(),
            chunk_duration_s=self.chunk_duration_s,
        )


@dataclass
class ChunkRecord:
    """Per-chunk log entry produced by a streaming session."""

    chunk_index: int
    bitrate_index: int
    bitrate_kbps: int
    download_time_s: float
    throughput_mbps: float
    rebuffer_s: float
    buffer_s: float
    reward: float


@dataclass
class SessionResult:
    """Summary of a full streaming session."""

    records: List[ChunkRecord]
    trace_name: str
    video_name: str

    @property
    def num_chunks(self) -> int:
        return len(self.records)

    @property
    def total_reward(self) -> float:
        return float(sum(r.reward for r in self.records))

    @property
    def mean_reward(self) -> float:
        return self.total_reward / max(self.num_chunks, 1)

    @property
    def total_rebuffer_s(self) -> float:
        return float(sum(r.rebuffer_s for r in self.records))

    @property
    def mean_bitrate_kbps(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.bitrate_kbps for r in self.records]))

    @property
    def bitrate_switches(self) -> int:
        return int(sum(1 for a, b in zip(self.records, self.records[1:])
                       if a.bitrate_index != b.bitrate_index))


Policy = Callable[[Observation], int]


class StreamingSession:
    """Runs a video playback through the simulator, one decision at a time.

    By default the wait for the very first chunk is treated as *startup delay*
    rather than rebuffering when computing the QoE reward (as dash.js and QoE
    studies do); pass ``charge_startup_rebuffering=True`` to penalize it like
    any other stall.
    """

    def __init__(self, video: Video, trace: Trace,
                 qoe: Optional[QoEMetric] = None,
                 config: Optional[SimulatorConfig] = None,
                 initial_bitrate_index: int = 0,
                 rng: Optional[np.random.Generator] = None,
                 start_offset_s: Optional[float] = None,
                 charge_startup_rebuffering: bool = False) -> None:
        self.video = video
        self.qoe = qoe or LinearQoE(video.bitrates_kbps)
        self.simulator = ChunkLevelSimulator(video, trace, config=config, rng=rng)
        if start_offset_s is not None:
            self.simulator.reset(start_offset_s=start_offset_s)
        self.initial_bitrate_index = initial_bitrate_index
        self.charge_startup_rebuffering = charge_startup_rebuffering
        self._last_bitrate_index = initial_bitrate_index
        self._previous_bitrate_for_qoe: Optional[int] = None
        self._history_len = HISTORY_LENGTH
        self._bitrate_history = np.zeros(self._history_len)
        self._throughput_history = np.zeros(self._history_len)
        self._download_time_history = np.zeros(self._history_len)
        self._buffer_history = np.zeros(self._history_len)
        self._ladder_kbps = np.asarray(self.video.bitrates_kbps, dtype=np.float64)
        self.records: List[ChunkRecord] = []

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self.simulator.finished

    @property
    def history_arrays(self):
        """Read-only views of the four observation histories (oldest first).

        Returns ``(bitrate_kbps, throughput_mbps, download_time_s,
        buffer_s)`` — the live arrays backing :meth:`observe`'s defensive
        copies.  The multi-seed lockstep engine stacks these directly when
        batching state computation across sessions; callers must not mutate
        them.
        """
        return (self._bitrate_history, self._throughput_history,
                self._download_time_history, self._buffer_history)

    def observe(self) -> Observation:
        """Build the observation for the next bitrate decision."""
        if self.done:
            raise RuntimeError("session is finished")
        next_sizes = self.video.next_chunk_sizes(self.simulator.next_chunk_index)
        return Observation(
            bitrate_kbps_history=self._bitrate_history.copy(),
            throughput_mbps_history=self._throughput_history.copy(),
            download_time_s_history=self._download_time_history.copy(),
            buffer_s_history=self._buffer_history.copy(),
            next_chunk_sizes_bytes=next_sizes,
            buffer_s=self.simulator.buffer_s,
            remaining_chunks=self.simulator.remaining_chunks,
            total_chunks=self.video.num_chunks,
            last_bitrate_index=self._last_bitrate_index,
            bitrate_ladder_kbps=self._ladder_kbps.copy(),
            chunk_duration_s=self.video.chunk_duration_s,
        )

    def step(self, bitrate_index: int) -> tuple[ChunkRecord, bool]:
        """Download the next chunk at ``bitrate_index``; returns (record, done)."""
        is_first_chunk = self.simulator.next_chunk_index == 0
        result = self.simulator.step(bitrate_index)
        rebuffer_for_qoe = result.rebuffer_s
        if is_first_chunk and not self.charge_startup_rebuffering:
            # The wait before playback begins is startup delay, not a stall.
            rebuffer_for_qoe = 0.0
        reward = self.qoe.chunk_reward(bitrate_index, rebuffer_for_qoe,
                                       self._previous_bitrate_for_qoe)
        record = ChunkRecord(
            chunk_index=result.chunk_index,
            bitrate_index=bitrate_index,
            bitrate_kbps=self.video.bitrates_kbps[bitrate_index],
            download_time_s=result.download_time_s,
            throughput_mbps=result.throughput_mbps,
            rebuffer_s=result.rebuffer_s,
            buffer_s=result.buffer_s,
            reward=reward,
        )
        self.records.append(record)
        self._previous_bitrate_for_qoe = bitrate_index
        self._last_bitrate_index = bitrate_index
        self._push_history(self._bitrate_history, self.video.bitrates_kbps[bitrate_index])
        self._push_history(self._throughput_history, result.throughput_mbps)
        self._push_history(self._download_time_history, result.download_time_s)
        self._push_history(self._buffer_history, result.buffer_s)
        return record, result.done

    def result(self) -> SessionResult:
        return SessionResult(records=list(self.records),
                             trace_name=self.simulator.trace.name,
                             video_name=self.video.name)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _push_history(history: np.ndarray, value: float) -> None:
        history[:-1] = history[1:]
        history[-1] = value


def run_session(policy: Policy, video: Video, trace: Trace,
                qoe: Optional[QoEMetric] = None,
                config: Optional[SimulatorConfig] = None,
                rng: Optional[np.random.Generator] = None,
                start_offset_s: Optional[float] = None) -> SessionResult:
    """Stream the whole video with ``policy`` and return the session summary."""
    session = StreamingSession(video, trace, qoe=qoe, config=config, rng=rng,
                               start_offset_s=start_offset_s)
    while not session.done:
        observation = session.observe()
        action = int(policy(observation))
        session.step(action)
    return session.result()
