"""Actor-critic network architectures for ABR.

Defines the **network-builder contract** shared by the original Pensieve
architecture and LLM-generated alternatives: a builder is a callable

    build_network(state_shape, num_actions, rng=None) -> Module

returning a :class:`~repro.nn.layers.Module` whose ``forward(states)`` yields
a ``(policy_logits, value)`` pair for a batch of states.

The original architecture (Figure 2 of the paper) processes each state row
with either a small dense layer (scalar-like rows) or a 1-D convolution
(temporal rows), merges the resulting feature maps, and feeds separate actor
and critic heads.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = [
    "NETWORK_BUILDER_NAME",
    "ORIGINAL_NETWORK_SOURCE",
    "ActorCriticNetwork",
    "PensieveNetwork",
    "GenericActorCritic",
    "original_network_builder",
    "NetworkBuilder",
]

#: Name the generated code block must define.
NETWORK_BUILDER_NAME = "build_network"

NetworkBuilder = Callable[..., "ActorCriticNetwork"]


class ActorCriticNetwork(nn.Module):
    """Base class for ABR actor-critic networks.

    ``forward`` takes a batch of states shaped ``(batch, *state_shape)`` and
    returns ``(logits, value)`` where ``logits`` has shape
    ``(batch, num_actions)`` and ``value`` has shape ``(batch,)``.
    """

    def __init__(self, state_shape: Tuple[int, ...], num_actions: int) -> None:
        super().__init__()
        self.state_shape = tuple(int(s) for s in state_shape)
        self.num_actions = int(num_actions)

    def forward(self, states: Tensor) -> Tuple[Tensor, Tensor]:  # pragma: no cover
        raise NotImplementedError

    # Convenience helpers used by the RL agent --------------------------------
    def policy(self, states: Tensor) -> Tensor:
        """Action probabilities for a batch of states."""
        logits, _ = self.forward(states)
        return logits.softmax(axis=-1)

    def value(self, states: Tensor) -> Tensor:
        """State-value estimates for a batch of states."""
        _, value = self.forward(states)
        return value


class PensieveNetwork(ActorCriticNetwork):
    """The original Pensieve actor-critic architecture.

    Scalar-like rows of the state matrix go through per-row dense layers,
    temporal rows through per-row 1-D convolutions; the concatenated features
    feed a shared trunk-free pair of actor/critic towers, exactly mirroring
    the layout in Figure 2 of the paper.
    """

    DEFAULT_TEMPORAL_ROWS = (2, 3, 4)
    DEFAULT_SCALAR_ROWS = (0, 1, 5)

    def __init__(self, state_shape: Tuple[int, ...], num_actions: int,
                 hidden_size: int = 128, kernel_size: int = 4,
                 activation: str = "relu",
                 temporal_rows: Optional[Sequence[int]] = None,
                 scalar_rows: Optional[Sequence[int]] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(state_shape, num_actions)
        if len(self.state_shape) == 1:
            # Flat state: treat everything as scalar features.
            rows = self.state_shape[0]
            history = 1
            temporal_rows = []
            scalar_rows = list(range(rows))
        else:
            rows, history = self.state_shape
            if temporal_rows is None or scalar_rows is None:
                if rows == 6 and history >= kernel_size:
                    temporal_rows = list(self.DEFAULT_TEMPORAL_ROWS)
                    scalar_rows = list(self.DEFAULT_SCALAR_ROWS)
                elif history >= kernel_size:
                    temporal_rows = list(range(rows))
                    scalar_rows = []
                else:
                    temporal_rows = []
                    scalar_rows = list(range(rows))
        self.temporal_rows = tuple(temporal_rows)
        self.scalar_rows = tuple(scalar_rows)
        self.hidden_size = hidden_size
        self.kernel_size = kernel_size
        self.activation = activation
        self._history = history

        filters = hidden_size
        self.conv_branches = [
            nn.Conv1D(1, filters, kernel_size, activation=activation, rng=rng)
            for _ in self.temporal_rows
        ]
        self.scalar_branches = [
            nn.Dense(1, hidden_size, activation=activation, rng=rng)
            for _ in self.scalar_rows
        ]
        conv_positions = max(history - kernel_size + 1, 1)
        merged = (len(self.temporal_rows) * filters * conv_positions
                  + len(self.scalar_rows) * hidden_size)
        self.actor_hidden = nn.Dense(merged, hidden_size, activation=activation, rng=rng)
        self.actor_out = nn.Dense(hidden_size, num_actions, rng=rng)
        self.critic_hidden = nn.Dense(merged, hidden_size, activation=activation, rng=rng)
        self.critic_out = nn.Dense(hidden_size, 1, rng=rng)

    def forward(self, states: Tensor) -> Tuple[Tensor, Tensor]:
        if states.ndim == 2 and len(self.state_shape) == 2:
            states = states.reshape(1, *self.state_shape)
        if states.ndim == 1:
            states = states.reshape(1, -1)
        batch = states.shape[0]
        features = []
        if len(self.state_shape) == 1:
            for branch, row in zip(self.scalar_branches, self.scalar_rows):
                features.append(branch(states[:, row:row + 1]))
        else:
            for branch, row in zip(self.conv_branches, self.temporal_rows):
                row_input = states[:, row:row + 1, :]
                conv_out = branch(row_input)
                features.append(conv_out.reshape(batch, -1))
            for branch, row in zip(self.scalar_branches, self.scalar_rows):
                scalar = states[:, row, -1:].reshape(batch, 1)
                features.append(branch(scalar))
        merged = nn.concatenate(features, axis=1)
        logits = self.actor_out(self.actor_hidden(merged))
        value = self.critic_out(self.critic_hidden(merged)).reshape(batch)
        return logits, value


class GenericActorCritic(ActorCriticNetwork):
    """A generic architecture handling arbitrary state shapes.

    Used as the fallback for generated states whose shapes differ from the
    original 6x8 matrix and as the skeleton that generated architecture code
    commonly produces (dense trunk, optional recurrent encoder, separate or
    shared heads).
    """

    def __init__(self, state_shape: Tuple[int, ...], num_actions: int,
                 hidden_sizes: Sequence[int] = (128, 128),
                 activation: str = "relu",
                 encoder: str = "flatten",
                 share_trunk: bool = False,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(state_shape, num_actions)
        if len(self.state_shape) == 1:
            # Recurrent/convolutional encoders need a (channels, history)
            # layout; flat states always use the dense path.
            encoder = "flatten"
        self.encoder_kind = encoder
        self.share_trunk = share_trunk
        flat_size = int(np.prod(self.state_shape))

        if encoder == "flatten":
            self.encoder = nn.Flatten()
            encoded = flat_size
        elif encoder in ("rnn", "gru", "lstm"):
            channels = self.state_shape[0]
            hidden = hidden_sizes[0]
            self.encoder = nn.Recurrent(channels, hidden, cell_type=encoder, rng=rng)
            encoded = hidden
        elif encoder == "conv":
            channels, history = self.state_shape
            kernel = min(4, history)
            self.encoder = nn.Conv1D(channels, hidden_sizes[0], kernel,
                                     activation=activation, rng=rng)
            encoded = hidden_sizes[0] * (history - kernel + 1)
        else:
            raise ValueError(f"unknown encoder {encoder!r}")

        def make_trunk() -> nn.Sequential:
            layers = []
            size = encoded
            for width in hidden_sizes:
                layers.append(nn.Dense(size, width, activation=activation, rng=rng))
                size = width
            return nn.Sequential(*layers)

        if share_trunk:
            self.trunk = make_trunk()
            self.actor_trunk = self.trunk
            self.critic_trunk = self.trunk
        else:
            self.actor_trunk = make_trunk()
            self.critic_trunk = make_trunk()
        self.actor_out = nn.Dense(hidden_sizes[-1], num_actions, rng=rng)
        self.critic_out = nn.Dense(hidden_sizes[-1], 1, rng=rng)

    def _encode(self, states: Tensor) -> Tensor:
        batch = states.shape[0]
        if self.encoder_kind in ("rnn", "gru", "lstm"):
            return self.encoder(states)
        if self.encoder_kind == "conv":
            return self.encoder(states).reshape(batch, -1)
        return states.reshape(batch, -1)

    def forward(self, states: Tensor) -> Tuple[Tensor, Tensor]:
        if states.ndim == len(self.state_shape):
            states = states.reshape(1, *self.state_shape)
        batch = states.shape[0]
        encoded = self._encode(states)
        logits = self.actor_out(self.actor_trunk(encoded))
        value = self.critic_out(self.critic_trunk(encoded)).reshape(batch)
        return logits, value


def original_network_builder(state_shape: Tuple[int, ...], num_actions: int,
                             rng: Optional[np.random.Generator] = None,
                             ) -> ActorCriticNetwork:
    """Build the original Pensieve architecture for ``state_shape``.

    Falls back to :class:`GenericActorCritic` when the state is not the
    canonical 6-row matrix (e.g. when pairing the original network with an
    LLM-generated state of a different shape, as in the Table 5 grid).
    """
    shape = tuple(int(s) for s in state_shape)
    if len(shape) == 2 and shape[0] == 6 and shape[1] >= 4:
        return PensieveNetwork(shape, num_actions, rng=rng)
    if len(shape) == 2 and shape[1] >= 4:
        return PensieveNetwork(shape, num_actions, rng=rng)
    return GenericActorCritic(shape, num_actions, rng=rng)


#: Source code of the original network builder, used as the seed code block in
#: architecture-generation prompts.
ORIGINAL_NETWORK_SOURCE = '''
import numpy as np


def build_network(state_shape, num_actions, rng=None):
    """Original Pensieve actor-critic: per-row conv/dense branches, 128 units."""
    return nn_library.PensieveNetwork(
        state_shape,
        num_actions,
        hidden_size=128,
        kernel_size=4,
        activation="relu",
        rng=rng,
    )
'''.strip()
