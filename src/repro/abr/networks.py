"""Actor-critic network architectures for ABR.

Defines the **network-builder contract** shared by the original Pensieve
architecture and LLM-generated alternatives: a builder is a callable

    build_network(state_shape, num_actions, rng=None) -> Module

returning a :class:`~repro.nn.layers.Module` whose ``forward(states)`` yields
a ``(policy_logits, value)`` pair for a batch of states.

The original architecture (Figure 2 of the paper) processes each state row
with either a small dense layer (scalar-like rows) or a 1-D convolution
(temporal rows), merges the resulting feature maps, and feeds separate actor
and critic heads.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = [
    "NETWORK_BUILDER_NAME",
    "ORIGINAL_NETWORK_SOURCE",
    "ActorCriticNetwork",
    "PensieveNetwork",
    "PensieveSeedStack",
    "GenericActorCritic",
    "original_network_builder",
    "NetworkBuilder",
    "set_fast_inference",
    "fast_inference_enabled",
    "build_seed_stack",
    "seed_stack_compatible",
]

#: Name the generated code block must define.
NETWORK_BUILDER_NAME = "build_network"

NetworkBuilder = Callable[..., "ActorCriticNetwork"]

#: When True (the default), :meth:`ActorCriticNetwork.policy_probs` may use a
#: pure-NumPy actor-tower forward instead of building an autograd graph.  The
#: fast path computes the same arithmetic and agrees with the graph forward to
#: float round-off; disable it to benchmark or debug against the graph path.
_FAST_INFERENCE = True


def set_fast_inference(enabled: bool) -> bool:
    """Toggle the NumPy inference fast path; returns the previous setting."""
    global _FAST_INFERENCE
    previous = _FAST_INFERENCE
    _FAST_INFERENCE = bool(enabled)
    return previous


def fast_inference_enabled() -> bool:
    return _FAST_INFERENCE


# --------------------------------------------------------------------------- #
# NumPy kernels for the inference fast path
# --------------------------------------------------------------------------- #
_NUMPY_ACTIVATIONS = {
    None: lambda x: x,
    "linear": lambda x: x,
    "identity": lambda x: x,
    "none": lambda x: x,
    "relu": lambda x: np.maximum(x, 0.0),
    "tanh": np.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "leaky_relu": lambda x: np.where(x > 0, x, 0.01 * x),
    "leakyrelu": lambda x: np.where(x > 0, x, 0.01 * x),
    "elu": lambda x: np.where(x > 0, x, np.exp(np.minimum(x, 0.0)) - 1.0),
    "softplus": lambda x: np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x))),
}


def _layer_kernel(layer) -> Optional[Callable[[np.ndarray], np.ndarray]]:
    """NumPy activation for a Dense/Conv1D layer, or None if unsupported."""
    name = getattr(layer, "activation_name", "custom")
    if name is not None and not isinstance(name, str):
        return None
    return _NUMPY_ACTIVATIONS.get(name.lower() if isinstance(name, str) else name)


def _dense_np(layer, x: np.ndarray) -> np.ndarray:
    out = x @ layer.weight.data
    if layer.bias is not None:
        out = out + layer.bias.data
    return _layer_kernel(layer)(out)


def _conv1d_np(layer, x: np.ndarray) -> np.ndarray:
    """Apply a Conv1D layer to ``(batch, channels, length)`` input in NumPy.

    Returns the flattened ``(batch, out_channels * positions)`` feature map in
    the same (filter-major) order as ``forward(...).reshape(batch, -1)``.
    """
    batch = x.shape[0]
    kernel = layer.kernel_size
    windows = np.lib.stride_tricks.sliding_window_view(
        x, kernel, axis=2)[:, :, ::layer.stride]
    positions = windows.shape[2]
    patches = np.ascontiguousarray(windows.transpose(0, 2, 1, 3)).reshape(
        batch, positions, -1)
    flat_weight = layer.weight.data.reshape(layer.out_channels, -1)
    out = patches @ flat_weight.T  # (batch, positions, out_channels)
    if layer.bias is not None:
        out = out + layer.bias.data
    out = _layer_kernel(layer)(out)
    return np.ascontiguousarray(out.transpose(0, 2, 1)).reshape(batch, -1)


def _softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class ActorCriticNetwork(nn.Module):
    """Base class for ABR actor-critic networks.

    ``forward`` takes a batch of states shaped ``(batch, *state_shape)`` and
    returns ``(logits, value)`` where ``logits`` has shape
    ``(batch, num_actions)`` and ``value`` has shape ``(batch,)``.
    """

    def __init__(self, state_shape: Tuple[int, ...], num_actions: int) -> None:
        super().__init__()
        self.state_shape = tuple(int(s) for s in state_shape)
        self.num_actions = int(num_actions)

    def forward(self, states: Tensor) -> Tuple[Tensor, Tensor]:  # pragma: no cover
        raise NotImplementedError

    # Convenience helpers used by the RL agent --------------------------------
    def policy(self, states: Tensor) -> Tensor:
        """Action probabilities for a batch of states."""
        logits, _ = self.forward(states)
        return logits.softmax(axis=-1)

    def value(self, states: Tensor) -> Tensor:
        """State-value estimates for a batch of states."""
        _, value = self.forward(states)
        return value

    def policy_probs(self, states: np.ndarray) -> np.ndarray:
        """Action probabilities for a batch of raw NumPy states.

        This is the inference entry point for rollouts and the batched greedy
        evaluator.  Subclasses override it with a pure-NumPy actor-tower
        forward when possible; the base implementation runs the autograd
        forward under ``no_grad`` (correct for any architecture).
        """
        return self._policy_probs_graph(states)

    def _policy_probs_graph(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states)
        if states.ndim == len(self.state_shape):
            states = states[None, ...]
        with nn.no_grad():
            probs = self.policy(nn.tensor(states))
        return probs.numpy()

    def supports_fused_update(self) -> bool:
        """Whether the trainer may use an analytic fused forward/backward."""
        return False

    def critic_head_parameters(self) -> list:
        """Parameters reachable only through the value (critic) head.

        The A2C trainer steps these at ``A2CConfig.critic_lr`` and everything
        else at ``actor_lr``.  The base implementation returns an empty list
        (one learning rate for the whole network), which is the safe fallback
        for architectures whose actor/critic split is unknown.
        """
        return []


class PensieveNetwork(ActorCriticNetwork):
    """The original Pensieve actor-critic architecture.

    Scalar-like rows of the state matrix go through per-row dense layers,
    temporal rows through per-row 1-D convolutions; the concatenated features
    feed a shared trunk-free pair of actor/critic towers, exactly mirroring
    the layout in Figure 2 of the paper.
    """

    DEFAULT_TEMPORAL_ROWS = (2, 3, 4)
    DEFAULT_SCALAR_ROWS = (0, 1, 5)

    def __init__(self, state_shape: Tuple[int, ...], num_actions: int,
                 hidden_size: int = 128, kernel_size: int = 4,
                 activation: str = "relu",
                 temporal_rows: Optional[Sequence[int]] = None,
                 scalar_rows: Optional[Sequence[int]] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(state_shape, num_actions)
        if len(self.state_shape) == 1:
            # Flat state: treat everything as scalar features.
            rows = self.state_shape[0]
            history = 1
            temporal_rows = []
            scalar_rows = list(range(rows))
        else:
            rows, history = self.state_shape
            if temporal_rows is None or scalar_rows is None:
                if rows == 6 and history >= kernel_size:
                    temporal_rows = list(self.DEFAULT_TEMPORAL_ROWS)
                    scalar_rows = list(self.DEFAULT_SCALAR_ROWS)
                elif history >= kernel_size:
                    temporal_rows = list(range(rows))
                    scalar_rows = []
                else:
                    temporal_rows = []
                    scalar_rows = list(range(rows))
        self.temporal_rows = tuple(temporal_rows)
        self.scalar_rows = tuple(scalar_rows)
        self.hidden_size = hidden_size
        self.kernel_size = kernel_size
        self.activation = activation
        self._history = history

        filters = hidden_size
        self.conv_branches = [
            nn.Conv1D(1, filters, kernel_size, activation=activation, rng=rng)
            for _ in self.temporal_rows
        ]
        self.scalar_branches = [
            nn.Dense(1, hidden_size, activation=activation, rng=rng)
            for _ in self.scalar_rows
        ]
        conv_positions = max(history - kernel_size + 1, 1)
        merged = (len(self.temporal_rows) * filters * conv_positions
                  + len(self.scalar_rows) * hidden_size)
        self.actor_hidden = nn.Dense(merged, hidden_size, activation=activation, rng=rng)
        self.actor_out = nn.Dense(hidden_size, num_actions, rng=rng)
        self.critic_hidden = nn.Dense(merged, hidden_size, activation=activation, rng=rng)
        self.critic_out = nn.Dense(hidden_size, 1, rng=rng)
        #: (version, A_T, bias, activation) cache for the folded branch bank.
        self._fold_cache = None

    def forward(self, states: Tensor) -> Tuple[Tensor, Tensor]:
        if states.ndim == 2 and len(self.state_shape) == 2:
            states = states.reshape(1, *self.state_shape)
        if states.ndim == 1:
            states = states.reshape(1, -1)
        batch = states.shape[0]
        features = []
        if len(self.state_shape) == 1:
            for branch, row in zip(self.scalar_branches, self.scalar_rows):
                features.append(branch(states[:, row:row + 1]))
        else:
            for branch, row in zip(self.conv_branches, self.temporal_rows):
                row_input = states[:, row:row + 1, :]
                conv_out = branch(row_input)
                features.append(conv_out.reshape(batch, -1))
            for branch, row in zip(self.scalar_branches, self.scalar_rows):
                scalar = states[:, row, -1:].reshape(batch, 1)
                features.append(branch(scalar))
        merged = nn.concatenate(features, axis=1)
        logits = self.actor_out(self.actor_hidden(merged))
        value = self.critic_out(self.critic_hidden(merged)).reshape(batch)
        return logits, value

    # NumPy inference fast path -----------------------------------------------
    def _fast_path_supported(self) -> bool:
        layers = list(self.conv_branches) + list(self.scalar_branches)
        layers += [self.actor_hidden, self.actor_out]
        return all(_layer_kernel(layer) is not None for layer in layers)

    def _foldable(self) -> bool:
        """Whether the whole branch bank collapses into one weight matrix.

        Requires homogeneous branches (the constructor always builds them
        this way): per-row Conv1D(1, F, K) and Dense(1, H) branches sharing
        one activation, so the pre-activation feature vector is a single
        linear map of the flattened state.
        """
        convs = self.conv_branches
        scalars = self.scalar_branches
        if not convs and not scalars:
            return False
        conv_ok = (not convs) or all(
            b.in_channels == 1 and b.bias is not None
            and b.kernel_size == convs[0].kernel_size
            and b.stride == convs[0].stride
            and b.out_channels == convs[0].out_channels
            and b.activation_name == convs[0].activation_name
            for b in convs)
        scalar_ok = (not scalars) or all(
            b.in_features == 1 and b.bias is not None
            and b.out_features == scalars[0].out_features
            and b.activation_name == scalars[0].activation_name
            for b in scalars)
        if not (conv_ok and scalar_ok):
            return False
        if convs and scalars:
            return convs[0].activation_name == scalars[0].activation_name
        return True

    def _folded_tower(self):
        """Branch bank folded to ``(A_T, bias, activation)``, version-cached.

        The fold turns every inference forward into ``act(x @ A_T + bias)``
        followed by the two actor dense layers — three matmuls per decision.
        Parameters carry a version counter bumped by optimizers, so the fold
        is rebuilt only after weights actually change (once per update, not
        once per decision).  The cache holds arrays only (no callables), so
        the network stays picklable.
        """
        branches = list(self.conv_branches) + list(self.scalar_branches)
        activation = _layer_kernel(branches[0])
        version = sum(getattr(b.weight, "version", 0) + getattr(b.bias, "version", 0)
                      for b in branches)
        cached = self._fold_cache
        if cached is not None and cached[0] == version:
            return cached[1], cached[2], activation
        dtype = self.actor_out.weight.data.dtype
        history = self._history if len(self.state_shape) == 2 else 1
        rows = self.state_shape[0]
        merged = 0
        kernel = stride = filters = positions = 0
        starts: range = range(0)
        if self.conv_branches:
            kernel = self.conv_branches[0].kernel_size
            stride = self.conv_branches[0].stride
            filters = self.conv_branches[0].out_channels
            starts = range(0, history - kernel + 1, stride)
            positions = len(starts)
            merged += len(self.conv_branches) * filters * positions
        if self.scalar_branches:
            merged += len(self.scalar_branches) * self.scalar_branches[0].out_features
        matrix = np.zeros((merged, rows * history), dtype=dtype)
        bias = np.empty(merged, dtype=dtype)
        offset = 0
        for branch, row in zip(self.conv_branches, self.temporal_rows):
            weight = branch.weight.data.reshape(filters, kernel)
            for pos, start in enumerate(starts):
                matrix[offset + pos:offset + filters * positions:positions,
                       row * history + start:row * history + start + kernel] = weight
            bias[offset:offset + filters * positions] = np.repeat(
                branch.bias.data, positions)
            offset += filters * positions
        for branch, row in zip(self.scalar_branches, self.scalar_rows):
            width = branch.out_features
            matrix[offset:offset + width, row * history + history - 1] = \
                branch.weight.data[0]
            bias[offset:offset + width] = branch.bias.data
            offset += width
        folded = np.ascontiguousarray(matrix.T)
        self._fold_cache = (version, folded, bias)
        return folded, bias, activation

    def policy_probs(self, states: np.ndarray) -> np.ndarray:
        if not (_FAST_INFERENCE and self._fast_path_supported()):
            return self._policy_probs_graph(states)
        dtype = self.actor_out.weight.data.dtype
        states = np.asarray(states, dtype=dtype)
        if states.ndim == len(self.state_shape):
            states = states[None, ...]
        batch = states.shape[0]
        if self._foldable():
            folded, bias, activation = self._folded_tower()
            merged = activation(states.reshape(batch, -1) @ folded + bias)
        else:
            features = []
            if len(self.state_shape) == 1:
                for branch, row in zip(self.scalar_branches, self.scalar_rows):
                    features.append(_dense_np(branch, states[:, row:row + 1]))
            else:
                for branch, row in zip(self.conv_branches, self.temporal_rows):
                    features.append(_conv1d_np(branch, states[:, row:row + 1, :]))
                for branch, row in zip(self.scalar_branches, self.scalar_rows):
                    features.append(_dense_np(branch, states[:, row, -1:].reshape(batch, 1)))
            merged = np.concatenate(features, axis=1)
        logits = _dense_np(self.actor_out, _dense_np(self.actor_hidden, merged))
        return _softmax_np(logits)

    def critic_head_parameters(self) -> list:
        """The critic tower: ``critic_hidden`` and ``critic_out``.

        The per-row branch bank feeds both towers and therefore stays in the
        actor group, matching how the shared layers of a two-head network are
        conventionally stepped at the policy learning rate.
        """
        return self.critic_hidden.parameters() + self.critic_out.parameters()

    # Fused analytic update (used by the A2C trainer) --------------------------
    def supports_fused_update(self) -> bool:
        """Whether the hand-derived forward/backward below applies.

        Requires the foldable branch bank with ReLU activations throughout
        (the constructor's default) and linear output heads; anything else
        falls back to the autograd path.  Shares the fast-inference switch so
        one toggle reverts the whole fast engine.
        """
        if not (_FAST_INFERENCE and self._foldable()):
            return False
        relu_layers = list(self.conv_branches) + list(self.scalar_branches)
        relu_layers += [self.actor_hidden, self.critic_hidden]
        if any(layer.activation_name != "relu" for layer in relu_layers):
            return False
        return (self.actor_out.activation_name in (None, "linear")
                and self.critic_out.activation_name in (None, "linear")
                and self.actor_out.bias is not None
                and self.critic_out.bias is not None
                and self.actor_hidden.bias is not None
                and self.critic_hidden.bias is not None)

    def fused_forward(self, states: np.ndarray):
        """Pure-NumPy forward through both towers, keeping intermediates.

        Returns ``(cache, logits, values)``; pass the cache (plus the loss
        gradients w.r.t. logits and values) to :meth:`fused_backward`.
        Numerically identical to ``forward`` — same folded matrix, same
        matmuls — without building an autograd graph.
        """
        dtype = self.actor_out.weight.data.dtype
        states = np.asarray(states, dtype=dtype)
        if states.ndim == len(self.state_shape):
            states = states[None, ...]
        batch = states.shape[0]
        flat = states.reshape(batch, -1)
        folded, bias, _ = self._folded_tower()
        pre_merged = flat @ folded + bias
        merged = np.maximum(pre_merged, 0.0)
        pre_actor = merged @ self.actor_hidden.weight.data + self.actor_hidden.bias.data
        hidden_actor = np.maximum(pre_actor, 0.0)
        logits = hidden_actor @ self.actor_out.weight.data + self.actor_out.bias.data
        pre_critic = merged @ self.critic_hidden.weight.data + self.critic_hidden.bias.data
        hidden_critic = np.maximum(pre_critic, 0.0)
        values = (hidden_critic @ self.critic_out.weight.data
                  + self.critic_out.bias.data).reshape(batch)
        cache = (states, flat, pre_merged, merged, pre_actor, hidden_actor,
                 pre_critic, hidden_critic)
        return cache, logits, values

    def fused_backward(self, cache, dlogits: np.ndarray, dvalues: np.ndarray) -> None:
        """Accumulate parameter gradients for the cached fused forward.

        ``dlogits``/``dvalues`` are the loss gradients w.r.t. the forward's
        outputs; gradients land in ``Parameter.grad`` exactly like
        ``loss.backward()`` would put them.
        """
        (states, flat, pre_merged, merged, pre_actor, hidden_actor,
         pre_critic, hidden_critic) = cache
        dvalues = np.asarray(dvalues).reshape(-1, 1)

        # Actor tower.
        self.actor_out.weight._accumulate(hidden_actor.T @ dlogits)
        self.actor_out.bias._accumulate(dlogits.sum(axis=0))
        d_hidden_actor = dlogits @ self.actor_out.weight.data.T
        d_pre_actor = d_hidden_actor * (pre_actor > 0)
        self.actor_hidden.weight._accumulate(merged.T @ d_pre_actor)
        self.actor_hidden.bias._accumulate(d_pre_actor.sum(axis=0))
        d_merged = d_pre_actor @ self.actor_hidden.weight.data.T

        # Critic tower.
        self.critic_out.weight._accumulate(hidden_critic.T @ dvalues)
        self.critic_out.bias._accumulate(dvalues.sum(axis=0))
        d_hidden_critic = dvalues @ self.critic_out.weight.data.T
        d_pre_critic = d_hidden_critic * (pre_critic > 0)
        self.critic_hidden.weight._accumulate(merged.T @ d_pre_critic)
        self.critic_hidden.bias._accumulate(d_pre_critic.sum(axis=0))
        d_merged = d_merged + d_pre_critic @ self.critic_hidden.weight.data.T

        # Shared branch bank (through the ReLU on the folded pre-activation).
        d_pre_merged = d_merged * (pre_merged > 0)
        offset = 0
        if self.conv_branches:
            kernel = self.conv_branches[0].kernel_size
            stride = self.conv_branches[0].stride
            filters = self.conv_branches[0].out_channels
            history = self._history
            rows = states[:, list(self.temporal_rows), :]
            windows = np.lib.stride_tricks.sliding_window_view(
                rows, kernel, axis=2)[:, :, ::stride]     # (B, R, P, K)
            positions = windows.shape[2]
            span = len(self.conv_branches) * filters * positions
            d_conv = d_pre_merged[:, :span].reshape(
                -1, len(self.conv_branches), filters, positions)
            if nn.get_numerics() == "fast":
                # Re-blocked GEMM contraction: (batch, positions) folded into
                # one axis — same sum, different summation order (gated by
                # the statistical-equivalence tests, not the bitwise suite).
                branches = len(self.conv_branches)
                d_weights = np.matmul(
                    d_conv.transpose(1, 2, 0, 3).reshape(branches, filters, -1),
                    windows.transpose(1, 0, 2, 3).reshape(branches, -1, kernel))
            else:
                d_weights = np.einsum("brfp,brpk->rfk", d_conv, windows)
            d_biases = d_conv.sum(axis=(0, 3))
            for index, branch in enumerate(self.conv_branches):
                branch.weight._accumulate(
                    d_weights[index].reshape(branch.weight.data.shape))
                branch.bias._accumulate(d_biases[index])
            offset = span
        if self.scalar_branches:
            width = self.scalar_branches[0].out_features
            if len(self.state_shape) == 1:
                scalars = states[:, list(self.scalar_rows)]
            else:
                scalars = states[:, list(self.scalar_rows), -1]  # (B, S)
            d_scalar = d_pre_merged[:, offset:].reshape(
                -1, len(self.scalar_branches), width)
            d_weights = np.einsum("bsh,bs->sh", d_scalar, scalars)
            d_biases = d_scalar.sum(axis=0)
            for index, branch in enumerate(self.scalar_branches):
                branch.weight._accumulate(d_weights[index][None, :])
                branch.bias._accumulate(d_biases[index])


class _SeedActorForward:
    """Preallocated single-seed actor-tower forward (rollout hot path).

    Performs the same operation sequence as the folded
    ``PensieveNetwork.policy_probs`` path — float cast, flatten, GEMM
    through the folded bank, two dense layers, softmax — writing every
    intermediate into reusable buffers.  Buffer reuse and in-place
    elementwise ops change no values; the returned probabilities view is
    only valid until the next call.
    """

    __slots__ = ("folded", "fold_bias", "w_hidden", "b_hidden", "w_out",
                 "b_out", "flat", "merged", "hidden", "logits")

    def __init__(self, folded, fold_bias, w_hidden, b_hidden, w_out, b_out,
                 batch, dtype) -> None:
        self.folded = folded
        self.fold_bias = fold_bias
        self.w_hidden = w_hidden
        self.b_hidden = b_hidden
        self.w_out = w_out
        self.b_out = b_out
        self.flat = np.empty((batch, folded.shape[0]), dtype=dtype)
        self.merged = np.empty((batch, folded.shape[1]), dtype=dtype)
        self.hidden = np.empty((batch, w_hidden.shape[1]), dtype=dtype)
        self.logits = np.empty((batch, w_out.shape[1]), dtype=dtype)

    def probs(self, states: np.ndarray) -> np.ndarray:
        """Action probabilities for ``(batch, *state_shape)`` float64 states."""
        np.copyto(self.flat, states.reshape(self.flat.shape))
        np.matmul(self.flat, self.folded, out=self.merged)
        self.merged += self.fold_bias
        np.maximum(self.merged, 0.0, out=self.merged)
        np.matmul(self.merged, self.w_hidden, out=self.hidden)
        self.hidden += self.b_hidden
        np.maximum(self.hidden, 0.0, out=self.hidden)
        np.matmul(self.hidden, self.w_out, out=self.logits)
        self.logits += self.b_out
        # In-place softmax, same arithmetic as _softmax_np.
        self.logits -= self.logits.max(axis=-1, keepdims=True)
        np.exp(self.logits, out=self.logits)
        self.logits /= self.logits.sum(axis=-1, keepdims=True)
        return self.logits


class PensieveSeedStack(nn.SeedParameterStack):
    """Stacked-weight view of several identically-shaped Pensieve networks.

    The multi-seed lockstep trainer trains all ``num_seeds`` sessions of one
    design simultaneously; this class provides the batched kernels it needs by
    stacking each parameter of the per-seed networks into one
    ``(seeds, *shape)`` array (the generic stacking/rebinding machinery lives
    in :class:`~repro.nn.compile.SeedParameterStack`, which the compiled
    stack for generated architectures shares).  Three invariants make the
    stack transparent:

    * **The per-seed networks stay live.**  Each network's ``Parameter.data``
      is rebound to a view of its slice of the stacked array, so updating the
      stack updates every seed network in place — checkpoint evaluation,
      serialization and anything downstream see current weights with no
      unpack step.
    * **Bit-identical arithmetic.**  Every stacked kernel mirrors the serial
      fused kernels of :class:`PensieveNetwork` operation for operation; the
      batched GEMMs/einsums resolve each seed's slice with the same BLAS
      calls the serial path makes, so a stacked forward/backward produces
      exactly the arrays ``seeds`` serial ones would (asserted to <= 1e-9 in
      float32 and float64 by the equivalence suite).
    * **Same fold, same cache discipline.**  The folded branch-bank matrices
      are built by each seed network's own ``_folded_tower`` (version-cached)
      and stacked; :meth:`mark_updated` bumps the underlying parameter
      versions after an optimizer step so both cache layers invalidate.
    """

    def __init__(self, networks: Sequence[PensieveNetwork]) -> None:
        if len(networks) < 1:
            raise ValueError("PensieveSeedStack needs at least one network")
        if not all(isinstance(net, PensieveNetwork) for net in networks):
            raise TypeError("PensieveSeedStack requires PensieveNetwork instances")
        if not all(net.supports_fused_update() for net in networks):
            raise ValueError("every stacked network must support fused updates")
        super().__init__(networks)
        net0 = self.networks[0]
        by_id = self._stacked_of
        self._w_actor_hidden = by_id[id(net0.actor_hidden.weight)]
        self._b_actor_hidden = by_id[id(net0.actor_hidden.bias)]
        self._w_actor_out = by_id[id(net0.actor_out.weight)]
        self._b_actor_out = by_id[id(net0.actor_out.bias)]
        self._w_critic_hidden = by_id[id(net0.critic_hidden.weight)]
        self._b_critic_hidden = by_id[id(net0.critic_hidden.bias)]
        self._w_critic_out = by_id[id(net0.critic_out.weight)]
        self._b_critic_out = by_id[id(net0.critic_out.bias)]
        self._fold_cache = None

    # ------------------------------------------------------------------ #
    @staticmethod
    def compatible(networks: Sequence["ActorCriticNetwork"]) -> bool:
        """Whether these networks can train through one stacked engine."""
        if not networks or not all(isinstance(net, PensieveNetwork)
                                   for net in networks):
            return False
        if not all(net.supports_fused_update() for net in networks):
            return False
        return nn.SeedParameterStack._stackable(list(networks))

    # ------------------------------------------------------------------ #
    def _stacked_fold(self):
        """``(folded (S, D, M), bias (S, M))`` of the per-seed branch banks."""
        cached = self._fold_cache
        if cached is not None and cached[0] == self._version:
            return cached[1], cached[2]
        towers = [net._folded_tower() for net in self.networks]
        folded = np.stack([tower[0] for tower in towers])
        bias = np.stack([tower[1] for tower in towers])
        self._fold_cache = (self._version, folded, bias)
        return folded, bias

    def policy_probs(self, states: np.ndarray) -> np.ndarray:
        """Per-seed action probabilities for ``(seeds, batch, *state_shape)``.

        Seed ``s``'s slice equals ``networks[s].policy_probs(states[s])`` on
        the folded fast path: flatten, one batched GEMM through the folded
        bank, the two actor dense layers, softmax.
        """
        states = np.asarray(states, dtype=self.dtype)
        seeds, batch = states.shape[0], states.shape[1]
        flat = states.reshape(seeds, batch, -1)
        folded, bias = self._stacked_fold()
        merged = np.maximum(nn.batched_matmul(flat, folded) + bias[:, None, :],
                            0.0)
        hidden = np.maximum(
            nn.batched_matmul(merged, self._w_actor_hidden.data)
            + self._b_actor_hidden.data[:, None, :], 0.0)
        logits = (nn.batched_matmul(hidden, self._w_actor_out.data)
                  + self._b_actor_out.data[:, None, :])
        return _softmax_np(logits)

    def seed_policy_forward(self, seed: int, batch: int) -> "_SeedActorForward":
        """A lean, buffer-reusing actor forward for one seed.

        Computes exactly the arithmetic of
        :meth:`PensieveNetwork.policy_probs`'s folded path — cast, flatten,
        three GEMMs against this seed's weight slices, softmax — without the
        per-call capability re-validation the general entry point performs
        and without per-call allocations.  Seed-major callers (the lockstep
        rollout and checkpoint evaluation) create one per episode so a
        seed's ~1.6 MB actor tower stays hot in L2 across consecutive
        decisions; the context captures the current folded tower, so it must
        be recreated after a weight update.
        """
        folded, bias = self._stacked_fold()
        return _SeedActorForward(
            folded[seed], bias[seed],
            self._w_actor_hidden.data[seed], self._b_actor_hidden.data[seed],
            self._w_actor_out.data[seed], self._b_actor_out.data[seed],
            batch, self.dtype)

    # ------------------------------------------------------------------ #
    def fused_forward(self, states: np.ndarray):
        """Stacked twin of :meth:`PensieveNetwork.fused_forward`.

        ``states`` is ``(seeds, batch, *state_shape)``; returns
        ``(cache, logits (S, B, A), values (S, B))``.
        """
        states = np.asarray(states, dtype=self.dtype)
        seeds, batch = states.shape[0], states.shape[1]
        flat = states.reshape(seeds, batch, -1)
        folded, fold_bias = self._stacked_fold()
        pre_merged = nn.batched_matmul(flat, folded) + fold_bias[:, None, :]
        merged = np.maximum(pre_merged, 0.0)
        pre_actor = (nn.batched_matmul(merged, self._w_actor_hidden.data)
                     + self._b_actor_hidden.data[:, None, :])
        hidden_actor = np.maximum(pre_actor, 0.0)
        logits = (nn.batched_matmul(hidden_actor, self._w_actor_out.data)
                  + self._b_actor_out.data[:, None, :])
        pre_critic = (nn.batched_matmul(merged, self._w_critic_hidden.data)
                      + self._b_critic_hidden.data[:, None, :])
        hidden_critic = np.maximum(pre_critic, 0.0)
        values = (nn.batched_matmul(hidden_critic, self._w_critic_out.data)
                  + self._b_critic_out.data[:, None, :]).reshape(seeds, batch)
        cache = (states, flat, pre_merged, merged, pre_actor, hidden_actor,
                 pre_critic, hidden_critic)
        return cache, logits, values

    def fused_backward(self, cache, dlogits: np.ndarray,
                       dvalues: np.ndarray) -> None:
        """Stacked twin of :meth:`PensieveNetwork.fused_backward`.

        Gradients land on the *stacked* parameters (shape ``(S, *shape)``);
        seed ``s``'s slice is exactly the gradient the serial backward puts
        on ``networks[s]``'s parameters.  In the common case (gradient dtype
        == weight dtype) outputs are written straight into persistent
        buffers with ``out=``; the values are identical either way.
        """
        (states, flat, pre_merged, merged, pre_actor, hidden_actor,
         pre_critic, hidden_critic) = cache
        net0 = self.networks[0]
        seeds = states.shape[0]
        dvalues = np.asarray(dvalues).reshape(seeds, -1, 1)

        def put(stacked: nn.Parameter, compute, out_shape=None):
            """Compute a gradient into the persistent buffer when possible.

            ``compute(out)`` must write into ``out`` when given one and
            return the result otherwise; ``out_shape`` reshapes the buffer
            view the computation writes through (buffers are contiguous, so
            the reshape is free).
            """
            buffer = self._grad_into(stacked)
            if buffer is None:
                self._set_grad(stacked, compute(None))
                return
            view = buffer if out_shape is None else buffer.reshape(out_shape)
            compute(view)

        merged_t = merged.transpose(0, 2, 1)

        # Actor tower.
        hidden_actor_t = hidden_actor.transpose(0, 2, 1)
        put(self._w_actor_out,
            lambda out: np.matmul(hidden_actor_t, dlogits, out=out)
            if out is not None else np.matmul(hidden_actor_t, dlogits))
        put(self._b_actor_out,
            lambda out: dlogits.sum(axis=1, out=out))
        d_hidden_actor = nn.batched_matmul(
            dlogits, self._w_actor_out.data.transpose(0, 2, 1))
        d_pre_actor = d_hidden_actor * (pre_actor > 0)
        put(self._w_actor_hidden,
            lambda out: np.matmul(merged_t, d_pre_actor, out=out)
            if out is not None else np.matmul(merged_t, d_pre_actor))
        put(self._b_actor_hidden,
            lambda out: d_pre_actor.sum(axis=1, out=out))
        d_merged = nn.batched_matmul(
            d_pre_actor, self._w_actor_hidden.data.transpose(0, 2, 1))

        # Critic tower.
        hidden_critic_t = hidden_critic.transpose(0, 2, 1)
        put(self._w_critic_out,
            lambda out: np.matmul(hidden_critic_t, dvalues, out=out)
            if out is not None else np.matmul(hidden_critic_t, dvalues))
        put(self._b_critic_out,
            lambda out: dvalues.sum(axis=1, out=out))
        d_hidden_critic = nn.batched_matmul(
            dvalues, self._w_critic_out.data.transpose(0, 2, 1))
        d_pre_critic = d_hidden_critic * (pre_critic > 0)
        put(self._w_critic_hidden,
            lambda out: np.matmul(merged_t, d_pre_critic, out=out)
            if out is not None else np.matmul(merged_t, d_pre_critic))
        put(self._b_critic_hidden,
            lambda out: d_pre_critic.sum(axis=1, out=out))
        d_merged = d_merged + nn.batched_matmul(
            d_pre_critic, self._w_critic_hidden.data.transpose(0, 2, 1))

        # Shared branch bank (through the ReLU on the folded pre-activation).
        d_pre_merged = d_merged * (pre_merged > 0)
        offset = 0
        if net0.conv_branches:
            kernel = net0.conv_branches[0].kernel_size
            stride = net0.conv_branches[0].stride
            filters = net0.conv_branches[0].out_channels
            rows = states[:, :, list(net0.temporal_rows), :]
            windows = np.lib.stride_tricks.sliding_window_view(
                rows, kernel, axis=3)[:, :, :, ::stride]    # (S, B, R, P, K)
            positions = windows.shape[3]
            span = len(net0.conv_branches) * filters * positions
            d_conv = d_pre_merged[:, :, :span].reshape(
                seeds, -1, len(net0.conv_branches), filters, positions)
            if nn.get_numerics() == "fast":
                # See PensieveNetwork.fused_backward: the re-blocked GEMM
                # form of the conv-gradient contraction, seed axis leading.
                branches = len(net0.conv_branches)
                d_weights = np.matmul(
                    d_conv.transpose(0, 2, 3, 1, 4).reshape(
                        seeds, branches, filters, -1),
                    windows.transpose(0, 2, 1, 3, 4).reshape(
                        seeds, branches, -1, kernel))
            else:
                d_weights = np.einsum("sbrfp,sbrpk->srfk", d_conv, windows)
            d_biases = d_conv.sum(axis=(1, 4))
            for index, branch in enumerate(net0.conv_branches):
                put(self.stacked_of(branch.weight),
                    lambda out, i=index: np.copyto(out, d_weights[:, i])
                    if out is not None
                    else d_weights[:, i].reshape(
                        (seeds,) + branch.weight.data.shape),
                    out_shape=(seeds, filters, kernel))
                put(self.stacked_of(branch.bias),
                    lambda out, i=index: np.copyto(out, d_biases[:, i])
                    if out is not None else d_biases[:, i])
            offset = span
        if net0.scalar_branches:
            width = net0.scalar_branches[0].out_features
            if len(self.state_shape) == 1:
                scalars = states[:, :, list(net0.scalar_rows)]
            else:
                scalars = states[:, :, list(net0.scalar_rows), -1]  # (S, B, N)
            d_scalar = d_pre_merged[:, :, offset:].reshape(
                seeds, -1, len(net0.scalar_branches), width)
            d_weights = np.einsum("sbnh,sbn->snh", d_scalar, scalars)
            d_biases = d_scalar.sum(axis=1)
            for index in range(len(net0.scalar_branches)):
                branch = net0.scalar_branches[index]
                put(self.stacked_of(branch.weight),
                    lambda out, i=index: np.copyto(out, d_weights[:, i])
                    if out is not None else d_weights[:, i][:, None, :],
                    out_shape=(seeds, width))
                put(self.stacked_of(branch.bias),
                    lambda out, i=index: np.copyto(out, d_biases[:, i])
                    if out is not None else d_biases[:, i])


class GenericActorCritic(ActorCriticNetwork):
    """A generic architecture handling arbitrary state shapes.

    Used as the fallback for generated states whose shapes differ from the
    original 6x8 matrix and as the skeleton that generated architecture code
    commonly produces (dense trunk, optional recurrent encoder, separate or
    shared heads).
    """

    def __init__(self, state_shape: Tuple[int, ...], num_actions: int,
                 hidden_sizes: Sequence[int] = (128, 128),
                 activation: str = "relu",
                 encoder: str = "flatten",
                 share_trunk: bool = False,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(state_shape, num_actions)
        if len(self.state_shape) == 1:
            # Recurrent/convolutional encoders need a (channels, history)
            # layout; flat states always use the dense path.
            encoder = "flatten"
        self.encoder_kind = encoder
        self.share_trunk = share_trunk
        flat_size = int(np.prod(self.state_shape))

        if encoder == "flatten":
            self.encoder = nn.Flatten()
            encoded = flat_size
        elif encoder in ("rnn", "gru", "lstm"):
            channels = self.state_shape[0]
            hidden = hidden_sizes[0]
            self.encoder = nn.Recurrent(channels, hidden, cell_type=encoder, rng=rng)
            encoded = hidden
        elif encoder == "conv":
            channels, history = self.state_shape
            kernel = min(4, history)
            self.encoder = nn.Conv1D(channels, hidden_sizes[0], kernel,
                                     activation=activation, rng=rng)
            encoded = hidden_sizes[0] * (history - kernel + 1)
        else:
            raise ValueError(f"unknown encoder {encoder!r}")

        def make_trunk() -> nn.Sequential:
            layers = []
            size = encoded
            for width in hidden_sizes:
                layers.append(nn.Dense(size, width, activation=activation, rng=rng))
                size = width
            return nn.Sequential(*layers)

        if share_trunk:
            self.trunk = make_trunk()
            self.actor_trunk = self.trunk
            self.critic_trunk = self.trunk
        else:
            self.actor_trunk = make_trunk()
            self.critic_trunk = make_trunk()
        self.actor_out = nn.Dense(hidden_sizes[-1], num_actions, rng=rng)
        self.critic_out = nn.Dense(hidden_sizes[-1], 1, rng=rng)

    def _encode(self, states: Tensor) -> Tensor:
        batch = states.shape[0]
        if self.encoder_kind in ("rnn", "gru", "lstm"):
            return self.encoder(states)
        if self.encoder_kind == "conv":
            return self.encoder(states).reshape(batch, -1)
        return states.reshape(batch, -1)

    def forward(self, states: Tensor) -> Tuple[Tensor, Tensor]:
        if states.ndim == len(self.state_shape):
            states = states.reshape(1, *self.state_shape)
        batch = states.shape[0]
        encoded = self._encode(states)
        logits = self.actor_out(self.actor_trunk(encoded))
        value = self.critic_out(self.critic_trunk(encoded)).reshape(batch)
        return logits, value

    # NumPy inference fast path -----------------------------------------------
    def _fast_path_supported(self) -> bool:
        if self.encoder_kind == "conv":
            if _layer_kernel(self.encoder) is None:
                return False
        elif self.encoder_kind != "flatten":
            return False
        layers = list(self.actor_trunk) + [self.actor_out]
        for layer in layers:
            if not isinstance(layer, nn.Dense) or _layer_kernel(layer) is None:
                return False
        return True

    def critic_head_parameters(self) -> list:
        """Critic-only parameters: the critic trunk (unless shared) and head."""
        params = [] if self.share_trunk else self.critic_trunk.parameters()
        return params + self.critic_out.parameters()

    def policy_probs(self, states: np.ndarray) -> np.ndarray:
        if _FAST_INFERENCE:
            plan = self.compiled_plan()
            if plan is not None and not plan.has_active_dropout():
                # The compiled chain computes exactly the arithmetic of the
                # legacy NumPy fast path (flatten/conv encoders) and of the
                # graph forward (recurrent encoders), so decisions are
                # identical to both — recurrent architectures just stop
                # paying for an autograd graph per decision.  Training-mode
                # dropout keeps the graph path: its actor-only chain would
                # consume a different RNG-stream length per decision than
                # the full-forward reference.
                return plan.policy_probs(states)
        if not (_FAST_INFERENCE and self._fast_path_supported()):
            return self._policy_probs_graph(states)
        dtype = self.actor_out.weight.data.dtype
        states = np.asarray(states, dtype=dtype)
        if states.ndim == len(self.state_shape):
            states = states[None, ...]
        batch = states.shape[0]
        if self.encoder_kind == "conv":
            encoded = _conv1d_np(self.encoder, states)
        else:
            encoded = states.reshape(batch, -1)
        for layer in self.actor_trunk:
            encoded = _dense_np(layer, encoded)
        logits = _dense_np(self.actor_out, encoded)
        return _softmax_np(logits)

    # Compiled fused kernels (see repro.nn.compile) ----------------------------
    def __getstate__(self):
        # The compiled plan holds gradient/inference buffers; worker
        # processes recompile on first use instead of shipping them.
        state = dict(self.__dict__)
        state.pop("_compile_cache", None)
        return state

    def compiled_plan(self):
        """The fused kernel plan for this network, or None (with the reason
        logged once) when the planner cannot lower it or compilation is off."""
        return nn.plan_for(self)

    def supports_fused_update(self) -> bool:
        """True when the kernel planner lowered this architecture.

        Compiled networks train through the same analytic fused-update path
        as the hand-fused Pensieve network; ``--no-compile`` (or
        ``repro.nn.set_compilation(False)``) reverts to the autograd graph
        reference, and ``set_fast_inference(False)`` reverts the whole fast
        engine exactly as it does for Pensieve.
        """
        return _FAST_INFERENCE and self.compiled_plan() is not None

    def fused_forward(self, states: np.ndarray):
        """Compiled analytic forward; see :meth:`PensieveNetwork.fused_forward`."""
        plan = self.compiled_plan()
        if plan is None:
            raise RuntimeError("network did not compile; use the graph path")
        return plan.fused_forward(states)

    def fused_backward(self, cache, dlogits: np.ndarray,
                       dvalues: np.ndarray) -> None:
        """Compiled analytic backward; gradients land in ``Parameter.grad``."""
        plan = self.compiled_plan()
        if plan is None:
            raise RuntimeError("network did not compile; use the graph path")
        plan.fused_backward(cache, dlogits, dvalues)


def seed_stack_compatible(networks: Sequence["ActorCriticNetwork"]) -> bool:
    """Whether these networks can train through one stacked lockstep engine.

    Pensieve architectures use the hand-fused :class:`PensieveSeedStack`;
    any other design-space architecture qualifies when the kernel planner
    can lower it (:class:`~repro.nn.compile.CompiledSeedStack`).
    """
    networks = list(networks)
    return (PensieveSeedStack.compatible(networks)
            or nn.CompiledSeedStack.compatible(networks))


def build_seed_stack(networks: Sequence["ActorCriticNetwork"]):
    """Build the appropriate stacked lockstep engine for ``networks``.

    Raises ValueError when neither engine applies (mixed architectures, or
    an architecture the kernel planner cannot lower).
    """
    networks = list(networks)
    if PensieveSeedStack.compatible(networks):
        return PensieveSeedStack(networks)
    if nn.CompiledSeedStack.compatible(networks):
        return nn.CompiledSeedStack(networks)
    raise ValueError(
        "networks cannot train in lockstep (no fused kernel support or "
        "mismatched architectures); train each seed with A2CTrainer instead")


def original_network_builder(state_shape: Tuple[int, ...], num_actions: int,
                             rng: Optional[np.random.Generator] = None,
                             ) -> ActorCriticNetwork:
    """Build the original Pensieve architecture for ``state_shape``.

    Falls back to :class:`GenericActorCritic` when the state is not the
    canonical 6-row matrix (e.g. when pairing the original network with an
    LLM-generated state of a different shape, as in the Table 5 grid).
    """
    shape = tuple(int(s) for s in state_shape)
    if len(shape) == 2 and shape[0] == 6 and shape[1] >= 4:
        return PensieveNetwork(shape, num_actions, rng=rng)
    if len(shape) == 2 and shape[1] >= 4:
        return PensieveNetwork(shape, num_actions, rng=rng)
    return GenericActorCritic(shape, num_actions, rng=rng)


#: Source code of the original network builder, used as the seed code block in
#: architecture-generation prompts.
ORIGINAL_NETWORK_SOURCE = '''
import numpy as np


def build_network(state_shape, num_actions, rng=None):
    """Original Pensieve actor-critic: per-row conv/dense branches, 128 units."""
    return nn_library.PensieveNetwork(
        state_shape,
        num_actions,
        hidden_size=128,
        kernel_size=4,
        activation="relu",
        rng=rng,
    )
'''.strip()
