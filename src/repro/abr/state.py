"""RL state representations for ABR.

This module defines three things:

1. The **state-function contract**: the call signature every state function
   (original or LLM-generated) must implement.  The parameter names are the
   "semantically meaningful" names the paper introduces in its prompting
   strategy (§2.1) so that generated code and the original share an interface.
2. :func:`original_state_function` — a faithful re-implementation of
   Pensieve's hand-designed 6x8 state matrix.
3. :class:`StateFunction` — a wrapper that adapts a simulator
   :class:`~repro.abr.env.Observation` to the contract, validates the output
   and exposes the resulting feature shape to network builders.
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional, Sequence

import numpy as np

from .env import HISTORY_LENGTH, Observation

__all__ = [
    "STATE_FUNCTION_NAME",
    "STATE_FUNCTION_PARAMETERS",
    "ORIGINAL_STATE_SOURCE",
    "original_state_function",
    "original_states_batched",
    "original_states_gathered",
    "StateFunction",
    "BUFFER_NORM_FACTOR_S",
    "THROUGHPUT_NORM_FACTOR_MBPS",
    "CHUNK_SIZE_NORM_FACTOR_BYTES",
]

#: Name the generated code block must define (matches the paper's Figure 1).
STATE_FUNCTION_NAME = "state_func"

#: Ordered parameter names of the state-function contract.
STATE_FUNCTION_PARAMETERS = (
    "bitrate_kbps_history",
    "throughput_mbps_history",
    "download_time_s_history",
    "buffer_size_s_history",
    "next_chunk_sizes_bytes",
    "remaining_chunk_count",
    "total_chunk_count",
    "bitrate_ladder_kbps",
)

#: Pensieve normalizes the playback buffer by 10 seconds.
BUFFER_NORM_FACTOR_S = 10.0
#: Throughput is expressed in units of 8 Mbps (≈ MB/s) to keep values small.
THROUGHPUT_NORM_FACTOR_MBPS = 8.0
#: Chunk sizes are expressed in megabytes.
CHUNK_SIZE_NORM_FACTOR_BYTES = 1e6


def original_state_function(
    bitrate_kbps_history: np.ndarray,
    throughput_mbps_history: np.ndarray,
    download_time_s_history: np.ndarray,
    buffer_size_s_history: np.ndarray,
    next_chunk_sizes_bytes: np.ndarray,
    remaining_chunk_count: int,
    total_chunk_count: int,
    bitrate_ladder_kbps: np.ndarray,
) -> np.ndarray:
    """Pensieve's original state representation.

    Returns a ``(6, HISTORY_LENGTH)`` matrix whose rows are:

    0. history of the selected bitrates, normalized by the top bitrate;
    1. history of the playback buffer, normalized by 10 s;
    2. history of measured throughput, normalized to ~MB/s;
    3. history of chunk download times, normalized by 10 s;
    4. sizes of the next chunk at each bitrate, in MB (zero-padded);
    5. fraction of chunks remaining (constant row).
    """
    history_len = len(throughput_mbps_history)
    ladder = np.asarray(bitrate_ladder_kbps, dtype=np.float64)
    state = np.zeros((6, history_len))
    state[0, :] = np.asarray(bitrate_kbps_history, dtype=np.float64) / ladder[-1]
    state[1, :] = np.asarray(buffer_size_s_history, dtype=np.float64) / BUFFER_NORM_FACTOR_S
    state[2, :] = (np.asarray(throughput_mbps_history, dtype=np.float64)
                   / THROUGHPUT_NORM_FACTOR_MBPS)
    state[3, :] = (np.asarray(download_time_s_history, dtype=np.float64)
                   / BUFFER_NORM_FACTOR_S)
    sizes = np.asarray(next_chunk_sizes_bytes, dtype=np.float64) / CHUNK_SIZE_NORM_FACTOR_BYTES
    count = min(len(sizes), history_len)
    state[4, :count] = sizes[:count]
    state[5, :] = float(remaining_chunk_count) / max(float(total_chunk_count), 1.0)
    return state


def original_states_batched(
    bitrate_kbps_histories: np.ndarray,
    throughput_mbps_histories: np.ndarray,
    download_time_s_histories: np.ndarray,
    buffer_size_s_histories: np.ndarray,
    next_chunk_sizes_bytes: np.ndarray,
    remaining_chunk_count: int,
    total_chunk_count: int,
    bitrate_ladder_kbps: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`original_state_function` over lockstep sessions.

    The history arguments carry arbitrary leading (session) axes with the
    history window last, e.g. ``(seeds, H)`` or ``(seeds, traces, H)``;
    ``out`` receives the states as ``(*leading, 6, H)``.  The next-chunk
    sizes and chunk counters are shared: lockstep sessions stream the same
    video at the same chunk index, so those rows are identical per session.

    Row for row this performs the exact arithmetic of the serial function
    (elementwise divides by the same scalars on the same values), so every
    ``out[...]`` slice is bit-identical to calling the serial function on
    that session's observation — the multi-seed trainer relies on this to
    stay seed-for-seed equivalent while building all states in a handful of
    NumPy calls instead of hundreds.
    """
    history_len = bitrate_kbps_histories.shape[-1]
    ladder = np.asarray(bitrate_ladder_kbps, dtype=np.float64)
    np.divide(bitrate_kbps_histories, ladder[-1], out=out[..., 0, :])
    np.divide(buffer_size_s_histories, BUFFER_NORM_FACTOR_S, out=out[..., 1, :])
    np.divide(throughput_mbps_histories, THROUGHPUT_NORM_FACTOR_MBPS,
              out=out[..., 2, :])
    np.divide(download_time_s_histories, BUFFER_NORM_FACTOR_S,
              out=out[..., 3, :])
    sizes = np.asarray(next_chunk_sizes_bytes,
                       dtype=np.float64) / CHUNK_SIZE_NORM_FACTOR_BYTES
    count = min(len(sizes), history_len)
    out[..., 4, :] = 0.0
    out[..., 4, :count] = sizes[:count]
    out[..., 5, :] = float(remaining_chunk_count) / max(float(total_chunk_count),
                                                        1.0)
    return out


def original_states_gathered(
    bitrate_kbps_histories: np.ndarray,
    throughput_mbps_histories: np.ndarray,
    download_time_s_histories: np.ndarray,
    buffer_size_s_histories: np.ndarray,
    next_chunk_sizes_bytes: np.ndarray,
    remaining_chunk_counts: np.ndarray,
    total_chunk_count: int,
    bitrate_ladder_kbps: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`original_state_function` over *independent* sessions.

    Unlike :func:`original_states_batched` (lockstep seeds: every session at
    the same chunk of the same video), this variant serves a fleet of
    sessions at *different* playback positions: ``next_chunk_sizes_bytes``
    is ``(sessions, bitrates)`` — one row per session — and
    ``remaining_chunk_counts`` is ``(sessions,)``.  Histories are
    ``(sessions, H)`` and ``out`` receives ``(sessions, 6, H)``.

    Row for row this performs the exact arithmetic of the serial function
    (elementwise divides by the same scalars on the same values), so
    ``out[i]`` is bit-identical to calling the serial function on session
    ``i``'s observation — the fleet harness relies on this to stay
    session-for-session identical to serial :class:`Emulator` runs while
    building every state of a decision tick in a handful of NumPy calls.
    """
    history_len = bitrate_kbps_histories.shape[-1]
    ladder = np.asarray(bitrate_ladder_kbps, dtype=np.float64)
    np.divide(bitrate_kbps_histories, ladder[-1], out=out[..., 0, :])
    np.divide(buffer_size_s_histories, BUFFER_NORM_FACTOR_S, out=out[..., 1, :])
    np.divide(throughput_mbps_histories, THROUGHPUT_NORM_FACTOR_MBPS,
              out=out[..., 2, :])
    np.divide(download_time_s_histories, BUFFER_NORM_FACTOR_S,
              out=out[..., 3, :])
    sizes = np.asarray(next_chunk_sizes_bytes,
                       dtype=np.float64) / CHUNK_SIZE_NORM_FACTOR_BYTES
    count = min(sizes.shape[-1], history_len)
    out[..., 4, :] = 0.0
    out[..., 4, :count] = sizes[..., :count]
    remaining = np.asarray(remaining_chunk_counts, dtype=np.float64)
    out[..., 5, :] = (remaining
                      / max(float(total_chunk_count), 1.0))[..., None]
    return out


#: Source code of the original state function, used as the seed code block in
#: the prompts sent to the LLM (the paper starts generation from the existing
#: implementation).
ORIGINAL_STATE_SOURCE = '''
import numpy as np


def state_func(bitrate_kbps_history, throughput_mbps_history,
               download_time_s_history, buffer_size_s_history,
               next_chunk_sizes_bytes, remaining_chunk_count,
               total_chunk_count, bitrate_ladder_kbps):
    """Original Pensieve state: a 6 x history matrix of normalized features."""
    history_len = len(throughput_mbps_history)
    ladder = np.asarray(bitrate_ladder_kbps, dtype=float)
    state = np.zeros((6, history_len))
    # Row 0: previously selected bitrates, normalized by the highest bitrate.
    state[0, :] = np.asarray(bitrate_kbps_history, dtype=float) / ladder[-1]
    # Row 1: playback buffer history, normalized by 10 seconds.
    state[1, :] = np.asarray(buffer_size_s_history, dtype=float) / 10.0
    # Row 2: measured throughput history, normalized to roughly MB/s.
    state[2, :] = np.asarray(throughput_mbps_history, dtype=float) / 8.0
    # Row 3: chunk download time history, normalized by 10 seconds.
    state[3, :] = np.asarray(download_time_s_history, dtype=float) / 10.0
    # Row 4: available sizes of the next chunk at each bitrate, in megabytes.
    sizes = np.asarray(next_chunk_sizes_bytes, dtype=float) / 1e6
    count = min(len(sizes), history_len)
    state[4, :count] = sizes[:count]
    # Row 5: fraction of the video still to be played.
    state[5, :] = float(remaining_chunk_count) / max(float(total_chunk_count), 1.0)
    return state
'''.strip()


class StateFunction:
    """Adapter from simulator observations to a state-function implementation.

    Wraps any callable following the state-function contract, feeds it the
    fields of an :class:`Observation`, validates the returned array and
    remembers the feature shape (needed to size the neural network input).
    """

    def __init__(self, func: Callable[..., np.ndarray], name: str = "state",
                 trusted: bool = False) -> None:
        if not callable(func):
            raise TypeError("state function must be callable")
        self._func = func
        self.name = name
        self._shape: Optional[tuple] = None
        #: Trusted functions (the built-in original) are known to return a
        #: fresh, finite, fixed-shape float array, so the per-call validation
        #: is skipped on the rollout hot path.  Generated code is never
        #: trusted.
        self.trusted = trusted

    # ------------------------------------------------------------------ #
    @classmethod
    def original(cls) -> "StateFunction":
        """The original Pensieve state representation."""
        return cls(original_state_function, name="pensieve-original", trusted=True)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Optional[tuple]:
        """Feature shape observed on the last call (None before the first)."""
        return self._shape

    def __call__(self, observation: Observation) -> np.ndarray:
        features = self._func(
            observation.bitrate_kbps_history,
            observation.throughput_mbps_history,
            observation.download_time_s_history,
            observation.buffer_s_history,
            observation.next_chunk_sizes_bytes,
            observation.remaining_chunks,
            observation.total_chunks,
            observation.bitrate_ladder_kbps,
        )
        if self.trusted:
            if self._shape is None:
                self._shape = features.shape
            return features
        array = np.asarray(features, dtype=np.float64)
        if array.size == 0:
            raise ValueError(f"state function {self.name!r} returned an empty array")
        if array.ndim > 2:
            raise ValueError(
                f"state function {self.name!r} returned a {array.ndim}-D array; "
                "only 1-D or 2-D states are supported")
        if not np.all(np.isfinite(array)):
            raise ValueError(f"state function {self.name!r} returned non-finite values")
        if self._shape is None:
            self._shape = array.shape
        elif array.shape != self._shape:
            raise ValueError(
                f"state function {self.name!r} changed output shape from "
                f"{self._shape} to {array.shape}")
        return array

    def probe_shape(self, observation: Observation) -> tuple:
        """Call once on ``observation`` and return the resulting feature shape."""
        return self(observation).shape

    def reset_shape(self) -> None:
        """Forget the cached shape (used when reusing a function across videos)."""
        self._shape = None
