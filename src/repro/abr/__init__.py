"""ABR (adaptive bitrate streaming) substrate: video, QoE, simulator, states,
network architectures and classic baselines.

This is the case-study domain of the paper: the original Pensieve algorithm is
decomposed into its state representation (:mod:`repro.abr.state`) and its
actor-critic architecture (:mod:`repro.abr.networks`), and the chunk-level
simulator (:mod:`repro.abr.env`) provides the training and evaluation
environment.
"""

from .baselines import (
    BASELINE_POLICIES,
    BolaPolicy,
    BufferBasedPolicy,
    FixedBitratePolicy,
    RandomPolicy,
    RateBasedPolicy,
    RobustMPCPolicy,
    make_baseline,
)
from .env import (
    HISTORY_LENGTH,
    ChunkLevelSimulator,
    ChunkRecord,
    ChunkStepResult,
    Observation,
    SessionResult,
    SimulatorConfig,
    StreamingSession,
    run_session,
)
from .networks import (
    NETWORK_BUILDER_NAME,
    ORIGINAL_NETWORK_SOURCE,
    ActorCriticNetwork,
    GenericActorCritic,
    NetworkBuilder,
    PensieveNetwork,
    original_network_builder,
)
from .qoe import HDQoE, LinearQoE, LogQoE, QoEMetric, make_qoe
from .state import (
    ORIGINAL_STATE_SOURCE,
    STATE_FUNCTION_NAME,
    STATE_FUNCTION_PARAMETERS,
    StateFunction,
    original_state_function,
)
from .video import (
    BITRATE_LADDERS_KBPS,
    CHUNK_DURATION_S,
    DEFAULT_CHUNK_COUNT,
    HIGH_LADDER_KBPS,
    STANDARD_LADDER_KBPS,
    Video,
    synthetic_video,
)

__all__ = [
    # video
    "Video", "synthetic_video", "BITRATE_LADDERS_KBPS", "STANDARD_LADDER_KBPS",
    "HIGH_LADDER_KBPS", "CHUNK_DURATION_S", "DEFAULT_CHUNK_COUNT",
    # qoe
    "QoEMetric", "LinearQoE", "LogQoE", "HDQoE", "make_qoe",
    # env
    "SimulatorConfig", "ChunkLevelSimulator", "ChunkStepResult", "Observation",
    "ChunkRecord", "SessionResult", "StreamingSession", "run_session",
    "HISTORY_LENGTH",
    # state
    "StateFunction", "original_state_function", "ORIGINAL_STATE_SOURCE",
    "STATE_FUNCTION_NAME", "STATE_FUNCTION_PARAMETERS",
    # networks
    "ActorCriticNetwork", "PensieveNetwork", "GenericActorCritic",
    "original_network_builder", "ORIGINAL_NETWORK_SOURCE",
    "NETWORK_BUILDER_NAME", "NetworkBuilder",
    # baselines
    "FixedBitratePolicy", "RandomPolicy", "BufferBasedPolicy", "RateBasedPolicy",
    "BolaPolicy", "RobustMPCPolicy", "BASELINE_POLICIES", "make_baseline",
]
