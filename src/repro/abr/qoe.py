"""Quality-of-experience (QoE) reward functions.

The paper adopts Pensieve's linear QoE metric ("QoE_lin") as the RL reward:

    QoE = q(R_t) - mu * T_rebuffer - |q(R_t) - q(R_{t-1})|

where ``q(R) = R`` in Mbit/s, ``mu`` is the rebuffering penalty (set to the
highest bitrate of the ladder in Mbit/s, as in Pensieve), and the last term
penalizes quality switches.  The logarithmic and HD variants from the MPC/
Pensieve literature are provided as well so that alternative reward shaping
can be explored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["QoEMetric", "LinearQoE", "LogQoE", "HDQoE", "make_qoe", "QOE_METRICS"]


@dataclass
class ChunkQoE:
    """Per-chunk QoE breakdown returned by :meth:`QoEMetric.chunk_reward_detail`."""

    quality: float
    rebuffer_penalty: float
    smoothness_penalty: float

    @property
    def total(self) -> float:
        return self.quality - self.rebuffer_penalty - self.smoothness_penalty


class QoEMetric:
    """Base class for per-chunk QoE rewards."""

    def __init__(self, bitrates_kbps: Sequence[int],
                 rebuffer_penalty: Optional[float] = None,
                 smoothness_penalty: float = 1.0) -> None:
        self.bitrates_kbps = tuple(int(b) for b in bitrates_kbps)
        if not self.bitrates_kbps:
            raise ValueError("bitrate ladder must not be empty")
        self.bitrates_mbps = np.asarray(self.bitrates_kbps, dtype=np.float64) / 1000.0
        # Pensieve sets the rebuffer penalty to the top bitrate in Mbps.
        self.rebuffer_penalty = (float(rebuffer_penalty) if rebuffer_penalty is not None
                                 else float(self.bitrates_mbps[-1]))
        self.smoothness_penalty = float(smoothness_penalty)

    # -- quality mapping -------------------------------------------------
    def quality(self, bitrate_index: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- rewards ---------------------------------------------------------
    def chunk_reward_detail(self, bitrate_index: int, rebuffer_s: float,
                            previous_bitrate_index: Optional[int]) -> ChunkQoE:
        """Compute the QoE breakdown for a single chunk."""
        if not 0 <= bitrate_index < len(self.bitrates_kbps):
            raise IndexError(f"bitrate index {bitrate_index} out of range")
        if rebuffer_s < 0:
            raise ValueError("rebuffering time cannot be negative")
        quality = self.quality(bitrate_index)
        rebuffer = self.rebuffer_penalty * rebuffer_s
        if previous_bitrate_index is None:
            smooth = 0.0
        else:
            smooth = self.smoothness_penalty * abs(
                quality - self.quality(previous_bitrate_index))
        return ChunkQoE(quality=quality, rebuffer_penalty=rebuffer,
                        smoothness_penalty=smooth)

    def chunk_reward(self, bitrate_index: int, rebuffer_s: float,
                     previous_bitrate_index: Optional[int]) -> float:
        """Scalar per-chunk reward (the RL reward used during training)."""
        return self.chunk_reward_detail(bitrate_index, rebuffer_s,
                                        previous_bitrate_index).total

    def session_reward(self, bitrate_indices: Sequence[int],
                       rebuffer_times_s: Sequence[float]) -> float:
        """Mean per-chunk reward over a whole streaming session."""
        if len(bitrate_indices) != len(rebuffer_times_s):
            raise ValueError("bitrate and rebuffer sequences must be equal length")
        if not bitrate_indices:
            return 0.0
        total = 0.0
        previous: Optional[int] = None
        for index, rebuffer in zip(bitrate_indices, rebuffer_times_s):
            total += self.chunk_reward(index, rebuffer, previous)
            previous = index
        return total / len(bitrate_indices)


class LinearQoE(QoEMetric):
    """``QoE_lin``: quality equals the bitrate in Mbit/s (the paper's reward)."""

    def quality(self, bitrate_index: int) -> float:
        return float(self.bitrates_mbps[bitrate_index])


class LogQoE(QoEMetric):
    """``QoE_log``: quality is ``log(R / R_min)``, emphasizing low-end gains."""

    def quality(self, bitrate_index: int) -> float:
        lowest = self.bitrates_mbps[0]
        return float(np.log(self.bitrates_mbps[bitrate_index] / lowest))


class HDQoE(QoEMetric):
    """``QoE_hd``: piecewise-constant quality that rewards HD renditions.

    Follows the MPC paper's assignment: the lower half of the ladder gets
    small scores, the upper half increasingly large ones.
    """

    def __init__(self, bitrates_kbps: Sequence[int],
                 rebuffer_penalty: Optional[float] = None,
                 smoothness_penalty: float = 1.0) -> None:
        super().__init__(bitrates_kbps, rebuffer_penalty, smoothness_penalty)
        n = len(self.bitrates_kbps)
        # Low renditions get 1..; the top rendition gets ~3x the ladder length.
        self._scores = np.array([1.0 + 2.0 * i for i in range(n)])
        if rebuffer_penalty is None:
            self.rebuffer_penalty = float(self._scores[-1])

    def quality(self, bitrate_index: int) -> float:
        return float(self._scores[bitrate_index])


QOE_METRICS = {
    "lin": LinearQoE,
    "linear": LinearQoE,
    "log": LogQoE,
    "hd": HDQoE,
}


def make_qoe(name: str, bitrates_kbps: Sequence[int], **kwargs) -> QoEMetric:
    """Construct a QoE metric by name ("lin", "log" or "hd")."""
    key = name.lower()
    if key not in QOE_METRICS:
        raise KeyError(f"unknown QoE metric {name!r}; known: {sorted(set(QOE_METRICS))}")
    return QOE_METRICS[key](bitrates_kbps, **kwargs)
