"""Classic (non-learned) ABR baseline algorithms.

These policies implement the standard comparison points from the ABR
literature cited by the paper (buffer-based, rate-based, BOLA and robust MPC)
plus trivial fixed/random policies.  All of them follow the same
``policy(observation) -> bitrate_index`` interface used by the simulator, the
emulator and the RL agent, so they can be dropped into any experiment driver.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .env import Observation
from .qoe import LinearQoE, QoEMetric

__all__ = [
    "FixedBitratePolicy",
    "RandomPolicy",
    "BufferBasedPolicy",
    "RateBasedPolicy",
    "BolaPolicy",
    "RobustMPCPolicy",
    "BASELINE_POLICIES",
    "make_baseline",
]


class FixedBitratePolicy:
    """Always selects the same bitrate index (useful as a sanity floor)."""

    def __init__(self, bitrate_index: int = 0) -> None:
        self.bitrate_index = int(bitrate_index)

    def __call__(self, observation: Observation) -> int:
        return min(self.bitrate_index, len(observation.bitrate_ladder_kbps) - 1)


class RandomPolicy:
    """Selects bitrates uniformly at random (seedable)."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)

    def __call__(self, observation: Observation) -> int:
        return int(self._rng.integers(len(observation.bitrate_ladder_kbps)))


class BufferBasedPolicy:
    """BBA-style buffer-based adaptation (Huang et al.).

    Maps the current buffer level linearly onto the bitrate ladder between a
    reservoir and a cushion: below the reservoir pick the lowest bitrate,
    above ``reservoir + cushion`` pick the highest.
    """

    def __init__(self, reservoir_s: float = 5.0, cushion_s: float = 25.0) -> None:
        if reservoir_s < 0 or cushion_s <= 0:
            raise ValueError("reservoir must be >= 0 and cushion > 0")
        self.reservoir_s = reservoir_s
        self.cushion_s = cushion_s

    def __call__(self, observation: Observation) -> int:
        levels = len(observation.bitrate_ladder_kbps)
        buffer_s = observation.buffer_s
        if buffer_s <= self.reservoir_s:
            return 0
        if buffer_s >= self.reservoir_s + self.cushion_s:
            return levels - 1
        fraction = (buffer_s - self.reservoir_s) / self.cushion_s
        return int(np.clip(round(fraction * (levels - 1)), 0, levels - 1))


class RateBasedPolicy:
    """Picks the highest bitrate below a conservative throughput prediction.

    The prediction is the harmonic mean of the recent throughput samples (the
    predictor used by Festive/MPC), optionally discounted by a safety factor.
    """

    def __init__(self, safety_factor: float = 1.0, window: int = 5) -> None:
        if safety_factor <= 0 or not 0 < window:
            raise ValueError("safety factor and window must be positive")
        self.safety_factor = safety_factor
        self.window = window

    def predict_throughput_mbps(self, observation: Observation) -> float:
        history = observation.throughput_mbps_history
        valid = history[history > 0][-self.window:]
        if len(valid) == 0:
            return 0.0
        harmonic = len(valid) / np.sum(1.0 / valid)
        return float(harmonic / self.safety_factor)

    def __call__(self, observation: Observation) -> int:
        prediction = self.predict_throughput_mbps(observation)
        ladder_mbps = observation.bitrate_ladder_kbps / 1000.0
        feasible = np.where(ladder_mbps <= prediction)[0]
        if len(feasible) == 0:
            return 0
        return int(feasible[-1])


class BolaPolicy:
    """BOLA: Lyapunov-based buffer control (Spiteri et al.).

    Chooses the bitrate maximizing ``(V * utility + V * gamma - buffer) / size``
    where utility is the log of the relative chunk size.  Parameters follow the
    dash.js defaults, adapted to the chunk duration in the observation.
    """

    def __init__(self, gamma_p: float = 5.0, buffer_target_s: float = 25.0) -> None:
        self.gamma_p = gamma_p
        self.buffer_target_s = buffer_target_s

    def __call__(self, observation: Observation) -> int:
        sizes = np.asarray(observation.next_chunk_sizes_bytes, dtype=np.float64)
        utilities = np.log(sizes / sizes[0])
        chunk_duration = observation.chunk_duration_s
        # Control parameter V chosen so the top bitrate is sustained at the
        # buffer target (standard BOLA-BASIC parameterization).
        v = (self.buffer_target_s - chunk_duration) / (utilities[-1] + self.gamma_p)
        buffer_chunks = observation.buffer_s
        scores = (v * (utilities + self.gamma_p) - buffer_chunks) / sizes
        best = int(np.argmax(scores))
        if scores[best] < 0 and observation.buffer_s > 0:
            # Negative score for every level means the buffer is comfortably
            # full; BOLA then keeps the highest sustainable level.
            return int(np.argmax(utilities))
        return best


class RobustMPCPolicy:
    """Robust model-predictive control over a short look-ahead horizon.

    Enumerates bitrate sequences for the next ``horizon`` chunks, simulates
    buffer evolution under a conservative throughput prediction (harmonic mean
    discounted by the recent maximum prediction error) and picks the first
    action of the best sequence under the QoE metric.
    """

    def __init__(self, horizon: int = 5, qoe: Optional[QoEMetric] = None,
                 window: int = 5) -> None:
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        self.horizon = horizon
        self.window = window
        self._qoe = qoe
        self._past_errors: list[float] = []
        self._last_prediction: Optional[float] = None

    def _qoe_metric(self, observation: Observation) -> QoEMetric:
        if self._qoe is None:
            self._qoe = LinearQoE(observation.bitrate_ladder_kbps.astype(int))
        return self._qoe

    def _predict_throughput(self, observation: Observation) -> float:
        history = observation.throughput_mbps_history
        valid = history[history > 0][-self.window:]
        if len(valid) == 0:
            return 0.1
        harmonic = len(valid) / np.sum(1.0 / valid)
        # Track prediction error to discount the next prediction (robust MPC).
        if self._last_prediction is not None and valid[-1] > 0:
            error = abs(self._last_prediction - valid[-1]) / valid[-1]
            self._past_errors.append(error)
            self._past_errors = self._past_errors[-self.window:]
        max_error = max(self._past_errors) if self._past_errors else 0.0
        prediction = harmonic / (1.0 + max_error)
        self._last_prediction = float(harmonic)
        return float(max(prediction, 1e-3))

    def __call__(self, observation: Observation) -> int:
        qoe = self._qoe_metric(observation)
        prediction_mbps = self._predict_throughput(observation)
        ladder_mbps = observation.bitrate_ladder_kbps / 1000.0
        levels = len(ladder_mbps)
        horizon = min(self.horizon, observation.remaining_chunks)
        chunk_duration = observation.chunk_duration_s
        next_sizes_mb = np.asarray(observation.next_chunk_sizes_bytes) * 8.0 / 1e6

        best_score = -np.inf
        best_first = observation.last_bitrate_index
        for sequence in itertools.product(range(levels), repeat=horizon):
            buffer_s = observation.buffer_s
            previous = observation.last_bitrate_index
            score = 0.0
            for step, level in enumerate(sequence):
                if step == 0:
                    download_mb = next_sizes_mb[level]
                else:
                    download_mb = ladder_mbps[level] * chunk_duration
                download_time = download_mb / prediction_mbps
                rebuffer = max(download_time - buffer_s, 0.0)
                buffer_s = max(buffer_s - download_time, 0.0) + chunk_duration
                score += qoe.chunk_reward(level, rebuffer, previous)
                previous = level
            if score > best_score:
                best_score = score
                best_first = sequence[0]
        return int(best_first)


BASELINE_POLICIES = {
    "fixed": FixedBitratePolicy,
    "random": RandomPolicy,
    "buffer_based": BufferBasedPolicy,
    "bba": BufferBasedPolicy,
    "rate_based": RateBasedPolicy,
    "bola": BolaPolicy,
    "robust_mpc": RobustMPCPolicy,
    "mpc": RobustMPCPolicy,
}


def make_baseline(name: str, **kwargs):
    """Instantiate a baseline policy by name."""
    key = name.lower()
    if key not in BASELINE_POLICIES:
        raise KeyError(f"unknown baseline {name!r}; known: {sorted(set(BASELINE_POLICIES))}")
    return BASELINE_POLICIES[key](**kwargs)
