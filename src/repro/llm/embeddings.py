"""Deterministic text embeddings (substitute for ``text-embedding-ada-002``).

The "Text Only" and "Text + Reward" early-stopping baselines in §3.4 of the
paper embed the generated code with OpenAI's embedding API and feed the vector
to the classifier.  Offline, this module provides a classical hashing
embedder: code is tokenized into identifiers, numbers and operators, and both
unigram and bigram tokens are hashed into a fixed-dimension vector (the
"hashing trick"), then L2-normalized.  The embedding is deterministic,
order-sensitive via bigrams, and captures lexical similarity between designs —
which is all the baseline requires.
"""

from __future__ import annotations

import hashlib
import re
from typing import List, Sequence

import numpy as np

__all__ = ["HashingEmbedder", "tokenize_code"]

_TOKEN_PATTERN = re.compile(r"[A-Za-z_][A-Za-z_0-9]*|\d+\.?\d*|[^\sA-Za-z0-9_]")


def tokenize_code(text: str) -> List[str]:
    """Split source code into identifier / number / operator tokens."""
    return _TOKEN_PATTERN.findall(text)


class HashingEmbedder:
    """Fixed-dimension hashing embedder for source code."""

    def __init__(self, dimension: int = 256, use_bigrams: bool = True) -> None:
        if dimension < 8:
            raise ValueError("embedding dimension must be at least 8")
        self.dimension = dimension
        self.use_bigrams = use_bigrams

    # ------------------------------------------------------------------ #
    def _bucket(self, token: str) -> tuple[int, float]:
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        index = int.from_bytes(digest[:4], "little") % self.dimension
        sign = 1.0 if digest[4] % 2 == 0 else -1.0
        return index, sign

    def embed(self, text: str) -> np.ndarray:
        """Embed one document into a unit-norm vector of ``dimension`` floats."""
        tokens = tokenize_code(text)
        vector = np.zeros(self.dimension)
        grams: List[str] = list(tokens)
        if self.use_bigrams:
            grams.extend(f"{a}␟{b}" for a, b in zip(tokens, tokens[1:]))
        for gram in grams:
            index, sign = self._bucket(gram)
            vector[index] += sign
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector = vector / norm
        return vector

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed several documents; returns an ``(n, dimension)`` array."""
        if not texts:
            return np.zeros((0, self.dimension))
        return np.stack([self.embed(text) for text in texts])

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two documents' embeddings."""
        return float(np.dot(self.embed(a), self.embed(b)))
