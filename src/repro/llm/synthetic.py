"""Synthetic LLM: the offline substitute for GPT-3.5 / GPT-4.

The Nada pipeline only interacts with an LLM through prompts that contain an
existing code block and a request for an alternative design, and it only
consumes the code block in the response.  :class:`SyntheticLLM` reproduces
that contract offline: it parses the request type (state vs. network) from the
prompt, samples a design from :mod:`repro.llm.design_space`, and wraps it in a
chat-style response (a short chain-of-thought preamble followed by a fenced
code block).

Two built-in profiles calibrate the *defect rates* to Table 2 of the paper:

=========  ============  ==============================  ==========
profile    compilable    well-normalized | compilable     creativity
=========  ============  ==============================  ==========
gpt-3.5    41.2%         66.5% (822 / 1237)               lower
gpt-4      68.6%         73.1% (1505 / 2059)              higher
=========  ============  ==============================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .base import ChatMessage, Completion
from .design_space import (
    DesignSample,
    NetworkDesignSpace,
    StateDesignSpace,
)

__all__ = ["LLMProfile", "PROFILES", "SyntheticLLM"]


@dataclass(frozen=True)
class LLMProfile:
    """Statistical profile of a model's code-generation behaviour."""

    name: str
    #: Probability a generated design passes the compilation (trial-run) check.
    compile_success_rate: float
    #: Probability a *compilable* state design is well normalized.
    normalized_given_compilable: float
    #: How adventurous the designs are (0 = conservative, 1 = very creative).
    creativity: float

    def __post_init__(self) -> None:
        for value in (self.compile_success_rate, self.normalized_given_compilable,
                      self.creativity):
            if not 0.0 <= value <= 1.0:
                raise ValueError("profile probabilities must be within [0, 1]")


#: Profiles calibrated against Table 2 of the paper.
PROFILES = {
    "gpt-3.5": LLMProfile("gpt-3.5", compile_success_rate=0.412,
                          normalized_given_compilable=0.665, creativity=0.40),
    "gpt-4": LLMProfile("gpt-4", compile_success_rate=0.686,
                        normalized_given_compilable=0.731, creativity=0.70),
}

_COMPILE_DEFECTS_STATE = ("syntax", "runtime", "shape", "nan")
_COMPILE_DEFECTS_NETWORK = ("syntax", "runtime", "shape")
_NORMALIZATION_DEFECTS = ("raw_sizes", "raw_bitrate")


class SyntheticLLM:
    """Deterministic, seedable stand-in for a code-generating chat model."""

    def __init__(self, profile: str | LLMProfile = "gpt-4",
                 seed: Optional[int] = None) -> None:
        if isinstance(profile, str):
            key = profile.lower()
            if key not in PROFILES:
                raise KeyError(f"unknown profile {profile!r}; known: {sorted(PROFILES)}")
            profile = PROFILES[key]
        self.profile = profile
        self.model_name = f"synthetic-{profile.name}"
        self._rng = np.random.default_rng(seed)
        self._state_space = StateDesignSpace()
        self._network_space = NetworkDesignSpace()
        self._calls = 0
        #: The last sampled design (inspectable by tests and analysis code).
        self.last_sample: Optional[DesignSample] = None

    # ------------------------------------------------------------------ #
    def complete(self, messages: Sequence[ChatMessage],
                 temperature: float = 1.0,
                 seed: Optional[int] = None) -> Completion:
        """Produce a chat completion containing one generated code block."""
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        prompt_text = "\n".join(m.content for m in messages)
        kind = self._infer_kind(prompt_text)
        sample = self.generate_design(kind, rng=rng)
        self.last_sample = sample
        self._calls += 1
        text = self._render_response(sample)
        return Completion(
            text=text,
            model=self.model_name,
            prompt_tokens=len(prompt_text.split()),
            completion_tokens=len(text.split()),
            metadata={"kind": kind, "tags": list(sample.tags)},
        )

    # ------------------------------------------------------------------ #
    def generate_design(self, kind: str,
                        rng: Optional[np.random.Generator] = None) -> DesignSample:
        """Directly sample a design of ``kind`` ("state" or "network")."""
        rng = rng if rng is not None else self._rng
        defect = self._sample_defect(kind, rng)
        if kind == "state":
            return self._state_space.sample(rng, defect=defect,
                                            creativity=self.profile.creativity)
        if kind == "network":
            return self._network_space.sample(rng, defect=defect,
                                              creativity=self.profile.creativity)
        raise ValueError(f"unknown design kind {kind!r}")

    def _sample_defect(self, kind: str, rng: np.random.Generator) -> Optional[str]:
        if rng.random() > self.profile.compile_success_rate:
            pool = (_COMPILE_DEFECTS_STATE if kind == "state"
                    else _COMPILE_DEFECTS_NETWORK)
            return str(rng.choice(pool))
        if kind == "state" and rng.random() > self.profile.normalized_given_compilable:
            return str(rng.choice(_NORMALIZATION_DEFECTS))
        return None

    # ------------------------------------------------------------------ #
    @staticmethod
    def _infer_kind(prompt_text: str) -> str:
        lowered = prompt_text.lower()
        network_markers = ("neural network", "architecture", "build_network",
                           "actor-critic network")
        state_markers = ("state representation", "state_func", "state design",
                         "rl state")
        network_score = sum(marker in lowered for marker in network_markers)
        state_score = sum(marker in lowered for marker in state_markers)
        if network_score > state_score:
            return "network"
        return "state"

    def _render_response(self, sample: DesignSample) -> str:
        """Wrap the code block in a chain-of-thought style chat response."""
        ideas = {
            "state": [
                "re-normalize the existing features to a symmetric range",
                "summarize throughput history with smoothed statistics",
                "add predictive features for future throughput and download time",
                "incorporate the playback-buffer trend, which the original state ignores",
                "prune features that add noise in simple environments",
            ],
            "network": [
                "widen the fully connected layers",
                "swap the 1-D convolution for a recurrent encoder",
                "share the hidden layer between the actor and the critic",
                "switch the activation function for better gradient flow",
            ],
        }[sample.kind]
        chosen = ", ".join(sample.tags) if sample.tags else "a refined baseline"
        bullet_list = "\n".join(f"{i + 1}. {idea}" for i, idea in enumerate(ideas))
        return (
            "Let me analyse the existing implementation step by step.\n\n"
            f"Possible improvement directions:\n{bullet_list}\n\n"
            f"I will implement the most promising combination ({chosen}).\n\n"
            "```python\n"
            f"{sample.code}\n"
            "```\n"
        )
