"""Client for OpenAI-compatible chat-completion HTTP APIs.

This is the backend the paper actually used (GPT-3.5 / GPT-4).  It implements
the same :class:`~repro.llm.base.LLMClient` protocol as the offline
:class:`~repro.llm.synthetic.SyntheticLLM`, so switching between the two is a
one-line change in pipeline configuration.  The implementation uses only the
standard library (``urllib``) and raises a clear error when no endpoint or
API key is configured (e.g. in the offline reproduction environment).
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from typing import Optional, Sequence

from .base import ChatMessage, Completion

__all__ = ["OpenAICompatError", "OpenAICompatClient"]


class OpenAICompatError(RuntimeError):
    """Raised when the remote API cannot be reached or returns an error."""


class OpenAICompatClient:
    """Minimal chat-completions client for OpenAI-compatible endpoints."""

    def __init__(self, model: str = "gpt-4",
                 api_key: Optional[str] = None,
                 base_url: Optional[str] = None,
                 timeout_s: float = 120.0) -> None:
        self.model_name = model
        self.api_key = api_key if api_key is not None else os.environ.get("OPENAI_API_KEY")
        self.base_url = (base_url if base_url is not None
                         else os.environ.get("OPENAI_BASE_URL", "https://api.openai.com/v1"))
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------ #
    def complete(self, messages: Sequence[ChatMessage],
                 temperature: float = 1.0,
                 seed: Optional[int] = None) -> Completion:
        """Send a chat-completion request and return the first choice."""
        if not self.api_key:
            raise OpenAICompatError(
                "no API key configured (set OPENAI_API_KEY); use "
                "repro.llm.SyntheticLLM for offline experiments")
        payload = {
            "model": self.model_name,
            "messages": [{"role": m.role, "content": m.content} for m in messages],
            "temperature": temperature,
        }
        if seed is not None:
            payload["seed"] = int(seed)
        request = urllib.request.Request(
            url=f"{self.base_url.rstrip('/')}/chat/completions",
            data=json.dumps(payload).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "Authorization": f"Bearer {self.api_key}",
            },
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                body = json.loads(response.read().decode("utf-8"))
        except urllib.error.URLError as exc:  # pragma: no cover - needs network
            raise OpenAICompatError(f"chat-completion request failed: {exc}") from exc

        try:
            choice = body["choices"][0]
            text = choice["message"]["content"]
            usage = body.get("usage", {})
        except (KeyError, IndexError) as exc:
            raise OpenAICompatError(f"malformed API response: {body!r}") from exc
        return Completion(
            text=text,
            model=body.get("model", self.model_name),
            prompt_tokens=int(usage.get("prompt_tokens", 0)),
            completion_tokens=int(usage.get("completion_tokens", 0)),
            metadata={"finish_reason": choice.get("finish_reason")},
        )
