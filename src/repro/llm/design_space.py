"""Design-space grammar behind the synthetic LLM.

The paper's LLMs produce *code blocks*: alternative implementations of the
state function and of the actor-critic architecture.  This module defines the
space of such code blocks as explicit, composable specifications
(:class:`StateDesignSpec`, :class:`NetworkDesignSpec`) together with emitters
that render a specification into Python source code.

The grammar covers:

* every concrete design idea §4 of the paper attributes to GPT-3.5/GPT-4
  (renormalization to [-1, 1], larger normalizing factors, feature removal,
  exponential moving averages, throughput variance, linear-regression
  prediction of throughput/download time, Savitzky-Golay buffer trends,
  buffer differences, wider hidden layers, Leaky ReLU, RNN/LSTM encoders,
  shared actor-critic trunks);
* the failure modes the paper's pre-checks target (code that raises at run
  time, code with syntax errors, and states with unnormalized features such as
  chunk sizes in raw bytes).
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "StateDesignSpec",
    "NetworkDesignSpec",
    "DesignSample",
    "StateDesignSpace",
    "NetworkDesignSpace",
    "STATE_EXTRA_FEATURES",
    "NETWORK_ENCODERS",
    "DEFECTS",
]

#: Optional feature blocks a state design may include.
STATE_EXTRA_FEATURES = (
    "throughput_ema",
    "throughput_variance",
    "throughput_trend",
    "predicted_throughput",
    "predicted_download_time",
    "buffer_trend_savgol",
    "buffer_diff",
    "buffer_trend_poly",
    "download_time_ema",
)

#: Encoders a generated architecture may use for the temporal state rows.
NETWORK_ENCODERS = ("pensieve_conv", "conv", "flatten", "rnn", "gru", "lstm")

#: Injectable defects (``None`` means a healthy design).
DEFECTS = ("syntax", "runtime", "shape", "raw_sizes", "raw_bitrate", "nan")


@dataclass
class DesignSample:
    """A rendered code block plus the specification that produced it."""

    code: str
    kind: str  # "state" or "network"
    spec: object
    tags: tuple[str, ...] = ()

    def describe(self) -> str:
        return f"{self.kind} design [{', '.join(self.tags) or 'baseline'}]"


# --------------------------------------------------------------------------- #
# State designs
# --------------------------------------------------------------------------- #
@dataclass
class StateDesignSpec:
    """Specification of one state-function design."""

    #: Normalization style: "unit" ([0,1]-ish, the original), "signed"
    #: (remapped to [-1,1]), "aggressive" (larger normalizing factors) or
    #: "mild" (smaller factors).
    normalization: str = "unit"
    #: Whether the download-time history row is kept.
    include_download_time: bool = True
    #: Whether the next-chunk-size row is kept.
    include_next_sizes: bool = True
    #: Extra engineered features, each adding one row to the state.
    extra_features: tuple[str, ...] = ()
    #: Injected defect (None for a healthy design).
    defect: Optional[str] = None

    def __post_init__(self) -> None:
        if self.normalization not in ("unit", "signed", "aggressive", "mild"):
            raise ValueError(f"unknown normalization {self.normalization!r}")
        for feature in self.extra_features:
            if feature not in STATE_EXTRA_FEATURES:
                raise ValueError(f"unknown extra feature {feature!r}")
        if self.defect is not None and self.defect not in DEFECTS:
            raise ValueError(f"unknown defect {self.defect!r}")

    @property
    def tags(self) -> tuple[str, ...]:
        tags = [f"norm:{self.normalization}"]
        if not self.include_download_time:
            tags.append("drop:download_time")
        if not self.include_next_sizes:
            tags.append("drop:next_sizes")
        tags.extend(f"feat:{f}" for f in self.extra_features)
        if self.defect:
            tags.append(f"defect:{self.defect}")
        return tuple(tags)


_NORMALIZATION_FACTORS = {
    # (buffer divisor, throughput divisor, download-time divisor)
    "unit": (10.0, 8.0, 10.0),
    "signed": (10.0, 8.0, 10.0),
    "aggressive": (30.0, 20.0, 20.0),
    "mild": (5.0, 4.0, 5.0),
}

_FEATURE_SNIPPETS = {
    "throughput_ema": """
    # Exponential moving average of throughput to smooth out noise.
    ema = np.zeros(history_len)
    running = throughput[0]
    for i in range(history_len):
        running = 0.7 * running + 0.3 * throughput[i]
        ema[i] = running
    rows.append(ema / {thr_div})
""",
    "throughput_variance": """
    # Throughput variability signals how risky a high bitrate would be.
    variance = float(np.var(throughput / {thr_div}))
    rows.append(np.full(history_len, variance))
""",
    "throughput_trend": """
    # Linear trend of recent throughput (positive means improving network).
    x_axis = np.arange(history_len, dtype=float)
    slope = float(np.polyfit(x_axis, throughput / {thr_div}, 1)[0])
    rows.append(np.full(history_len, np.clip(slope, -5.0, 5.0)))
""",
    "predicted_throughput": """
    # Predict the next throughput sample with a linear regression.
    x_axis = np.arange(history_len, dtype=float)
    coeffs = np.polyfit(x_axis, throughput, 1)
    predicted = float(np.polyval(coeffs, history_len))
    rows.append(np.full(history_len, max(predicted, 0.0) / {thr_div}))
""",
    "predicted_download_time": """
    # Predict the download time of the next chunk from the recent history.
    x_axis = np.arange(history_len, dtype=float)
    coeffs = np.polyfit(x_axis, download_time, 1)
    predicted_dl = float(np.polyval(coeffs, history_len))
    rows.append(np.full(history_len, np.clip(predicted_dl, 0.0, 100.0) / {dl_div}))
""",
    "buffer_trend_savgol": """
    # Smooth the buffer history with a Savitzky-Golay filter and use its trend.
    from scipy.signal import savgol_filter
    window = history_len if history_len % 2 == 1 else history_len - 1
    smoothed = savgol_filter(buffer_hist, window_length=max(window, 3), polyorder=1)
    rows.append(np.asarray(smoothed) / {buf_div})
""",
    "buffer_diff": """
    # Buffer change between adjacent steps: growing buffer invites higher bitrates.
    diffs = np.diff(buffer_hist, prepend=buffer_hist[0])
    rows.append(diffs / {buf_div})
""",
    "buffer_trend_poly": """
    # Linear trend of the playback buffer over the history window.
    x_axis = np.arange(history_len, dtype=float)
    buffer_slope = float(np.polyfit(x_axis, buffer_hist / {buf_div}, 1)[0])
    rows.append(np.full(history_len, np.clip(buffer_slope, -10.0, 10.0)))
""",
    "download_time_ema": """
    # Smoothed download times complement the raw history row.
    dl_ema = np.zeros(history_len)
    running_dl = download_time[0]
    for i in range(history_len):
        running_dl = 0.6 * running_dl + 0.4 * download_time[i]
        dl_ema[i] = running_dl
    rows.append(dl_ema / {dl_div})
""",
}


class StateDesignSpace:
    """Samples and renders state-function designs."""

    def render(self, spec: StateDesignSpec) -> str:
        """Render a specification into the source of a ``state_func`` block."""
        buf_div, thr_div, dl_div = _NORMALIZATION_FACTORS[spec.normalization]
        lines: List[str] = []
        lines.append("import numpy as np")
        lines.append("")
        lines.append("")
        lines.append("def state_func(bitrate_kbps_history, throughput_mbps_history,")
        lines.append("               download_time_s_history, buffer_size_s_history,")
        lines.append("               next_chunk_sizes_bytes, remaining_chunk_count,")
        lines.append("               total_chunk_count, bitrate_ladder_kbps):")
        lines.append('    """Alternative RL state representation for ABR."""')
        lines.append("    ladder = np.asarray(bitrate_ladder_kbps, dtype=float)")
        lines.append("    bitrates = np.asarray(bitrate_kbps_history, dtype=float)")
        lines.append("    throughput = np.asarray(throughput_mbps_history, dtype=float)")
        lines.append("    download_time = np.asarray(download_time_s_history, dtype=float)")
        lines.append("    buffer_hist = np.asarray(buffer_size_s_history, dtype=float)")
        lines.append("    sizes = np.asarray(next_chunk_sizes_bytes, dtype=float)")
        lines.append("    history_len = len(throughput)")
        lines.append("    rows = []")

        def add(snippet: str) -> None:
            rendered = snippet.format(buf_div=buf_div, thr_div=thr_div, dl_div=dl_div)
            lines.extend(rendered.rstrip("\n").split("\n"))

        # -- core rows ------------------------------------------------------
        if spec.defect == "raw_bitrate":
            add("""
    # (defective) previously selected bitrates left in raw kbps
    rows.append(bitrates)
""")
        else:
            add("""
    # Previously selected bitrates, relative to the top of the ladder.
    rows.append(bitrates / ladder[-1])
""")
        add("""
    # Playback buffer history.
    rows.append(buffer_hist / {buf_div})
    # Measured throughput history.
    rows.append(throughput / {thr_div})
""")
        if spec.include_download_time:
            add("""
    # Chunk download-time history.
    rows.append(download_time / {dl_div})
""")
        if spec.include_next_sizes:
            if spec.defect == "raw_sizes":
                add("""
    # (defective) next-chunk sizes left in raw bytes
    padded_sizes = np.zeros(history_len)
    count = min(len(sizes), history_len)
    padded_sizes[:count] = sizes[:count]
    rows.append(padded_sizes)
""")
            else:
                add("""
    # Sizes of the next chunk at each bitrate, in megabytes.
    padded_sizes = np.zeros(history_len)
    count = min(len(sizes), history_len)
    padded_sizes[:count] = sizes[:count] / 1e6
    rows.append(padded_sizes)
""")
        add("""
    # Fraction of the video that remains.
    rows.append(np.full(history_len, float(remaining_chunk_count) / max(float(total_chunk_count), 1.0)))
""")

        # -- extra engineered features ---------------------------------------
        for feature in spec.extra_features:
            add(_FEATURE_SNIPPETS[feature])

        # -- defects that alter the epilogue ----------------------------------
        if spec.defect == "runtime":
            lines.append("    rows.append(previous_quality_level / ladder[-1])")
        if spec.defect == "nan":
            lines.append("    rows.append(np.full(history_len, float('nan')))")

        lines.append("    state = np.stack(rows)")
        if spec.normalization == "signed":
            lines.append("    # Remap features from [0, 1] to [-1, 1].")
            lines.append("    state = 2.0 * state - 1.0")
        if spec.defect == "shape":
            lines.append("    state = state.reshape(state.shape[0], state.shape[1], 1, 1)")
        lines.append("    return state")

        source = "\n".join(lines)
        if spec.defect == "syntax":
            # Drop a closing parenthesis somewhere in the body.
            source = source.replace("np.stack(rows)", "np.stack(rows", 1)
        return source

    # ------------------------------------------------------------------ #
    def sample_spec(self, rng: np.random.Generator,
                    defect: Optional[str] = None,
                    creativity: float = 0.5) -> StateDesignSpec:
        """Draw a random specification.

        ``creativity`` controls how many optional features the design tends to
        include (the higher-capability model profile uses a larger value).
        """
        normalization = rng.choice(["unit", "signed", "aggressive", "mild"],
                                   p=[0.4, 0.25, 0.2, 0.15])
        include_download_time = bool(rng.random() > 0.15)
        include_next_sizes = bool(rng.random() > 0.15)
        if defect == "raw_sizes":
            # The defect lives in the next-sizes row; keep the row present so
            # every "raw_sizes" sample actually contains the defect.
            include_next_sizes = True
        n_extra = int(rng.binomial(3, creativity * 0.6))
        extras = tuple(rng.choice(STATE_EXTRA_FEATURES, size=n_extra,
                                  replace=False)) if n_extra else ()
        return StateDesignSpec(
            normalization=str(normalization),
            include_download_time=include_download_time,
            include_next_sizes=include_next_sizes,
            extra_features=extras,
            defect=defect,
        )

    def sample(self, rng: np.random.Generator, defect: Optional[str] = None,
               creativity: float = 0.5) -> DesignSample:
        spec = self.sample_spec(rng, defect=defect, creativity=creativity)
        return DesignSample(code=self.render(spec), kind="state", spec=spec,
                            tags=spec.tags)


# --------------------------------------------------------------------------- #
# Network designs
# --------------------------------------------------------------------------- #
@dataclass
class NetworkDesignSpec:
    """Specification of one actor-critic architecture design."""

    hidden_size: int = 128
    activation: str = "relu"
    encoder: str = "pensieve_conv"
    kernel_size: int = 4
    share_trunk: bool = False
    extra_depth: int = 0
    defect: Optional[str] = None

    def __post_init__(self) -> None:
        if self.encoder not in NETWORK_ENCODERS:
            raise ValueError(f"unknown encoder {self.encoder!r}")
        if self.defect is not None and self.defect not in DEFECTS:
            raise ValueError(f"unknown defect {self.defect!r}")
        if self.hidden_size < 1:
            raise ValueError("hidden size must be positive")

    @property
    def tags(self) -> tuple[str, ...]:
        tags = [f"hidden:{self.hidden_size}", f"act:{self.activation}",
                f"enc:{self.encoder}"]
        if self.share_trunk:
            tags.append("shared_trunk")
        if self.extra_depth:
            tags.append(f"depth:+{self.extra_depth}")
        if self.defect:
            tags.append(f"defect:{self.defect}")
        return tuple(tags)


class NetworkDesignSpace:
    """Samples and renders actor-critic architecture designs.

    Rendered code uses the ``nn_library`` module that the code sandbox injects
    (it exposes :class:`~repro.abr.networks.PensieveNetwork` and
    :class:`~repro.abr.networks.GenericActorCritic`), mirroring how the paper's
    generated TensorFlow code relied on the surrounding Pensieve code base.
    """

    def render(self, spec: NetworkDesignSpec) -> str:
        if spec.encoder == "pensieve_conv":
            body = textwrap.dedent(f"""
                def build_network(state_shape, num_actions, rng=None):
                    \"\"\"Pensieve-style per-row branches with modified hyper-parameters.\"\"\"
                    return nn_library.PensieveNetwork(
                        state_shape,
                        num_actions,
                        hidden_size={spec.hidden_size},
                        kernel_size={spec.kernel_size},
                        activation="{spec.activation}",
                        rng=rng,
                    )
            """).strip()
        else:
            encoder = "conv" if spec.encoder == "conv" else spec.encoder
            hidden_sizes = [spec.hidden_size] * (1 + max(spec.extra_depth, 0) + 1)
            body = textwrap.dedent(f"""
                def build_network(state_shape, num_actions, rng=None):
                    \"\"\"Alternative actor-critic: {encoder} encoder, {spec.hidden_size} hidden units.\"\"\"
                    return nn_library.GenericActorCritic(
                        state_shape,
                        num_actions,
                        hidden_sizes={tuple(hidden_sizes)},
                        activation="{spec.activation}",
                        encoder="{encoder}",
                        share_trunk={spec.share_trunk},
                        rng=rng,
                    )
            """).strip()
        source = "import numpy as np\n\n\n" + body

        if spec.defect == "runtime":
            source = source.replace("nn_library.GenericActorCritic",
                                    "nn_library.TransformerActorCritic")
            source = source.replace("nn_library.PensieveNetwork",
                                    "nn_library.TransformerActorCritic")
        elif spec.defect == "shape":
            source += "\n\n\ndef build_network(state_shape, num_actions, rng=None):\n    return None\n"
        elif spec.defect == "syntax":
            source = source.replace("state_shape,\n", "state_shape,,\n", 1)
            if ",," not in source:
                source = source.replace("(state_shape", "((state_shape", 1)
        elif spec.defect == "nan":
            source = source.replace(
                "def build_network(state_shape, num_actions, rng=None):",
                "def build_network(state_shape, num_actions, rng=None):\n"
                "    num_actions = int(num_actions * float('nan')) if False else num_actions",
                1)
        return source

    # ------------------------------------------------------------------ #
    def sample_spec(self, rng: np.random.Generator,
                    defect: Optional[str] = None,
                    creativity: float = 0.5) -> NetworkDesignSpec:
        hidden_size = int(rng.choice([64, 96, 128, 192, 256],
                                     p=[0.15, 0.1, 0.35, 0.1, 0.3]))
        activation = str(rng.choice(["relu", "leaky_relu", "elu", "tanh"],
                                    p=[0.4, 0.3, 0.15, 0.15]))
        # More "creative" profiles try non-convolutional encoders more often.
        p_alt = 0.25 + 0.4 * creativity
        if rng.random() < p_alt:
            encoder = str(rng.choice(["rnn", "gru", "lstm", "flatten", "conv"],
                                     p=[0.22, 0.2, 0.28, 0.15, 0.15]))
        else:
            encoder = "pensieve_conv"
        return NetworkDesignSpec(
            hidden_size=hidden_size,
            activation=activation,
            encoder=encoder,
            kernel_size=int(rng.choice([3, 4, 5], p=[0.25, 0.55, 0.2])),
            share_trunk=bool(rng.random() < 0.25),
            extra_depth=int(rng.integers(0, 2)),
            defect=defect,
        )

    def sample(self, rng: np.random.Generator, defect: Optional[str] = None,
               creativity: float = 0.5) -> DesignSample:
        spec = self.sample_spec(rng, defect=defect, creativity=creativity)
        return DesignSample(code=self.render(spec), kind="network", spec=spec,
                            tags=spec.tags)
