"""LLM client abstraction.

Nada only requires an LLM that, given a prompt containing an existing code
block and instructions, returns text containing a new code block.  This module
defines that minimal interface (:class:`LLMClient`) plus the chat-message data
types, so the rest of the framework is agnostic to whether the backend is a
real API (``repro.llm.openai_compat``) or the offline synthetic generator
(``repro.llm.synthetic``) used in this reproduction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, runtime_checkable

__all__ = [
    "ChatMessage",
    "Completion",
    "LLMClient",
    "extract_code_blocks",
    "first_code_block",
]


@dataclass(frozen=True)
class ChatMessage:
    """One message in a chat conversation."""

    role: str  # "system", "user" or "assistant"
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"invalid role {self.role!r}")


@dataclass
class Completion:
    """A model response plus bookkeeping metadata."""

    text: str
    model: str
    prompt_tokens: int = 0
    completion_tokens: int = 0
    metadata: dict = field(default_factory=dict)


@runtime_checkable
class LLMClient(Protocol):
    """Minimal protocol every LLM backend must implement."""

    #: Human-readable model identifier (e.g. "gpt-3.5", "gpt-4", "synthetic").
    model_name: str

    def complete(self, messages: Sequence[ChatMessage],
                 temperature: float = 1.0,
                 seed: Optional[int] = None) -> Completion:
        """Generate a completion for a chat conversation."""
        ...


_CODE_BLOCK_PATTERN = re.compile(r"```(?:python)?\s*\n(.*?)```", re.DOTALL)


def extract_code_blocks(text: str) -> List[str]:
    """Extract every fenced code block from an LLM response."""
    blocks = [match.strip() for match in _CODE_BLOCK_PATTERN.findall(text)]
    return [block for block in blocks if block]


def first_code_block(text: str) -> Optional[str]:
    """The first fenced code block in ``text``, or ``None`` if there is none.

    If the response contains no fences at all but looks like bare code (starts
    with ``import`` or ``def``), the whole response is returned — a common
    failure mode of code-generation models that the pipeline tolerates.
    """
    blocks = extract_code_blocks(text)
    if blocks:
        return blocks[0]
    stripped = text.strip()
    if stripped.startswith(("import ", "def ", "from ", "#")):
        return stripped
    return None
