"""LLM substrate: client interfaces, the synthetic design generator,
embeddings and an optional OpenAI-compatible HTTP backend."""

from .base import (
    ChatMessage,
    Completion,
    LLMClient,
    extract_code_blocks,
    first_code_block,
)
from .design_space import (
    DEFECTS,
    DesignSample,
    NETWORK_ENCODERS,
    NetworkDesignSpace,
    NetworkDesignSpec,
    STATE_EXTRA_FEATURES,
    StateDesignSpace,
    StateDesignSpec,
)
from .embeddings import HashingEmbedder, tokenize_code
from .openai_compat import OpenAICompatClient, OpenAICompatError
from .synthetic import PROFILES, LLMProfile, SyntheticLLM

__all__ = [
    "ChatMessage", "Completion", "LLMClient", "extract_code_blocks",
    "first_code_block",
    "DesignSample", "StateDesignSpec", "StateDesignSpace", "NetworkDesignSpec",
    "NetworkDesignSpace", "STATE_EXTRA_FEATURES", "NETWORK_ENCODERS", "DEFECTS",
    "HashingEmbedder", "tokenize_code",
    "SyntheticLLM", "LLMProfile", "PROFILES",
    "OpenAICompatClient", "OpenAICompatError",
]
