"""Command-line interface for the Nada reproduction.

The subcommands cover the common workflows:

``run``
    Run a Nada campaign in one of the paper's environments (or
    ``--environment all`` for every registered environment) and print the
    resulting summary and best design.

``campaign``
    Sweep several environments through one scheduled work-graph: every
    environment's evaluation jobs share the scheduler's worker pool and
    (optionally) one persistent result store, so repeated campaigns skip
    already-scored work.

``traces``
    Generate a synthetic trace dataset (train/test split) and write it to disk
    in Pensieve format (one ``.log`` file per trace).

``baselines``
    Evaluate the classic ABR baselines (and optionally a freshly trained
    original-Pensieve agent) on an environment's test traces.

``serve``
    Drive a policy through the event-driven fleet emulator under synthetic
    heavy traffic (configurable session count, arrival process and trace
    mix), answering each decision tick with one batched policy forward, and
    report decisions/sec, sessions/sec and p50/p95/p99 decision latency.

``worker``
    Connect to a campaign coordinator (``--backend remote`` on ``run`` /
    ``campaign``) and pull evaluation jobs until told to stop.  Normally
    launched automatically as subprocesses by the coordinator; run it by
    hand to attach extra workers to a live campaign.

``report``
    Summarize a telemetry directory recorded with ``--telemetry DIR``: cache
    hit-rate, worker utilization, top time sinks, the compile fallback table
    and the slowest designs.  ``--trace out.json`` on a campaign additionally
    writes a Chrome-trace file loadable in Perfetto (https://ui.perfetto.dev).

``lint``
    Static analysis.  ``repro lint --self`` (the default) runs the repo
    contract linter over ``src/repro`` plus the design auditor's self-check
    corpus; ``repro lint --designs DIR`` audits every ``*.py`` design code
    block under DIR without executing it.  ``--json`` emits the structured
    findings instead of the rendered report.  Exit code 0 means clean.

Result tables and summaries print to stdout; progress commentary goes
through :mod:`repro.log` to stderr and is controlled by ``--verbose`` /
``--quiet`` on every subcommand.

Training schedules default to each environment's published Table 1 settings
(``EnvironmentSpec.train_epochs`` / ``test_interval``) scaled by
``--schedule-scale``, so Starlink trains under its own 10x-shorter budget
while FCC/4G/5G use theirs; explicit ``--train-epochs`` /
``--checkpoint-interval`` flags override the registry.

Invoke via ``python -m repro <subcommand> --help``.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import nn
from .abr import make_baseline, run_session, synthetic_video
from .analysis import render_table
from .core import (CampaignScheduler, EvaluationConfig, NadaCampaign,
                   NadaConfig, NadaPipeline, NoWorkersError, ParallelConfig,
                   RemoteConfig, RemoteExecutor, ResultStore, faults,
                   telemetry)
from .log import configure as configure_logging, get_logger
from .rl import A2CConfig
from .traces import ENVIRONMENTS, build_dataset, list_environments, save_traceset

__all__ = ["main", "build_parser", "resolve_schedule"]

logger = get_logger("cli")

#: Default fraction of the published Table 1 schedule used by the CLI.  At
#: this scale the FCC/4G/5G epoch budget lands on 60 training epochs and
#: Starlink on its proportionally shorter budget.  The checkpoint cadence
#: follows the published epochs/interval ratio too (at this scale: a
#: checkpoint every epoch), which evaluates more checkpoints per run than
#: the old hardcoded interval of 15 did — pass --checkpoint-interval to
#: override.
DEFAULT_SCHEDULE_SCALE = 0.0015


def resolve_schedule(environment: str,
                     train_epochs: Optional[int],
                     checkpoint_interval: Optional[int],
                     schedule_scale: float = DEFAULT_SCHEDULE_SCALE,
                     ) -> Tuple[int, int]:
    """Per-environment (epochs, checkpoint interval), registry-backed.

    Explicit values win; anything left ``None`` falls back to the
    environment's published schedule scaled by ``schedule_scale``.
    """
    spec = ENVIRONMENTS[environment.lower()]
    default_epochs, default_interval = spec.evaluation_schedule(schedule_scale)
    return (train_epochs if train_epochs is not None else default_epochs,
            checkpoint_interval if checkpoint_interval is not None
            else default_interval)


def _positive_float(raw: str) -> float:
    value = float(raw)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {raw!r}")
    return value


def _add_logging_flags(parser: argparse.ArgumentParser) -> None:
    """``--verbose``/``--quiet``, shared by every subcommand."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument("-v", "--verbose", action="count", default=0,
                       help="show debug-level progress on stderr")
    group.add_argument("-q", "--quiet", action="store_true",
                       help="suppress progress commentary (warnings only); "
                            "result tables still print to stdout")


def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the ``run`` and ``campaign`` subcommands."""
    parser.add_argument("--target", choices=["state", "network", "both"],
                        default="state")
    parser.add_argument("--llm", choices=["gpt-3.5", "gpt-4"], default="gpt-4",
                        help="synthetic LLM profile to use")
    parser.add_argument("--num-designs", type=int, default=10)
    parser.add_argument("--train-epochs", type=int, default=None,
                        help="training episodes per seed; defaults to the "
                             "environment's Table 1 schedule scaled by "
                             "--schedule-scale")
    parser.add_argument("--checkpoint-interval", type=int, default=None,
                        help="episodes between checkpoint evaluations; "
                             "defaults to the environment's Table 1 test "
                             "interval scaled by --schedule-scale")
    parser.add_argument("--schedule-scale", type=_positive_float,
                        default=DEFAULT_SCHEDULE_SCALE,
                        help="fraction of the published per-environment "
                             "training schedule used when --train-epochs/"
                             "--checkpoint-interval are not given")
    parser.add_argument("--num-seeds", type=int, default=2)
    parser.add_argument("--num-chunks", type=int, default=16)
    parser.add_argument("--dataset-scale", type=float, default=0.05,
                        help="fraction of the published dataset size to generate")
    parser.add_argument("--no-early-stopping", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the scheduler's job "
                             "fan-out; -1 uses every CPU, 1 runs serially. "
                             "Each job still trains its seeds in lockstep "
                             "inside its worker.")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries for a job that raises, times out or "
                             "loses its worker before it is quarantined; the "
                             "campaign completes without quarantined jobs "
                             "and exits non-zero")
    parser.add_argument("--job-timeout", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="kill and retry a job running longer than this "
                             "inside a pool worker (only enforced with "
                             "--workers > 1)")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="inject deterministic faults for resilience "
                             "testing: comma-separated "
                             "'site[:match[:times[:delay]]]' elements and an "
                             "optional 'seed=N' (sites: job.exception, "
                             "job.crash, job.timeout, job.interrupt, "
                             "store.torn_write, store.lease_hold, "
                             "rpc.worker_crash, rpc.conn_drop, "
                             "rpc.heartbeat_loss, rpc.result_delay)")
    parser.add_argument("--backend", choices=["local", "remote"],
                        default="local",
                        help="job execution transport: 'local' (the in-"
                             "process pool behind --workers) or 'remote' "
                             "(a TCP coordinator serving pulled jobs to "
                             "'repro worker' subprocesses with heartbeats "
                             "and work-stealing)")
    parser.add_argument("--remote-workers", type=int, default=2,
                        help="worker subprocesses launched for "
                             "--backend remote")
    parser.add_argument("--remote-port", type=int, default=0,
                        help="coordinator TCP port for --backend remote "
                             "(0 picks a free port); extra workers can join "
                             "with 'repro worker --connect host:port'")
    parser.add_argument("--remote-fallback", choices=["local", "fail"],
                        default="local",
                        help="what --backend remote does when every worker "
                             "is lost past the deadline: finish the batch "
                             "locally, or fail with a resume-from-store "
                             "message (exit code 3)")
    parser.add_argument("--remote-deadline", type=_positive_float,
                        default=30.0, metavar="SECONDS",
                        help="how long --backend remote tolerates an empty "
                             "worker pool before applying --remote-fallback")
    parser.add_argument("--dtype", choices=["float32", "float64"], default="float64",
                        help="tensor dtype: float64 (accuracy-first default) or "
                             "float32 (fast path)")
    parser.add_argument("--no-lockstep", action="store_true",
                        help="disable the multi-seed lockstep trainer (stacked "
                             "per-seed weights, batched fused updates) and train "
                             "every seed separately; results are identical, "
                             "lockstep is just faster")
    parser.add_argument("--no-compile", action="store_true",
                        help="disable the fused-kernel compiler for generated "
                             "architectures; they then train through the "
                             "autograd graph reference path (the escape "
                             "hatch when debugging a design)")
    parser.add_argument("--numerics", choices=["exact", "fast"],
                        default="exact",
                        help="gradient-contraction numerics: 'exact' "
                             "(default) mirrors the autograd reference bit "
                             "for bit; 'fast' re-blocks the conv-gradient "
                             "contractions into single GEMMs — statistically "
                             "equivalent scores, not bit-identical")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent result-store directory; repeated or "
                             "interrupted campaigns reuse every already-"
                             "scored (design, environment, seed) record")
    parser.add_argument("--telemetry", metavar="DIR", default=None,
                        help="record structured telemetry (spans, counters, "
                             "training-metric series) as JSON lines under "
                             "DIR; summarize with 'repro report DIR'")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome-trace JSON of the campaign to "
                             "PATH (load it at https://ui.perfetto.dev)")
    _add_logging_flags(parser)


def build_parser() -> argparse.ArgumentParser:
    """Create the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nada (HotNets 2024) reproduction: LLM-driven network "
                    "algorithm design for ABR streaming.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run a Nada design campaign")
    run.add_argument("--environment", choices=list_environments() + ["all"],
                     default="fcc",
                     help="network environment; 'all' sweeps the full trace "
                          "registry through one scheduled campaign")
    _add_campaign_flags(run)
    run.add_argument("--show-code", action="store_true",
                     help="print the best design's source code")

    campaign = subparsers.add_parser(
        "campaign",
        help="sweep several environments through one scheduled work-graph")
    campaign.add_argument("--environments", nargs="+", default=["all"],
                          choices=list_environments() + ["all"],
                          help="environments to sweep (default: the full "
                               "registry)")
    _add_campaign_flags(campaign)

    traces = subparsers.add_parser("traces", help="generate a trace dataset")
    traces.add_argument("--environment", choices=list_environments(),
                        default="fcc")
    traces.add_argument("--scale", type=float, default=0.1)
    traces.add_argument("--seed", type=int, default=0)
    traces.add_argument("--output", required=True,
                        help="directory for the generated .log trace files")
    _add_logging_flags(traces)

    baselines = subparsers.add_parser(
        "baselines", help="evaluate classic ABR baselines on an environment")
    baselines.add_argument("--environment", choices=list_environments(),
                           default="fcc")
    baselines.add_argument("--dataset-scale", type=float, default=0.05)
    baselines.add_argument("--num-chunks", type=int, default=16)
    baselines.add_argument("--seed", type=int, default=0)
    baselines.add_argument("--policies", nargs="+",
                           default=["bba", "rate_based", "bola", "mpc"])
    _add_logging_flags(baselines)

    serve = subparsers.add_parser(
        "serve",
        help="drive a policy through the fleet emulator under synthetic "
             "heavy traffic and report serving throughput/latency")
    serve.add_argument("--environment", choices=list_environments(),
                       default="fcc",
                       help="trace registry environment supplying the mix")
    serve.add_argument("--sessions", type=int, default=256,
                       help="number of concurrent virtual players")
    serve.add_argument("--arrival", choices=["instant", "uniform", "poisson"],
                       default="poisson",
                       help="session arrival process on the virtual timeline")
    serve.add_argument("--arrival-rate", type=_positive_float, default=50.0,
                       help="session arrivals per virtual second "
                            "(uniform/poisson)")
    serve.add_argument("--batch-window", type=float, default=0.25,
                       help="virtual-time window (s) batched into one policy "
                            "forward; 0 disables batching across sessions")
    serve.add_argument("--max-batch", type=int, default=4096,
                       help="upper bound on decisions per batched tick")
    serve.add_argument("--delivery-engine", choices=["prefix", "bisect"],
                       default="prefix",
                       help="link schedule inversion: analytic prefix lookup "
                            "(fast default) or binary search (reference)")
    serve.add_argument("--stochastic", action="store_true",
                       help="sample actions from the policy distribution "
                            "instead of greedy argmax")
    serve.add_argument("--sample-seed", type=int, default=0,
                       help="base seed of the per-session action-sampling "
                            "generators (with --stochastic)")
    serve.add_argument("--dataset-scale", type=float, default=0.05)
    serve.add_argument("--num-chunks", type=int, default=16)
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for the trace mix and policy weights")
    serve.add_argument("--dtype", choices=["float32", "float64"],
                       default="float64")
    serve.add_argument("--no-compile", action="store_true")
    serve.add_argument("--numerics", choices=["exact", "fast"],
                       default="exact")
    serve.add_argument("--json", action="store_true",
                       help="emit the serving metrics as JSON instead of the "
                            "rendered summary")
    serve.add_argument("--telemetry", metavar="DIR", default=None,
                       help="record serve.* spans/counters under DIR "
                            "(summarize with 'repro report DIR')")
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="write a Chrome-trace JSON of the fleet run")
    _add_logging_flags(serve)

    worker = subparsers.add_parser(
        "worker",
        help="connect to a campaign coordinator and pull evaluation jobs "
             "(normally launched by --backend remote itself)")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator's listening address")
    _add_logging_flags(worker)

    report = subparsers.add_parser(
        "report", help="summarize a telemetry directory recorded with "
                       "--telemetry")
    report.add_argument("directory",
                        help="telemetry directory (events-*.jsonl files)")
    report.add_argument("--top", type=int, default=8,
                        help="rows per ranked section (time sinks, designs)")
    report.add_argument("--json", action="store_true",
                        help="emit the machine-readable summary instead of "
                             "the rendered report")
    _add_logging_flags(report)

    lint = subparsers.add_parser(
        "lint", help="statically audit design files or lint the repo itself")
    what = lint.add_mutually_exclusive_group()
    what.add_argument("--designs", metavar="DIR", default=None,
                      help="audit every *.py design code block under DIR "
                           "(blocks defining build_network audit as network "
                           "designs, the rest as state designs); nothing is "
                           "executed")
    what.add_argument("--self", action="store_true", dest="self_check",
                      help="lint src/repro against the repo contracts (RNG "
                           "discipline, store-key completeness, pool "
                           "picklability, telemetry no-op paths) and run the "
                           "auditor's self-check corpus [default]")
    lint.add_argument("--json", action="store_true",
                      help="emit structured findings as JSON instead of the "
                           "rendered report")
    _add_logging_flags(lint)
    return parser


def _campaign_config(args: argparse.Namespace, environment: str) -> NadaConfig:
    """Build the NadaConfig for one environment from parsed CLI flags."""
    train_epochs, checkpoint_interval = resolve_schedule(
        environment, args.train_epochs, args.checkpoint_interval,
        args.schedule_scale)
    return NadaConfig(
        target=args.target,
        num_designs=args.num_designs,
        llm=args.llm,
        evaluation=EvaluationConfig(
            train_epochs=train_epochs,
            checkpoint_interval=checkpoint_interval,
            last_k_checkpoints=max(1, min(10, train_epochs
                                          // max(checkpoint_interval, 1))),
            num_seeds=args.num_seeds,
            a2c=A2CConfig(entropy_anneal_epochs=max(train_epochs // 2, 1)),
            lockstep_training=not args.no_lockstep,
        ),
        use_early_stopping=not args.no_early_stopping,
        seed=args.seed,
        workers=args.workers,
        max_retries=args.max_retries,
        job_timeout=args.job_timeout,
        store_dir=args.store,
        telemetry_dir=args.telemetry,
    )


def _apply_engine_flags(args: argparse.Namespace) -> None:
    """Apply the process-global engine toggles the campaign flags select."""
    nn.set_default_dtype(args.dtype)
    nn.set_compilation(not args.no_compile)
    nn.set_numerics(args.numerics)


def _install_faults(args: argparse.Namespace) -> None:
    """Activate the ``--faults`` plan for chaos/resilience testing."""
    if getattr(args, "faults", None):
        faults.install_plan(faults.FaultPlan.from_spec(args.faults))
        logger.warning("fault injection active: %s", args.faults)


def _report_failures(scheduler) -> int:
    """Print the quarantined-job table to stderr; non-zero when any failed."""
    summary = scheduler.failure_summary() if scheduler is not None else None
    if summary is None:
        return 0
    print(summary, file=sys.stderr)
    return 1


def _start_telemetry(args: argparse.Namespace) -> Optional[telemetry.Telemetry]:
    """Activate telemetry when ``--telemetry`` or ``--trace`` asks for it."""
    if args.telemetry or args.trace:
        return telemetry.enable(args.telemetry)
    return None


def _finish_telemetry(args: argparse.Namespace,
                      sink: Optional[telemetry.Telemetry]) -> None:
    """Flush event files and write the Chrome trace after a campaign."""
    if sink is None:
        return
    if sink.directory:
        path = sink.flush()
        logger.info("telemetry: %d events in %s (summarize with "
                    "'repro report %s')", len(sink.events), path,
                    sink.directory)
    if args.trace:
        telemetry.write_chrome_trace(sink.events, args.trace)
        logger.info("telemetry: Chrome trace written to %s "
                    "(load at https://ui.perfetto.dev)", args.trace)
    # The CLI owns the session it started: later invocations in the same
    # process (tests, notebooks) must not inherit an active sink.
    telemetry.disable()


def _build_remote_scheduler(args: argparse.Namespace,
                            store: Optional[ResultStore]
                            ) -> Tuple[Optional[CampaignScheduler],
                                       Optional[RemoteExecutor]]:
    """The (scheduler, executor) pair for ``--backend remote``, else Nones.

    Mirrors the :class:`ParallelConfig` the pipeline would build itself, so
    retry/backoff/timeout semantics are identical across backends; the
    executor's worker subprocesses are launched immediately so they connect
    while designs are still being generated.
    """
    if getattr(args, "backend", "local") != "remote":
        return None, None
    executor = RemoteExecutor(RemoteConfig(
        port=args.remote_port,
        fallback=args.remote_fallback,
        worker_deadline_s=args.remote_deadline))
    executor.launch_workers(args.remote_workers)
    scheduler = CampaignScheduler(
        parallel=ParallelConfig(max_workers=args.workers,
                                max_retries=args.max_retries,
                                job_timeout=args.job_timeout),
        store=store, executor=executor)
    host, port = executor.address
    logger.info("remote backend: coordinator on %s:%d, %d worker "
                "subprocess(es) (attach more with "
                "'repro worker --connect %s:%d')",
                host, port, args.remote_workers, host, port)
    return scheduler, executor


def _run_campaign(args: argparse.Namespace, environments: List[str]) -> int:
    """Sweep the named environments through one scheduled work-graph."""
    _apply_engine_flags(args)
    _install_faults(args)
    sink = _start_telemetry(args)
    store = ResultStore(args.store) if args.store else None
    scheduler, executor = _build_remote_scheduler(args, store)
    pipelines = {}
    for environment in environments:
        pipeline = NadaPipeline.for_environment(
            environment, config=_campaign_config(args, environment),
            dataset_scale=args.dataset_scale, num_chunks=args.num_chunks,
            seed=args.seed, scheduler=scheduler, store=store)
        # Every environment shares the first pipeline's scheduler (and with
        # it the worker pool and result store).
        scheduler = pipeline.scheduler
        pipelines[environment] = pipeline
    campaign = NadaCampaign(pipelines, scheduler=scheduler)
    logger.info("running Nada campaign on %s (target=%s, llm=%s, "
                "designs=%d/component, backend=%s, workers=%s)",
                ", ".join(environments), args.target, args.llm,
                args.num_designs, getattr(args, "backend", "local"),
                args.workers)
    try:
        result = campaign.run()
    except KeyboardInterrupt:
        logger.warning("campaign interrupted; completed results were "
                       "persisted and the next run resumes from the store")
        _report_failures(scheduler)
        _finish_telemetry(args, sink)
        return 130
    except NoWorkersError as exc:
        logger.error("%s", exc)
        logger.error("completed results were persisted%s; re-run the same "
                     "command to resume from the store",
                     f" to {args.store}" if args.store else "")
        _report_failures(scheduler)
        _finish_telemetry(args, sink)
        return 3
    finally:
        faults.clear_plan()
        if executor is not None:
            executor.close()
    print(result.summary())
    if getattr(args, "show_code", False):
        for environment in environments:
            best = result[environment].best_design
            if best is not None:
                print(f"\n# best design for {environment} ({best.design_id})")
                print(best.code)
    if store is not None:
        stats = store.statistics()
        print()
        print(f"result store      : {stats['records']} records "
              f"({stats['hits']} hits, {stats['misses']} misses this run)")
    _finish_telemetry(args, sink)
    return _report_failures(scheduler)


def _command_run(args: argparse.Namespace) -> int:
    if args.environment == "all":
        return _run_campaign(args, list_environments())
    _apply_engine_flags(args)
    _install_faults(args)
    sink = _start_telemetry(args)
    config = _campaign_config(args, args.environment)
    store = (ResultStore(args.store)
             if args.store and args.backend == "remote" else None)
    scheduler, executor = _build_remote_scheduler(args, store)
    pipeline = NadaPipeline.for_environment(
        args.environment, config=config, dataset_scale=args.dataset_scale,
        num_chunks=args.num_chunks, seed=args.seed, scheduler=scheduler,
        store=store)
    logger.info("running Nada on %s (target=%s, llm=%s, designs=%d, "
                "epochs=%d)", args.environment, args.target, args.llm,
                args.num_designs, config.evaluation.train_epochs)
    try:
        result = pipeline.run()
    except KeyboardInterrupt:
        logger.warning("campaign interrupted; completed results were "
                       "persisted and the next run resumes from the store")
        _report_failures(pipeline.scheduler)
        _finish_telemetry(args, sink)
        return 130
    except NoWorkersError as exc:
        logger.error("%s", exc)
        logger.error("completed results were persisted%s; re-run the same "
                     "command to resume from the store",
                     f" to {args.store}" if args.store else "")
        _report_failures(pipeline.scheduler)
        _finish_telemetry(args, sink)
        return 3
    finally:
        faults.clear_plan()
        if executor is not None:
            executor.close()
    print(result.summary())
    if args.show_code and result.best_design is not None:
        print()
        print(result.best_design.code)
    _finish_telemetry(args, sink)
    return _report_failures(pipeline.scheduler)


def _command_campaign(args: argparse.Namespace) -> int:
    environments = list(args.environments)
    if "all" in environments:
        environments = list_environments()
    # Preserve CLI order while dropping duplicates.
    seen = set()
    environments = [env for env in environments
                    if not (env in seen or seen.add(env))]
    return _run_campaign(args, environments)


def _command_traces(args: argparse.Namespace) -> int:
    train, test = build_dataset(args.environment, seed=args.seed, scale=args.scale)
    train_dir = os.path.join(args.output, "train")
    test_dir = os.path.join(args.output, "test")
    save_traceset(train, train_dir)
    save_traceset(test, test_dir)
    logger.info("wrote %d training traces to %s", len(train), train_dir)
    logger.info("wrote %d test traces to %s", len(test), test_dir)
    print(f"mean throughput: train {train.mean_throughput_mbps:.2f} Mbps, "
          f"test {test.mean_throughput_mbps:.2f} Mbps")
    return 0


def _command_baselines(args: argparse.Namespace) -> int:
    spec = ENVIRONMENTS[args.environment]
    _, test = build_dataset(args.environment, seed=args.seed,
                            scale=args.dataset_scale)
    video = synthetic_video(spec.bitrate_ladder, num_chunks=args.num_chunks,
                            seed=args.seed)
    rows = []
    for name in args.policies:
        scores = []
        for trace in test:
            policy = make_baseline(name)
            scores.append(run_session(policy, video, trace).mean_reward)
        rows.append([name, f"{float(np.mean(scores)):.3f}"])
    print(render_table(["baseline", "mean QoE per chunk"], rows,
                       title=f"{spec.display_name} test traces "
                             f"({len(test)} traces, {video.num_chunks} chunks)"))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import dataclasses
    import json as json_module

    from .core.evaluation import instantiate_agent
    from .emulation import EmulationConfig, Fleet, FleetConfig, LinkConfig

    if args.sessions < 1:
        logger.error("--sessions must be at least 1")
        return 1
    _apply_engine_flags(args)
    sink = _start_telemetry(args)
    spec = ENVIRONMENTS[args.environment]
    _, test = build_dataset(args.environment, seed=args.seed,
                            scale=args.dataset_scale)
    video = synthetic_video(spec.bitrate_ladder, num_chunks=args.num_chunks,
                            seed=args.seed)
    agent = instantiate_agent(None, None, video, test, seed=args.seed)
    config = FleetConfig(
        emulation=EmulationConfig(
            link=dataclasses.replace(LinkConfig(),
                                     delivery_engine=args.delivery_engine)),
        arrival_process=args.arrival,
        arrival_rate_per_s=args.arrival_rate,
        batch_window_s=args.batch_window,
        max_batch=args.max_batch,
    )
    fleet = Fleet(video, list(test), config=config)
    logger.info("serving %d sessions over %d %s traces "
                "(arrival=%s, batch window=%.3fs, engine=%s)",
                args.sessions, len(test), spec.display_name, args.arrival,
                args.batch_window, args.delivery_engine)
    result = fleet.run(agent, args.sessions, greedy=not args.stochastic,
                       sample_seed=args.sample_seed)
    metrics = result.metrics
    payload = {
        "environment": args.environment,
        "traces": len(test),
        "arrival_process": args.arrival,
        "delivery_engine": args.delivery_engine,
        "greedy": not args.stochastic,
        "mean_qoe_per_chunk": result.mean_reward,
        "metrics": metrics.to_dict(),
    }
    if args.json:
        print(json_module.dumps(payload, indent=2))
    else:
        rows = [
            ["sessions", f"{metrics.num_sessions}"],
            ["decisions", f"{metrics.num_decisions}"],
            ["ticks (batched forwards)", f"{metrics.num_ticks}"],
            ["mean / max batch", f"{metrics.mean_batch_size:.1f} / "
                                 f"{metrics.max_batch_size}"],
            ["wall time", f"{metrics.wall_s:.3f} s"],
            ["decisions/s", f"{metrics.decisions_per_s:,.0f}"],
            ["sessions/s", f"{metrics.sessions_per_s:,.1f}"],
            ["decision latency p50", f"{metrics.p50_decision_latency_s * 1e3:.3f} ms"],
            ["decision latency p95", f"{metrics.p95_decision_latency_s * 1e3:.3f} ms"],
            ["decision latency p99", f"{metrics.p99_decision_latency_s * 1e3:.3f} ms"],
            ["mean QoE per chunk", f"{result.mean_reward:.3f}"],
        ]
        print(render_table(["metric", "value"], rows,
                           title=f"repro serve: {args.sessions} sessions on "
                                 f"{spec.display_name} "
                                 f"({len(test)} traces, {args.arrival} "
                                 f"arrivals)"))
    _finish_telemetry(args, sink)
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from .core.distributed import run_worker

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        logger.error("--connect expects HOST:PORT, got %r", args.connect)
        return 2
    return run_worker(host, int(port))


def _command_report(args: argparse.Namespace) -> int:
    import json as json_module

    try:
        events = telemetry.load_events(args.directory)
    except FileNotFoundError as exc:
        logger.error("%s", exc)
        return 1
    if not events:
        logger.error("no telemetry events found in %s", args.directory)
        return 1
    if args.json:
        print(json_module.dumps(telemetry.summarize(events), indent=2))
    else:
        print(telemetry.render_report(events, top=args.top))
    return 0


def _audit_design_directory(directory: str):
    """Audit every ``*.py`` file under ``directory``; returns result dicts."""
    from .analysis.staticcheck import audit_design

    paths = sorted(glob.glob(os.path.join(directory, "**", "*.py"),
                             recursive=True))
    results = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            code = handle.read()
        kind = "network" if "def build_network" in code else "state"
        report = audit_design(code, kind)
        entry = report.to_dict()
        entry["file"] = os.path.relpath(path, directory)
        results.append(entry)
    return results


def _command_lint(args: argparse.Namespace) -> int:
    import json as json_module

    from .analysis.staticcheck import lint_repo, run_selfcheck_corpus

    if args.designs:
        if not os.path.isdir(args.designs):
            logger.error("no such directory: %s", args.designs)
            return 1
        results = _audit_design_directory(args.designs)
        if not results:
            logger.error("no *.py design files under %s", args.designs)
            return 1
        failed = [r for r in results if not r["passed"]]
        if args.json:
            print(json_module.dumps({"designs": results}, indent=2))
        else:
            for entry in results:
                status = "ok" if entry["passed"] else "REJECTED"
                extra = (f" [{entry['lowerability']['verdict']}]"
                         if entry.get("lowerability") else "")
                print(f"{entry['file']}: {status} ({entry['kind']}){extra}")
                for finding in entry["findings"]:
                    print(f"  [{finding['severity']}] {finding['rule']} "
                          f"(line {finding['line']}): {finding['message']}")
            print(f"\n{len(results) - len(failed)}/{len(results)} design "
                  f"blocks pass the static audit")
        return 1 if failed else 0

    # --self (the default): repo contracts + the auditor's own corpus.
    contract_findings = lint_repo()
    ok, messages = run_selfcheck_corpus()
    errors = [f for f in contract_findings if f.severity == "error"]
    clean = not errors and ok
    if args.json:
        print(json_module.dumps({
            "contracts": [f.to_dict() for f in contract_findings],
            "selfcheck": {"ok": ok, "messages": messages},
            "clean": clean,
        }, indent=2))
    else:
        for finding in contract_findings:
            print(finding.render())
        for message in messages:
            print(f"selfcheck: {message}")
        print(f"contract linter : {len(contract_findings)} finding(s), "
              f"{len(errors)} error(s)")
        print(f"auditor corpus  : {'ok' if ok else 'FAILED'}")
    return 0 if clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(-1 if getattr(args, "quiet", False)
                      else getattr(args, "verbose", 0))
    handlers = {
        "run": _command_run,
        "campaign": _command_campaign,
        "traces": _command_traces,
        "baselines": _command_baselines,
        "serve": _command_serve,
        "worker": _command_worker,
        "report": _command_report,
        "lint": _command_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
